"""Prefetch insertion into mini-IR programs (the "binary rewriter").

Takes the analysis pipeline's :class:`~repro.core.report.OptimizationReport`
and splices the planned ``prefetch``/``prefetchnta`` instructions into
the program — each one *immediately after* its target load, sharing the
load's base addressing, exactly as the paper describes for its
assembler-level insertion (§VI-C):

    A: load (base), dst
       prefetch[nta] prefetch-distance(base)

Rewriting is purely structural: no pattern is re-generated, so the
optimised program's demand address stream is bit-identical to the
original's (verified by tests against trace-level insertion).
"""

from __future__ import annotations

from repro.core.report import OptimizationReport, PrefetchDecision
from repro.errors import ProgramError
from repro.isa.instructions import (
    IndirectPrefetch,
    Instruction,
    Load,
    Prefetch,
    Store,
)
from repro.isa.program import Kernel, Program

__all__ = ["insert_prefetches", "convert_nt_stores"]


def convert_nt_stores(program: Program, pcs: list[int]) -> Program:
    """Replace the given stores with non-temporal stores (``movnt``)."""
    if not pcs:
        return program
    pc_map = program.pc_map()
    targets = {
        loc for loc, pc in pc_map.items() if pc in set(pcs)
    }
    unknown = set(pcs) - set(pc_map.values())
    if unknown:
        raise ProgramError(f"NT-store conversion targets unknown pcs {sorted(unknown)}")
    new_kernels: list[Kernel] = []
    for kernel in program.kernels:
        new_body: list[Instruction] = []
        changed = False
        for instr in kernel.body:
            if (
                isinstance(instr, Store)
                and not instr.nt
                and (kernel.name, instr.label) in targets
            ):
                new_body.append(Store(instr.label, instr.pattern, nt=True))
                changed = True
            else:
                new_body.append(instr)
        new_kernels.append(kernel.with_body(tuple(new_body)) if changed else kernel)
    return program.with_kernels(tuple(new_kernels))


def insert_prefetches(
    program: Program,
    report: OptimizationReport | list[PrefetchDecision],
) -> Program:
    """Return a rewritten program with the plan's prefetches inserted."""
    decisions = (
        report.decisions if isinstance(report, OptimizationReport) else report
    )
    if not decisions:
        return program

    pc_map = program.pc_map()
    by_location: dict[tuple[str, str], PrefetchDecision] = {}
    index_runahead: dict[tuple[str, str], PrefetchDecision] = {}
    pc_to_location = {pc: loc for loc, pc in pc_map.items()}
    for decision in decisions:
        loc = pc_to_location.get(decision.pc)
        if loc is None:
            raise ProgramError(
                f"prefetch decision targets unknown pc {decision.pc}"
            )
        if loc in by_location:
            raise ProgramError(f"duplicate decision for pc {decision.pc}")
        by_location[loc] = decision
        if decision.indirect_ahead:
            # The first half of the indirect rewrite: run ahead on the
            # B[i] index walk so B[i+ahead] is resident when the
            # IndirectPrefetch resolves A[B[i+ahead]].
            idx_loc = pc_to_location.get(decision.index_pc)
            if idx_loc is None:
                raise ProgramError(
                    f"indirect decision for pc {decision.pc} references "
                    f"unknown index pc {decision.index_pc}"
                )
            index_runahead[idx_loc] = decision

    new_kernels: list[Kernel] = []
    for kernel in program.kernels:
        new_body: list[Instruction] = []
        changed = False
        for instr in kernel.body:
            new_body.append(instr)
            if isinstance(instr, (Load, Store)):
                loc = (kernel.name, instr.label)
                decision = by_location.get(loc)
                if decision is not None:
                    if decision.indirect_ahead:
                        new_body.append(
                            IndirectPrefetch(
                                target=instr.label,
                                ahead=decision.indirect_ahead,
                                nta=decision.nta,
                            )
                        )
                    else:
                        new_body.append(
                            Prefetch(
                                target=instr.label,
                                distance_bytes=decision.distance_bytes,
                                nta=decision.nta,
                            )
                        )
                    changed = True
                runahead = index_runahead.get(loc)
                if runahead is not None:
                    new_body.append(
                        Prefetch(
                            target=instr.label,
                            distance_bytes=runahead.distance_bytes,
                            nta=False,
                        )
                    )
                    changed = True
        new_kernels.append(kernel.with_body(tuple(new_body)) if changed else kernel)
    return program.with_kernels(tuple(new_kernels))
