"""Programs and loop kernels of the mini-IR.

A :class:`Program` is an ordered list of :class:`Kernel` loops.  Each
kernel runs its body for ``trips`` iterations; the bodies are memory
instructions (plus inserted prefetches).  Non-memory work is modelled in
aggregate by ``work_per_memop`` — the average number of arithmetic/branch
instructions per memory operation, which the timing model charges at the
machine's base CPI.

Static memory instructions receive globally unique integer PCs in
program order (:meth:`Program.pc_of`), the identifiers all samplers and
analyses key on — the moral equivalent of instruction addresses in the
paper's binaries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ProgramError
from repro.isa.instructions import (
    IndexedAccess,
    IndirectPrefetch,
    Instruction,
    Load,
    Prefetch,
    Store,
    StreamAccess,
    StridedAccess,
)

__all__ = ["Kernel", "Program"]


@dataclass(frozen=True)
class Kernel:
    """One loop: a body of instructions executed ``trips`` times.

    Attributes
    ----------
    name:
        Loop identifier (unique within the program).
    body:
        Instructions in program order.
    trips:
        Iteration count.
    work_per_memop:
        Non-memory instructions per memory operation in this loop.
    mlp:
        Memory-level parallelism the loop's address streams expose
        (dependent chases: ~1; wide unrolled streams: 4–8).
    """

    name: str
    body: tuple[Instruction, ...]
    trips: int
    work_per_memop: float = 2.0
    mlp: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramError("kernel name must be non-empty")
        if self.trips < 0:
            raise ProgramError("trips must be non-negative")
        if not self.body:
            raise ProgramError(f"kernel {self.name!r}: empty body")
        if self.work_per_memop < 0:
            raise ProgramError("work_per_memop must be non-negative")
        if self.mlp < 1:
            raise ProgramError("mlp must be >= 1")
        object.__setattr__(self, "body", tuple(self.body))
        labels = [i.label for i in self.body if isinstance(i, (Load, Store))]
        if len(labels) != len(set(labels)):
            raise ProgramError(f"kernel {self.name!r}: duplicate labels")
        for instr in self.body:
            if (
                isinstance(instr, (Prefetch, IndirectPrefetch))
                and instr.target not in labels
            ):
                raise ProgramError(
                    f"kernel {self.name!r}: prefetch targets unknown label "
                    f"{instr.target!r}"
                )

    @property
    def mem_instructions(self) -> list[Load | Store]:
        """The demand memory instructions of the body, in order."""
        return [i for i in self.body if isinstance(i, (Load, Store))]

    def with_body(self, body: tuple[Instruction, ...]) -> "Kernel":
        """Copy of this kernel with a rewritten body."""
        return replace(self, body=body)

    def with_trips(self, trips: int) -> "Kernel":
        """Copy of this kernel with a different trip count.

        Used by the fuzz shrinker to minimise failing programs: halving
        trips preserves the body (and thus the PC assignment) while
        shrinking the generated trace.
        """
        return replace(self, trips=trips)


@dataclass(frozen=True)
class Program:
    """An ordered sequence of loop kernels with global PC assignment."""

    name: str
    kernels: tuple[Kernel, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramError("program name must be non-empty")
        object.__setattr__(self, "kernels", tuple(self.kernels))
        if not self.kernels:
            raise ProgramError("program must contain at least one kernel")
        names = [k.name for k in self.kernels]
        if len(names) != len(set(names)):
            raise ProgramError("kernel names must be unique")

    # ------------------------------------------------------------------
    # PC assignment
    # ------------------------------------------------------------------

    def pc_map(self) -> dict[tuple[str, str], int]:
        """(kernel, label) → global PC for every demand instruction."""
        mapping: dict[tuple[str, str], int] = {}
        pc = 0
        for kernel in self.kernels:
            for instr in kernel.mem_instructions:
                mapping[(kernel.name, instr.label)] = pc
                pc += 1
        return mapping

    def pc_of(self, kernel_name: str, label: str) -> int:
        """Global PC of one labelled instruction."""
        try:
            return self.pc_map()[(kernel_name, label)]
        except KeyError:
            raise ProgramError(
                f"no instruction {label!r} in kernel {kernel_name!r}"
            ) from None

    def label_of(self, pc: int) -> tuple[str, str]:
        """Inverse of :meth:`pc_of`."""
        for key, value in self.pc_map().items():
            if value == pc:
                return key
        raise ProgramError(f"no instruction with pc {pc}")

    @property
    def n_static_mem_instructions(self) -> int:
        return sum(len(k.mem_instructions) for k in self.kernels)

    @property
    def n_dynamic_refs(self) -> int:
        """Total demand references the program will issue."""
        return sum(k.trips * len(k.mem_instructions) for k in self.kernels)

    def store_pcs(self) -> set[int]:
        """Global PCs of all store instructions."""
        mapping = self.pc_map()
        return {
            mapping[(kernel.name, instr.label)]
            for kernel in self.kernels
            for instr in kernel.mem_instructions
            if isinstance(instr, Store)
        }

    def refs_per_pc(self) -> dict[int, int]:
        """Dynamic reference count of each PC (the loop's ``R``)."""
        out: dict[int, int] = {}
        mapping = self.pc_map()
        for kernel in self.kernels:
            for instr in kernel.mem_instructions:
                out[mapping[(kernel.name, instr.label)]] = kernel.trips
        return out

    def indirect_pairs(self) -> dict[int, tuple[int, int]]:
        """Indexed-load PC → (index-load PC, index stride) per kernel.

        An ``A[B[i]]`` pair is recovered structurally: a load whose
        pattern is :class:`IndexedAccess` is paired with the load in the
        *same kernel* whose stream/strided pattern starts at the indexed
        pattern's ``index_base`` — the ``B[i]`` walk.  Pairs whose index
        walk is missing (or not sequentially strided) are omitted: with
        no resolvable future index there is nothing to run ahead on.
        """
        mapping = self.pc_map()
        pairs: dict[int, tuple[int, int]] = {}
        for kernel in self.kernels:
            index_loads: dict[int, tuple[int, int]] = {}
            for instr in kernel.mem_instructions:
                if not isinstance(instr, Load):
                    continue
                pat = instr.pattern
                if isinstance(pat, StreamAccess):
                    index_loads[pat.base] = (
                        mapping[(kernel.name, instr.label)],
                        pat.elem_bytes,
                    )
                elif isinstance(pat, StridedAccess) and pat.stride_bytes > 0:
                    index_loads[pat.base] = (
                        mapping[(kernel.name, instr.label)],
                        pat.stride_bytes,
                    )
            for instr in kernel.mem_instructions:
                if isinstance(instr, Load) and isinstance(
                    instr.pattern, IndexedAccess
                ):
                    entry = index_loads.get(instr.pattern.index_base)
                    if entry is not None:
                        pairs[mapping[(kernel.name, instr.label)]] = entry
        return pairs

    def with_kernels(self, kernels: tuple[Kernel, ...]) -> "Program":
        """Copy with replaced kernels (used by the rewriter)."""
        return Program(self.name, kernels)
