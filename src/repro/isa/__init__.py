"""Mini instruction set: programs, interpreter, assembler, rewriter."""

from repro.isa.assembly import emit, parse
from repro.isa.instructions import (
    AccessPattern,
    BFSAccess,
    BurstAccess,
    ChaseAccess,
    CSRAccess,
    FixedAccess,
    GatherAccess,
    HashProbeAccess,
    IndexedAccess,
    IndirectPrefetch,
    Load,
    Prefetch,
    RandomAccess,
    Store,
    SweepAccess,
    StreamAccess,
    StridedAccess,
)
from repro.isa.interpreter import ExecutionResult, execute_kernel, execute_program
from repro.isa.program import Kernel, Program
from repro.isa.rewriter import convert_nt_stores, insert_prefetches

__all__ = [
    "AccessPattern",
    "StreamAccess",
    "StridedAccess",
    "ChaseAccess",
    "RandomAccess",
    "GatherAccess",
    "BurstAccess",
    "SweepAccess",
    "FixedAccess",
    "CSRAccess",
    "BFSAccess",
    "HashProbeAccess",
    "IndexedAccess",
    "Load",
    "Store",
    "Prefetch",
    "IndirectPrefetch",
    "Kernel",
    "Program",
    "ExecutionResult",
    "execute_program",
    "execute_kernel",
    "insert_prefetches",
    "convert_nt_stores",
    "emit",
    "parse",
]
