"""Mini-IR instruction set and access patterns.

The paper inserts prefetches "at the assembler level"; this package is
the equivalent layer of the reproduction.  A program is a list of loop
kernels, each with a body of memory instructions; every memory
instruction carries a declarative *access pattern* describing the
address sequence it produces across loop iterations.  The interpreter
(:mod:`repro.isa.interpreter`) expands kernels into memory traces fully
vectorised, and the rewriter (:mod:`repro.isa.rewriter`) splices
``prefetch``/``prefetchnta`` instructions after target loads exactly the
way the paper's framework patches assembly:

    A: load  (base), dst
       prefetch[nta]  distance(base)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ProgramError
from repro.trace import synthesis

__all__ = [
    "AccessPattern",
    "StreamAccess",
    "StridedAccess",
    "ChaseAccess",
    "RandomAccess",
    "GatherAccess",
    "BurstAccess",
    "SweepAccess",
    "FixedAccess",
    "Load",
    "Store",
    "Prefetch",
    "Instruction",
]


class AccessPattern(ABC):
    """Generator of one instruction's address sequence."""

    @abstractmethod
    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Addresses for ``n`` consecutive loop iterations."""

    @abstractmethod
    def describe(self) -> str:
        """Compact textual form used by the assembly emitter."""


@dataclass(frozen=True)
class StreamAccess(AccessPattern):
    """Sequential streaming from ``base`` with element size ``elem_bytes``."""

    base: int
    elem_bytes: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.stream_pattern(self.base, n, self.elem_bytes)

    def describe(self) -> str:
        return f"stream(base={self.base:#x}, elem={self.elem_bytes})"


@dataclass(frozen=True)
class StridedAccess(AccessPattern):
    """Constant stride, optionally wrapping inside a region (re-sweeps)."""

    base: int
    stride_bytes: int
    wrap_bytes: int | None = None

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.strided_pattern(self.base, n, self.stride_bytes, self.wrap_bytes)

    def describe(self) -> str:
        wrap = "" if self.wrap_bytes is None else f", wrap={self.wrap_bytes}"
        return f"strided(base={self.base:#x}, stride={self.stride_bytes}{wrap})"


@dataclass(frozen=True)
class ChaseAccess(AccessPattern):
    """Pointer chase over a shuffled node pool."""

    base: int
    n_nodes: int
    node_bytes: int = 64

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.chase_pattern(rng, self.base, self.n_nodes, n, self.node_bytes)

    def describe(self) -> str:
        return f"chase(base={self.base:#x}, nodes={self.n_nodes}, node={self.node_bytes})"


@dataclass(frozen=True)
class RandomAccess(AccessPattern):
    """Uniform random access inside a region."""

    base: int
    region_bytes: int
    align: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.random_pattern(rng, self.base, self.region_bytes, n, self.align)

    def describe(self) -> str:
        return f"random(base={self.base:#x}, region={self.region_bytes})"


@dataclass(frozen=True)
class GatherAccess(AccessPattern):
    """Indirect gather with tunable locality."""

    base: int
    region_bytes: int
    locality: float = 0.0
    elem_bytes: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.gather_pattern(
            rng, self.base, self.region_bytes, n, self.locality, self.elem_bytes
        )

    def describe(self) -> str:
        return (
            f"gather(base={self.base:#x}, region={self.region_bytes}, "
            f"locality={self.locality})"
        )


@dataclass(frozen=True)
class BurstAccess(AccessPattern):
    """Short strided bursts at random bases (the cigar-defeating shape)."""

    base: int
    region_bytes: int
    burst_len: int
    stride_bytes: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.burst_strided_pattern(
            rng, self.base, self.region_bytes, n, self.burst_len, self.stride_bytes
        )

    def describe(self) -> str:
        return (
            f"burst(base={self.base:#x}, region={self.region_bytes}, "
            f"len={self.burst_len}, stride={self.stride_bytes})"
        )


@dataclass(frozen=True)
class SweepAccess(AccessPattern):
    """Nested re-sweeps with cycling pass lengths (LLC-straddling reuse)."""

    base: int
    pass_bytes: tuple[int, ...]
    stride_bytes: int = 64

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.sweep_pattern(self.base, n, self.pass_bytes, self.stride_bytes)

    def describe(self) -> str:
        passes = "/".join(str(p) for p in self.pass_bytes)
        return f"sweep(base={self.base:#x}, passes={passes}, stride={self.stride_bytes})"


@dataclass(frozen=True)
class FixedAccess(AccessPattern):
    """Same address every iteration (a scalar in memory)."""

    addr: int

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.addr, dtype=np.int64)

    def describe(self) -> str:
        return f"fixed(addr={self.addr:#x})"


# ----------------------------------------------------------------------
# instructions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Load:
    """A load instruction with a symbolic label."""

    label: str
    pattern: AccessPattern

    def __post_init__(self) -> None:
        if not self.label:
            raise ProgramError("load label must be non-empty")


@dataclass(frozen=True)
class Store:
    """A store instruction with a symbolic label.

    ``nt=True`` marks a non-temporal (streaming) store — x86 ``MOVNT*``
    — produced by the NT-store transformation.
    """

    label: str
    pattern: AccessPattern
    nt: bool = False

    def __post_init__(self) -> None:
        if not self.label:
            raise ProgramError("store label must be non-empty")


@dataclass(frozen=True)
class Prefetch:
    """A software prefetch covering the load labelled ``target``.

    The prefetch reuses the target's base register: its address per
    iteration is the target's address plus ``distance_bytes``.
    """

    target: str
    distance_bytes: int
    nta: bool = False

    def __post_init__(self) -> None:
        if not self.target:
            raise ProgramError("prefetch target must be non-empty")
        if self.distance_bytes == 0:
            raise ProgramError("prefetch distance must be non-zero")


Instruction = Load | Store | Prefetch
