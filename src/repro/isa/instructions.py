"""Mini-IR instruction set and access patterns.

The paper inserts prefetches "at the assembler level"; this package is
the equivalent layer of the reproduction.  A program is a list of loop
kernels, each with a body of memory instructions; every memory
instruction carries a declarative *access pattern* describing the
address sequence it produces across loop iterations.  The interpreter
(:mod:`repro.isa.interpreter`) expands kernels into memory traces fully
vectorised, and the rewriter (:mod:`repro.isa.rewriter`) splices
``prefetch``/``prefetchnta`` instructions after target loads exactly the
way the paper's framework patches assembly:

    A: load  (base), dst
       prefetch[nta]  distance(base)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ProgramError
from repro.trace import synthesis

__all__ = [
    "AccessPattern",
    "StreamAccess",
    "StridedAccess",
    "ChaseAccess",
    "RandomAccess",
    "GatherAccess",
    "BurstAccess",
    "SweepAccess",
    "FixedAccess",
    "CSRAccess",
    "BFSAccess",
    "HashProbeAccess",
    "IndexedAccess",
    "Load",
    "Store",
    "Prefetch",
    "IndirectPrefetch",
    "Instruction",
]


class AccessPattern(ABC):
    """Generator of one instruction's address sequence."""

    @abstractmethod
    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Addresses for ``n`` consecutive loop iterations."""

    @abstractmethod
    def describe(self) -> str:
        """Compact textual form used by the assembly emitter."""


@dataclass(frozen=True)
class StreamAccess(AccessPattern):
    """Sequential streaming from ``base`` with element size ``elem_bytes``."""

    base: int
    elem_bytes: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.stream_pattern(self.base, n, self.elem_bytes)

    def describe(self) -> str:
        return f"stream(base={self.base:#x}, elem={self.elem_bytes})"


@dataclass(frozen=True)
class StridedAccess(AccessPattern):
    """Constant stride, optionally wrapping inside a region (re-sweeps)."""

    base: int
    stride_bytes: int
    wrap_bytes: int | None = None

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.strided_pattern(self.base, n, self.stride_bytes, self.wrap_bytes)

    def describe(self) -> str:
        wrap = "" if self.wrap_bytes is None else f", wrap={self.wrap_bytes}"
        return f"strided(base={self.base:#x}, stride={self.stride_bytes}{wrap})"


@dataclass(frozen=True)
class ChaseAccess(AccessPattern):
    """Pointer chase over a shuffled node pool."""

    base: int
    n_nodes: int
    node_bytes: int = 64

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.chase_pattern(rng, self.base, self.n_nodes, n, self.node_bytes)

    def describe(self) -> str:
        return f"chase(base={self.base:#x}, nodes={self.n_nodes}, node={self.node_bytes})"


@dataclass(frozen=True)
class RandomAccess(AccessPattern):
    """Uniform random access inside a region."""

    base: int
    region_bytes: int
    align: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.random_pattern(rng, self.base, self.region_bytes, n, self.align)

    def describe(self) -> str:
        return f"random(base={self.base:#x}, region={self.region_bytes})"


@dataclass(frozen=True)
class GatherAccess(AccessPattern):
    """Indirect gather with tunable locality."""

    base: int
    region_bytes: int
    locality: float = 0.0
    elem_bytes: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.gather_pattern(
            rng, self.base, self.region_bytes, n, self.locality, self.elem_bytes
        )

    def describe(self) -> str:
        return (
            f"gather(base={self.base:#x}, region={self.region_bytes}, "
            f"locality={self.locality})"
        )


@dataclass(frozen=True)
class BurstAccess(AccessPattern):
    """Short strided bursts at random bases (the cigar-defeating shape)."""

    base: int
    region_bytes: int
    burst_len: int
    stride_bytes: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.burst_strided_pattern(
            rng, self.base, self.region_bytes, n, self.burst_len, self.stride_bytes
        )

    def describe(self) -> str:
        return (
            f"burst(base={self.base:#x}, region={self.region_bytes}, "
            f"len={self.burst_len}, stride={self.stride_bytes})"
        )


@dataclass(frozen=True)
class SweepAccess(AccessPattern):
    """Nested re-sweeps with cycling pass lengths (LLC-straddling reuse)."""

    base: int
    pass_bytes: tuple[int, ...]
    stride_bytes: int = 64

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.sweep_pattern(self.base, n, self.pass_bytes, self.stride_bytes)

    def describe(self) -> str:
        passes = "/".join(str(p) for p in self.pass_bytes)
        return f"sweep(base={self.base:#x}, passes={passes}, stride={self.stride_bytes})"


@dataclass(frozen=True)
class CSRAccess(AccessPattern):
    """CSR edge-array traversal in shuffled node order (sparse matvec)."""

    base: int
    n_nodes: int
    avg_degree: int = 8
    elem_bytes: int = 8

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.csr_pattern(
            rng, self.base, self.n_nodes, self.avg_degree, n, self.elem_bytes
        )

    def describe(self) -> str:
        return (
            f"csr(base={self.base:#x}, nodes={self.n_nodes}, "
            f"degree={self.avg_degree})"
        )


@dataclass(frozen=True)
class BFSAccess(AccessPattern):
    """Breadth-first frontier expansion over a seeded random graph."""

    base: int
    n_nodes: int
    avg_degree: int = 4
    node_bytes: int = 64

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.bfs_frontier_pattern(
            rng, self.base, self.n_nodes, self.avg_degree, n, self.node_bytes
        )

    def describe(self) -> str:
        return (
            f"bfs(base={self.base:#x}, nodes={self.n_nodes}, "
            f"degree={self.avg_degree})"
        )


@dataclass(frozen=True)
class HashProbeAccess(AccessPattern):
    """Uniform-hashed bucket starts with short linear-probe runs."""

    base: int
    n_buckets: int
    avg_probe: int = 2
    bucket_bytes: int = 64

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.hash_probe_pattern(
            rng, self.base, self.n_buckets, n, self.avg_probe, self.bucket_bytes
        )

    def describe(self) -> str:
        return (
            f"hash(base={self.base:#x}, buckets={self.n_buckets}, "
            f"probe={self.avg_probe})"
        )


@dataclass(frozen=True)
class IndexedAccess(AccessPattern):
    """Index-array indirection ``A[B[i]]`` driven by a seeded index array.

    The ``B`` array's contents are input data: they are a pure function
    of ``index_seed`` (via :func:`repro.trace.synthesis.index_array_values`),
    *not* of the interpreter's execution RNG.  That makes the indices
    reconstructible by anything that legitimately reads the array — the
    iteration-``i`` address is ``base + B[i mod n_indices] * elem_bytes``
    for both the demand stream and a cross-core observer resolving
    ``B``-line fills into ``A``-line prefetches.

    ``index_base``/``index_elem_bytes`` locate the companion ``B`` array
    in the address space; the matching index *load* is a plain
    :class:`StridedAccess` at that base, and the pairing is recovered
    structurally (see ``Program.indirect_pairs``).
    """

    base: int
    region_bytes: int
    index_base: int
    n_indices: int
    index_seed: int
    index_elem_bytes: int = 8
    elem_bytes: int = 8

    def __post_init__(self) -> None:
        if self.region_bytes <= 0:
            raise ProgramError("region_bytes must be positive")
        if self.n_indices <= 0:
            raise ProgramError("n_indices must be positive")
        if self.index_elem_bytes <= 0 or self.elem_bytes <= 0:
            raise ProgramError("element sizes must be positive")

    @property
    def n_slots(self) -> int:
        return max(1, self.region_bytes // self.elem_bytes)

    def index_values(self) -> np.ndarray:
        """The ``B`` array contents (pure function of ``index_seed``)."""
        return synthesis.index_array_values(
            self.index_seed, self.n_indices, self.n_slots
        )

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return synthesis.indexed_pattern(
            self.base, n, self.index_values(), self.elem_bytes
        )

    def describe(self) -> str:
        return (
            f"indexed(base={self.base:#x}, region={self.region_bytes}, "
            f"idx={self.index_base:#x}[{self.n_indices}], "
            f"seed={self.index_seed})"
        )


@dataclass(frozen=True)
class FixedAccess(AccessPattern):
    """Same address every iteration (a scalar in memory)."""

    addr: int

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.addr, dtype=np.int64)

    def describe(self) -> str:
        return f"fixed(addr={self.addr:#x})"


# ----------------------------------------------------------------------
# instructions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Load:
    """A load instruction with a symbolic label."""

    label: str
    pattern: AccessPattern

    def __post_init__(self) -> None:
        if not self.label:
            raise ProgramError("load label must be non-empty")


@dataclass(frozen=True)
class Store:
    """A store instruction with a symbolic label.

    ``nt=True`` marks a non-temporal (streaming) store — x86 ``MOVNT*``
    — produced by the NT-store transformation.
    """

    label: str
    pattern: AccessPattern
    nt: bool = False

    def __post_init__(self) -> None:
        if not self.label:
            raise ProgramError("store label must be non-empty")


@dataclass(frozen=True)
class Prefetch:
    """A software prefetch covering the load labelled ``target``.

    The prefetch reuses the target's base register: its address per
    iteration is the target's address plus ``distance_bytes``.
    """

    target: str
    distance_bytes: int
    nta: bool = False

    def __post_init__(self) -> None:
        if not self.target:
            raise ProgramError("prefetch target must be non-empty")
        if self.distance_bytes == 0:
            raise ProgramError("prefetch distance must be non-zero")


@dataclass(frozen=True)
class IndirectPrefetch:
    """A software prefetch of ``A[B[i+ahead]]`` covering an indexed load.

    The second half of the paper-style indirect rewrite: after a
    ``prefetch distance(B)`` brings the future index line in, this
    instruction prefetches the *data* line the future index points at.
    Its iteration-``i`` address is the target load's address ``ahead``
    iterations later (the last iteration's address past the end), which
    is exactly ``A[B[i+ahead]]`` for an :class:`IndexedAccess` target —
    computable because the index array is seeded input data.
    """

    target: str
    ahead: int
    nta: bool = False

    def __post_init__(self) -> None:
        if not self.target:
            raise ProgramError("indirect prefetch target must be non-empty")
        if self.ahead <= 0:
            raise ProgramError("indirect prefetch ahead must be positive")


Instruction = Load | Store | Prefetch | IndirectPrefetch
