"""Vectorised execution of mini-IR programs into memory traces.

A kernel's body of ``b`` instructions over ``t`` trips becomes a
``(t, b)`` address matrix built column-by-column from each instruction's
pattern, then flattened row-major into program order — no Python loop
over iterations.  Prefetch instructions derive their column from their
target load's column plus the prefetch distance, mirroring the
``prefetch distance(base)`` addressing of the inserted assembly.

The interpreter is deterministic given its seed.  **Pattern RNG
discipline:** every instruction gets its own child generator seeded from
(seed, kernel index, instruction index), so inserting a prefetch — which
consumes no randomness — never perturbs the addresses of other
instructions.  This guarantees the optimised program touches exactly the
same demand addresses as the original, as binary rewriting would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProgramError
from repro.isa.instructions import IndirectPrefetch, Load, Store
from repro.isa.program import Kernel, Program
from repro.trace.events import MemOp, MemoryTrace

__all__ = ["ExecutionResult", "execute_program", "execute_kernel"]


@dataclass(frozen=True)
class ExecutionResult:
    """A program's trace plus per-kernel execution metadata."""

    trace: MemoryTrace
    work_per_memop: float
    mlp: float
    kernel_slices: dict[str, slice]

    def kernel_trace(self, name: str) -> MemoryTrace:
        """Sub-trace of one kernel."""
        try:
            sl = self.kernel_slices[name]
        except KeyError:
            raise ProgramError(f"unknown kernel {name!r}") from None
        return self.trace[sl]


def _instruction_rng(seed: int, kernel_idx: int, instr_idx: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(kernel_idx, instr_idx))
    )


def execute_kernel(
    kernel: Kernel,
    pc_map: dict[tuple[str, str], int],
    seed: int,
    kernel_idx: int = 0,
) -> MemoryTrace:
    """Expand one kernel into its event block."""
    t = kernel.trips
    body = kernel.body
    if t == 0:
        return MemoryTrace.empty()

    demand_cols: dict[str, np.ndarray] = {}
    addr_cols: list[np.ndarray] = []
    pc_cols: list[int] = []
    op_cols: list[int] = []

    # First pass: demand instructions generate their address streams.
    # Child generators are keyed by the instruction's *demand ordinal*,
    # not its body position: inserted prefetches consume no randomness,
    # so rewriting must not shift any other instruction's addresses.
    demand_idx = 0
    for instr in body:
        if isinstance(instr, (Load, Store)):
            rng = _instruction_rng(seed, kernel_idx, demand_idx)
            demand_idx += 1
            col = instr.pattern.generate(rng, t)
            if len(col) != t:
                raise ProgramError(
                    f"pattern for {instr.label!r} yielded {len(col)} addresses, "
                    f"expected {t}"
                )
            demand_cols[instr.label] = col

    # Second pass: assemble columns in body order, resolving prefetches.
    for instr in body:
        if isinstance(instr, (Load, Store)):
            addr_cols.append(demand_cols[instr.label])
            pc_cols.append(pc_map[(kernel.name, instr.label)])
            if isinstance(instr, Store):
                op_cols.append(int(MemOp.STORE_NT) if instr.nt else int(MemOp.STORE))
            else:
                op_cols.append(int(MemOp.LOAD))
        else:
            target_col = demand_cols.get(instr.target)
            if target_col is None:
                raise ProgramError(
                    f"prefetch target {instr.target!r} missing in kernel "
                    f"{kernel.name!r}"
                )
            if isinstance(instr, IndirectPrefetch):
                # A[B[i+ahead]]: the target's own address ``ahead``
                # iterations later, tail clamped to the final iteration.
                # Derived purely from the already-generated demand
                # column, so no randomness is consumed and the demand
                # stream stays bit-identical.
                ahead = min(instr.ahead, t)
                col = np.concatenate(
                    (target_col[ahead:], np.full(ahead, target_col[-1]))
                )
            else:
                col = np.maximum(target_col + instr.distance_bytes, 0)
            addr_cols.append(col)
            # The prefetch shares its target's PC, exactly like the
            # paper's `prefetch distance(base)` which reuses the load's
            # base register and is attributed to the same source line.
            pc_cols.append(pc_map[(kernel.name, instr.target)])
            op_cols.append(
                int(MemOp.PREFETCH_NTA) if instr.nta else int(MemOp.PREFETCH)
            )

    b = len(addr_cols)
    addr = np.stack(addr_cols, axis=1).reshape(t * b)
    pc = np.broadcast_to(np.array(pc_cols, dtype=np.int64), (t, b)).reshape(t * b)
    op = np.broadcast_to(np.array(op_cols, dtype=np.uint8), (t, b)).reshape(t * b)
    return MemoryTrace(pc.copy(), addr, op.copy())


def execute_program(program: Program, seed: int = 0) -> ExecutionResult:
    """Run a whole program; kernels execute in order."""
    pc_map = program.pc_map()
    blocks: list[MemoryTrace] = []
    slices: dict[str, slice] = {}
    offset = 0
    # Aggregate work/MLP parameters are reference-weighted over kernels.
    total_refs = 0
    work_sum = 0.0
    mlp_sum = 0.0
    for k_idx, kernel in enumerate(program.kernels):
        block = execute_kernel(kernel, pc_map, seed, k_idx)
        blocks.append(block)
        slices[kernel.name] = slice(offset, offset + len(block))
        offset += len(block)
        refs = kernel.trips * len(kernel.mem_instructions)
        total_refs += refs
        work_sum += kernel.work_per_memop * refs
        mlp_sum += kernel.mlp * refs

    trace = MemoryTrace.concat(blocks)
    if total_refs:
        work = work_sum / total_refs
        mlp = max(1.0, mlp_sum / total_refs)
    else:
        work, mlp = 0.0, 1.0
    return ExecutionResult(
        trace=trace, work_per_memop=work, mlp=mlp, kernel_slices=slices
    )
