"""Textual assembly form of mini-IR programs.

The paper's framework "automatically inserts the optimizations at the
assembler level"; this module provides the equivalent human-readable
surface for the reproduction — programs round-trip through a small
assembly dialect, and rewritten programs show their inserted
``prefetch``/``prefetchnta`` lines inline::

    .program libquantum
    .kernel gates trips=500000 work=6.0 mlp=6.0
      Lq: load stream(base=0x10000000, elem=16)
          prefetchnta +1024(Lq)
      Sq: store stream(base=0x30000000, elem=16)
    .end

:func:`emit` renders a program, :func:`parse` reads one back; both are
inverse up to whitespace (tested property-style).
"""

from __future__ import annotations

import re

from repro.errors import ProgramError
from repro.isa.instructions import (
    AccessPattern,
    BurstAccess,
    ChaseAccess,
    FixedAccess,
    GatherAccess,
    Load,
    Prefetch,
    RandomAccess,
    Store,
    SweepAccess,
    StreamAccess,
    StridedAccess,
)
from repro.isa.program import Kernel, Program

__all__ = ["emit", "parse"]

_INT = r"[+-]?(?:0x[0-9a-fA-F]+|\d+)"


def _parse_int(text: str) -> int:
    return int(text, 0)


def _parse_kwargs(text: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ProgramError(f"malformed pattern argument {part!r}")
        key, value = part.split("=", 1)
        out[key.strip()] = value.strip()
    return out


def _parse_pattern(text: str) -> AccessPattern:
    m = re.fullmatch(r"(\w+)\((.*)\)", text.strip())
    if not m:
        raise ProgramError(f"malformed pattern {text!r}")
    kind, argtext = m.group(1), m.group(2)
    args = _parse_kwargs(argtext)
    try:
        if kind == "stream":
            return StreamAccess(_parse_int(args["base"]), _parse_int(args["elem"]))
        if kind == "strided":
            wrap = args.get("wrap")
            return StridedAccess(
                _parse_int(args["base"]),
                _parse_int(args["stride"]),
                None if wrap is None else _parse_int(wrap),
            )
        if kind == "chase":
            return ChaseAccess(
                _parse_int(args["base"]),
                _parse_int(args["nodes"]),
                _parse_int(args["node"]),
            )
        if kind == "random":
            return RandomAccess(
                _parse_int(args["base"]), _parse_int(args["region"])
            )
        if kind == "gather":
            return GatherAccess(
                _parse_int(args["base"]),
                _parse_int(args["region"]),
                float(args["locality"]),
            )
        if kind == "burst":
            return BurstAccess(
                _parse_int(args["base"]),
                _parse_int(args["region"]),
                _parse_int(args["len"]),
                _parse_int(args["stride"]),
            )
        if kind == "sweep":
            passes = tuple(int(x) for x in args["passes"].split("/"))
            return SweepAccess(_parse_int(args["base"]), passes, _parse_int(args["stride"]))
        if kind == "fixed":
            return FixedAccess(_parse_int(args["addr"]))
    except KeyError as exc:
        raise ProgramError(f"pattern {kind!r} missing argument {exc}") from None
    raise ProgramError(f"unknown pattern kind {kind!r}")


def emit(program: Program) -> str:
    """Render a program in the assembly dialect."""
    lines = [f".program {program.name}"]
    for kernel in program.kernels:
        lines.append(
            f".kernel {kernel.name} trips={kernel.trips} "
            f"work={kernel.work_per_memop} mlp={kernel.mlp}"
        )
        for instr in kernel.body:
            if isinstance(instr, Load):
                lines.append(f"  {instr.label}: load {instr.pattern.describe()}")
            elif isinstance(instr, Store):
                op = "storent" if instr.nt else "store"
                lines.append(f"  {instr.label}: {op} {instr.pattern.describe()}")
            elif isinstance(instr, Prefetch):
                op = "prefetchnta" if instr.nta else "prefetch"
                lines.append(
                    f"      {op} {instr.distance_bytes:+d}({instr.target})"
                )
        lines.append(".end")
    return "\n".join(lines) + "\n"


_KERNEL_RE = re.compile(
    r"\.kernel\s+(\w+)\s+trips=(\d+)\s+work=([\d.eE+-]+)\s+mlp=([\d.eE+-]+)"
)
_MEM_RE = re.compile(r"(\w+):\s+(load|store|storent)\s+(.*)")
_PF_RE = re.compile(rf"(prefetchnta|prefetch)\s+({_INT})\((\w+)\)")


def parse(text: str) -> Program:
    """Parse assembly text back into a :class:`Program`."""
    program_name: str | None = None
    kernels: list[Kernel] = []
    current: dict | None = None

    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith(".program"):
            parts = line.split()
            if len(parts) != 2:
                raise ProgramError(f"malformed .program line: {line!r}")
            program_name = parts[1]
            continue
        if line.startswith(".kernel"):
            m = _KERNEL_RE.fullmatch(line)
            if not m:
                raise ProgramError(f"malformed .kernel line: {line!r}")
            current = {
                "name": m.group(1),
                "trips": int(m.group(2)),
                "work": float(m.group(3)),
                "mlp": float(m.group(4)),
                "body": [],
            }
            continue
        if line == ".end":
            if current is None:
                raise ProgramError(".end without .kernel")
            kernels.append(
                Kernel(
                    name=current["name"],
                    body=tuple(current["body"]),
                    trips=current["trips"],
                    work_per_memop=current["work"],
                    mlp=current["mlp"],
                )
            )
            current = None
            continue
        if current is None:
            raise ProgramError(f"instruction outside kernel: {line!r}")
        m = _MEM_RE.fullmatch(line)
        if m:
            pattern = _parse_pattern(m.group(3))
            if m.group(2) == "load":
                current["body"].append(Load(m.group(1), pattern))
            else:
                current["body"].append(
                    Store(m.group(1), pattern, nt=m.group(2) == "storent")
                )
            continue
        m = _PF_RE.fullmatch(line)
        if m:
            current["body"].append(
                Prefetch(
                    target=m.group(3),
                    distance_bytes=_parse_int(m.group(2)),
                    nta=m.group(1) == "prefetchnta",
                )
            )
            continue
        raise ProgramError(f"unparseable line: {line!r}")

    if program_name is None:
        raise ProgramError("missing .program header")
    if current is not None:
        raise ProgramError(f"kernel {current['name']!r} missing .end")
    return Program(program_name, tuple(kernels))
