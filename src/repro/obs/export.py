"""Exporters: Chrome ``trace_event`` JSON and a flat metrics dump.

The trace format is the ``chrome://tracing`` / Perfetto JSON object
format (https://ui.perfetto.dev loads these directly): complete events
(``"ph": "X"``) with microsecond timestamps, one track per
(process, thread), plus metadata records naming the parent and worker
processes.  The metrics dump is a single JSON object keyed by metric
name — trivially diffable and machine-parseable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import MetricsRegistry, metrics
from repro.obs.tracer import Tracer, get_tracer

__all__ = [
    "chrome_trace",
    "metrics_dump",
    "write_chrome_trace",
    "write_metrics",
]


def chrome_trace(events: Iterable[dict], epoch: float | None = None) -> dict:
    """Build the Chrome ``trace_event`` object for finished span dicts."""
    events = list(events)
    trace_events = []
    pids = sorted({e["pid"] for e in events})
    parent_pid = os.getpid()
    for pid in pids:
        name = "repro" if pid == parent_pid else f"repro-worker-{pid}"
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event["name"],
                "cat": event["name"].split(".", 1)[0],
                "ph": "X",
                "ts": event["ts"],
                "dur": event["dur"],
                "pid": event["pid"],
                "tid": event["tid"],
                "args": event["attrs"],
            }
        )
    out = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if epoch is not None:
        out["otherData"] = {"epoch_unix_seconds": epoch}
    return out


def write_chrome_trace(path: str | Path, tracer: Tracer | None = None) -> Path:
    """Write the tracer's spans as a Chrome-trace JSON file.

    Defaults to the process-wide tracer; an empty (or absent) tracer
    still produces a valid, loadable trace with zero events.
    """
    tracer = tracer if tracer is not None else get_tracer()
    events = list(tracer.finished) if tracer is not None else []
    epoch = tracer.epoch if tracer is not None else None
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events, epoch=epoch), indent=1) + "\n")
    return path


def metrics_dump(registry: MetricsRegistry | None = None) -> dict:
    """The flat JSON object for a registry (default: the process-wide one)."""
    registry = registry if registry is not None else metrics()
    return {"format": "repro-metrics-v1", "metrics": registry.as_dict()}


def write_metrics(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Write a registry's metrics as a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(metrics_dump(registry), indent=1, sort_keys=True) + "\n")
    return path
