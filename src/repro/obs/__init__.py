"""Observability: tracing spans, a metrics registry, and exporters.

Zero-dependency instrumentation for the experiment pipeline.  Three
pieces:

* :mod:`repro.obs.tracer` — nestable, thread- and process-aware spans
  (``with obs.span("statstack.solve"): ...``) that cost one module
  truth test when disabled;
* :mod:`repro.obs.metrics` — named counters/gauges/histograms
  (cache hits, retries, bisections, simulated bandwidth …);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or https://ui.perfetto.dev) and a flat JSON
  metrics dump.

Enable through :func:`repro.api.configure(trace=True) <repro.api.configure>`
or any CLI subcommand's ``--trace-out``/``--metrics-out``; see
``docs/observability.md`` for span naming conventions and formats.
"""

from repro.obs.export import (
    chrome_trace,
    metrics_dump,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.log import get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    add_span_listener,
    disable,
    drain_spans,
    enable,
    enabled,
    get_tracer,
    remove_span_listener,
    set_tracer,
    span,
)

__all__ = [
    "ENABLED",
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "add_span_listener",
    "chrome_trace",
    "disable",
    "drain_spans",
    "enable",
    "enabled",
    "get_logger",
    "get_tracer",
    "metrics",
    "metrics_dump",
    "remove_span_listener",
    "reset_metrics",
    "set_tracer",
    "span",
    "write_chrome_trace",
    "write_metrics",
]


def __getattr__(name: str):
    # ``ENABLED`` is rebound inside repro.obs.tracer by enable()/disable();
    # the from-import above froze the value at import time.  Resolve the
    # live flag dynamically so ``obs.ENABLED`` is always current.
    if name == "ENABLED":
        from repro.obs import tracer

        return tracer.ENABLED
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
