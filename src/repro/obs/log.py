"""Diagnostics logging that always lands on *current* ``sys.stderr``.

Progress lines and other human-facing diagnostics must never pollute
stdout — ``repro ... > figure.txt`` and JSON exports have to stay
machine-parseable.  Python's stock :class:`logging.StreamHandler` binds
``sys.stderr`` at construction time, which breaks capture-based tests
and notebooks that swap the stream; this handler resolves the stream at
emit time instead.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger"]


class _DynamicStderrHandler(logging.Handler):
    """Writes each record to whatever ``sys.stderr`` is *right now*."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:
            self.handleError(record)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy, wired to stderr once.

    The ``repro`` root logger gets one :class:`_DynamicStderrHandler`
    at INFO with a bare-message format and does not propagate, so
    applications embedding the library keep full control of their own
    logging tree.
    """
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
    return logging.getLogger(name)
