"""Nestable tracing spans with statically-zero disabled overhead.

The tracer answers the question the paper's resource-efficiency story
keeps asking of us: *where did the time go?*  Every stage of the
pipeline — engine dispatch, workload profiling, the StatStack solve, the
prefetch analysis, the cache simulation — wraps its work in a named
span::

    from repro import obs

    with obs.span("statstack.solve", samples=len(samples)):
        ...

Design constraints, in priority order:

* **Zero cost disabled.**  Like :data:`repro.faults.ACTIVE`, a single
  module flag (:data:`ENABLED`) guards the hot path.  When tracing is
  off, :func:`span` returns one shared no-op context manager — no
  :class:`Span` object is ever allocated, no clock is read, no lock is
  taken.  (:attr:`Span.allocated` counts constructions so tests can
  assert this statically.)
* **Nestable and thread-aware.**  Spans form a stack per thread; each
  finished span records its depth, thread id and process id, so a
  Chrome-trace viewer reconstructs the flame graph per track.
* **Process-pool friendly.**  Worker processes trace into their own
  tracer and ship finished spans back to the parent as plain dicts
  (picklable); :func:`Tracer.ingest` merges them, preserving the
  worker's pid/tid so worker tracks render separately.
* **Deterministic when seeded.**  ``Tracer(deterministic=True)`` swaps
  the wall clock for a virtual microsecond counter, making the exported
  trace byte-stable — tests diff traces instead of eyeballing them.

Span names follow ``<category>.<operation>`` (see
``docs/observability.md``); the category (text before the first dot)
feeds the per-phase breakdown in ``EngineStats.format``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Iterable

__all__ = [
    "ENABLED",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "add_span_listener",
    "disable",
    "drain_spans",
    "enable",
    "enabled",
    "get_tracer",
    "remove_span_listener",
    "set_tracer",
    "span",
]

#: Fast-path guard read by every instrumented site (``if obs.ENABLED``).
#: True exactly while a tracer is installed via :func:`enable`.
ENABLED = False


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, named, attributed region of execution.

    Context-manager protocol: timing starts at ``__enter__`` and the
    span is recorded into its tracer at ``__exit__``.  ``set(**attrs)``
    attaches structured attributes at any point while open.
    """

    __slots__ = ("tracer", "name", "attrs", "t0", "dur", "pid", "tid", "depth", "cat_root")

    #: Class-wide construction counter; the disabled-overhead test
    #: asserts it does not move while tracing is off.
    allocated = 0

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        Span.allocated += 1
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0
        self.dur = 0.0
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.depth = 0
        self.cat_root = True

    @property
    def category(self) -> str:
        """Text before the first dot — the pipeline stage this span belongs to."""
        return self.name.split(".", 1)[0]

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.depth = len(stack)
        cat = self.category
        self.cat_root = not any(s.category == cat for s in stack)
        stack.append(self)
        self.t0 = self.tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur = self.tracer._now() - self.t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # tolerate out-of-order exits instead of corrupting the stack
            try:
                stack.remove(self)
            except ValueError:
                pass
        self.tracer._record(self)
        return False

    def as_dict(self) -> dict:
        """Plain-primitive form: picklable, JSON-able, mergeable."""
        return {
            "name": self.name,
            "ts": self.t0,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "cat_root": self.cat_root,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects finished spans; one per process (plus one per worker).

    Parameters
    ----------
    deterministic:
        Replace the wall clock with a virtual counter advancing one
        microsecond per reading, so repeated runs produce identical
        timestamps (and exported traces compare equal).
    """

    def __init__(self, deterministic: bool = False) -> None:
        self.deterministic = deterministic
        self.finished: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tick = 0
        #: Live span listeners (see :meth:`add_listener`).
        self._listeners: list = []
        #: Wall-clock time of tracer creation (trace metadata only).
        self.epoch = time.time()

    # -- clock ----------------------------------------------------------

    def _now(self) -> float:
        """Current trace time in microseconds."""
        if self.deterministic:
            with self._lock:
                self._tick += 1
                return float(self._tick)
        return time.perf_counter() * 1e6

    # -- span lifecycle -------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        """A new span (enter it with ``with``)."""
        return Span(self, name, attrs)

    def _record(self, span: Span) -> None:
        event = span.as_dict()
        with self._lock:
            self.finished.append(event)
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(event)
            except Exception:
                # A broken listener must never sink the traced work;
                # listeners are observers, not participants.
                pass

    # -- live listeners -------------------------------------------------

    def add_listener(self, listener) -> None:
        """Call ``listener(event_dict)`` on every span finished hereafter.

        Listeners run on the thread that finishes the span, outside the
        tracer lock; exceptions they raise are swallowed.  The serve
        daemon uses this to stream progress events to clients while a
        batch resolves.
        """
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Detach a listener; unknown listeners are ignored."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def ingest(self, events: Iterable[dict]) -> None:
        """Merge finished spans shipped from another process."""
        with self._lock:
            self.finished.extend(events)

    def drain(self) -> list[dict]:
        """Pop every span finished *by this process* (worker shipping).

        Spans inherited through ``fork`` from the parent's tracer are
        discarded, not re-shipped — the parent already has them.
        """
        pid = os.getpid()
        with self._lock:
            mine = [e for e in self.finished if e["pid"] == pid]
            self.finished = []
        return mine

    def clear(self) -> None:
        """Drop every recorded span (open spans are unaffected)."""
        with self._lock:
            self.finished = []

    # -- analysis -------------------------------------------------------

    def phase_totals(self) -> dict[str, float]:
        """Inclusive seconds per category (stage), deterministically ordered.

        Only *category-root* spans (spans with no enclosing span of the
        same category) contribute, so nesting within a stage does not
        double count; nesting across stages is inclusive by design — the
        StatStack solve inside the analysis pass counts towards both.
        """
        totals: dict[str, float] = {}
        with self._lock:
            events = list(self.finished)
        for event in events:
            if not event.get("cat_root", True):
                continue
            cat = event["name"].split(".", 1)[0]
            totals[cat] = totals.get(cat, 0.0) + event["dur"] / 1e6
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))


# -- process-wide default tracer ----------------------------------------

_TRACER: Tracer | None = None


def span(name: str, **attrs):
    """A span on the process-wide tracer, or the shared no-op when disabled.

    This is *the* instrumentation entry point; call sites pay one module
    attribute truth test when tracing is off.
    """
    if not ENABLED:
        return NOOP_SPAN
    return _TRACER.span(name, **attrs)


def enable(deterministic: bool = False) -> Tracer:
    """Install (or reuse) the process-wide tracer and turn tracing on."""
    global _TRACER, ENABLED
    if _TRACER is None or _TRACER.deterministic != deterministic:
        _TRACER = Tracer(deterministic=deterministic)
    ENABLED = True
    return _TRACER


def disable() -> None:
    """Turn tracing off and forget the process-wide tracer."""
    global _TRACER, ENABLED
    ENABLED = False
    _TRACER = None


def enabled() -> bool:
    """Whether the process-wide tracer is active."""
    return ENABLED


def get_tracer() -> Tracer | None:
    """The process-wide tracer, if tracing is enabled."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Swap the process-wide tracer (tests); returns the previous one."""
    global _TRACER, ENABLED
    previous = _TRACER
    _TRACER = tracer
    ENABLED = tracer is not None
    return previous


def add_span_listener(listener) -> bool:
    """Attach a live span listener to the process tracer.

    Returns ``False`` (and does nothing) when tracing is disabled —
    there is no tracer to observe, and callers are expected to cope.
    """
    if _TRACER is None:
        return False
    _TRACER.add_listener(listener)
    return True


def remove_span_listener(listener) -> None:
    """Detach a live span listener, if a tracer is installed."""
    if _TRACER is not None:
        _TRACER.remove_listener(listener)


def drain_spans() -> list[dict]:
    """Pop this process's finished spans (worker → parent shipping)."""
    if _TRACER is None:
        return []
    return _TRACER.drain()
