"""Named counters, gauges and histograms for the experiment pipeline.

The paper's evaluation is about *resources* — SLLC space, off-chip
bandwidth, profiling cost — so the reproduction needs first-class
numbers, not just log lines.  A :class:`MetricsRegistry` holds three
metric kinds under dotted names (``engine.cache.disk_hits``,
``sim.bandwidth_gbs`` …):

* :class:`Counter` — monotonically increasing totals (cache hits,
  retries, bisections);
* :class:`Gauge` — last-value instruments (worker count, cells/sec);
* :class:`Histogram` — bounded summaries (count/sum/min/max/mean) of
  per-event observations (per-cell simulated bandwidth, span counts);
  bounded because grids run to thousands of cells and the registry must
  never grow with the workload.

Instrumented sites guard updates with ``if obs.ENABLED:`` so the
disabled pipeline pays one truth test.  Worker processes accumulate into
their own registry and ship :meth:`MetricsRegistry.snapshot` back with
their results; :meth:`MetricsRegistry.merge` folds the snapshot into the
parent's registry (counters and histograms add, gauges take the
incoming value).
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metrics", "reset_metrics"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge(self, other: dict) -> None:
        self.value += other["value"]


class Gauge:
    """A last-value instrument."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge(self, other: dict) -> None:
        self.value = other["value"]


class Histogram:
    """A bounded summary (count/sum/min/max) of observations."""

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }

    def merge(self, other: dict) -> None:
        if not other["count"]:
            return
        self.count += other["count"]
        self.total += other["sum"]
        if other["min"] is not None and other["min"] < self.min:
            self.min = other["min"]
        if other["max"] is not None and other["max"] > self.max:
            self.max = other["max"]


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """Get-or-create registry of named metrics (thread-safe)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_dict(self) -> dict[str, dict]:
        """Every metric's plain-primitive form, sorted by name."""
        with self._lock:
            return {
                name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)
            }

    # Snapshots are just as_dict(); the alias marks shipping intent.
    snapshot = as_dict

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold a shipped snapshot into this registry."""
        for name, payload in snapshot.items():
            self._get(name, _KINDS[payload["kind"]]).merge(payload)

    def reset(self) -> None:
        """Drop every metric (tests and benchmark hygiene)."""
        with self._lock:
            self._metrics.clear()


# -- process-wide default registry --------------------------------------

_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry (always available)."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the process-wide registry (tests and benchmark hygiene)."""
    _REGISTRY.reset()
