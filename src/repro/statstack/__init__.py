"""StatStack statistical cache modelling (Eklov & Hagersten, ISPASS'10)."""

from repro.statstack.model import StatStackModel
from repro.statstack.mrc import MissRatioCurve, PerPCMissRatios, default_size_grid
from repro.statstack.setassoc import associativity_penalty, set_associative_miss_ratio

__all__ = [
    "StatStackModel",
    "MissRatioCurve",
    "PerPCMissRatios",
    "default_size_grid",
    "set_associative_miss_ratio",
    "associativity_penalty",
]
