"""StatStack: statistical LRU cache modelling from sparse reuse samples.

Implementation of the model of Eklov & Hagersten (ISPASS 2010) used by
the paper (§IV) to turn sparsely sampled *reuse distances* into miss
ratios for caches of arbitrary size.

Theory
------
The *reuse distance* of an access is the number of memory references
(not necessarily unique) since the previous access to its cache line;
the *stack distance* is the number of **unique** lines touched in that
window, which is what determines an LRU hit (``stack distance < C`` for
a cache of ``C`` lines).

StatStack estimates the expected stack distance of a reuse window of
length ``d`` by asking, for each of the ``d`` intervening accesses, the
probability that its *own* next reuse jumps past the end of the window —
if it does, that access touches a line not seen again inside the window,
i.e. one unique line:

    sd(d) = sum_{j=0}^{d-1} P(RD > j)

``P(RD > j)`` is read off the sampled reuse-distance distribution, with
*dangling* samples (lines never re-accessed) counted as infinite.  The
miss ratio of a cache with ``C`` lines is then the fraction of accesses
whose expected stack distance reaches ``C``; per-instruction miss ratios
restrict the sample population to samples *ending* at that instruction
(their reuse determines that access's hit/miss), plus dangling samples
*starting* there (stream-out/cold accesses whose next touch never came).

The distribution is represented sparsely (unique distances + counts), so
model construction and evaluation are O(m log m) in the number of
*samples*, never in trace length — this is what makes StatStack usable
where functional simulation is "prohibitively slow" (paper §VIII-A).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import ModelError
from repro.sampling.reuse import ReuseSampleSet

__all__ = ["StatStackModel"]


class _TailIntegral:
    """Piecewise-linear integral of the reuse-distance tail probability.

    Stores ``G(d) = sum_{j=0}^{d-1} P(RD > j)`` as segment breakpoints
    plus slopes so ``sd(d)`` is an O(log m) lookup (vectorised via
    ``searchsorted``).
    """

    __slots__ = ("starts", "g_at_start", "slope")

    def __init__(self, finite_sorted: np.ndarray, n_dangling: int) -> None:
        n_finite = len(finite_sorted)
        total = n_finite + n_dangling
        if total == 0:
            raise ModelError("cannot build StatStack from zero samples")
        uniq, counts = np.unique(finite_sorted, return_counts=True)
        cum = np.cumsum(counts)
        # Segment i covers j in [starts[i], starts[i+1]) with constant
        # tail probability slope[i] = P(RD > j) on that range.
        starts = np.concatenate(([0], uniq + 1)).astype(np.float64)
        tails = np.concatenate(
            ([float(total)], float(total) - cum.astype(np.float64))
        )
        # Tail before the first unique distance: samples with RD >= 0
        # minus those smaller than the segment — for j < uniq[0], all
        # finite samples exceed j unless uniq[0] == 0.
        slope = tails / total
        g = np.zeros(len(starts))
        if len(starts) > 1:
            seg_len = np.diff(starts)
            g[1:] = np.cumsum(seg_len * slope[:-1])
        self.starts = starts
        self.g_at_start = g
        self.slope = slope

    def stack_distance(self, d: np.ndarray) -> np.ndarray:
        """Expected stack distance for reuse distance(s) ``d``."""
        d = np.asarray(d, dtype=np.float64)
        seg = np.searchsorted(self.starts, d, side="right") - 1
        seg = np.clip(seg, 0, len(self.starts) - 1)
        return self.g_at_start[seg] + (d - self.starts[seg]) * self.slope[seg]

    def inverse(self, target_sd: float) -> float:
        """Smallest reuse distance whose expected stack distance ≥ target.

        Returns ``inf`` when the tail flattens out (pure dangling mass)
        before reaching the target.
        """
        if target_sd <= 0:
            return 0.0
        idx = int(np.searchsorted(self.g_at_start, target_sd, side="left"))
        if idx == 0:
            idx = 1
        if idx >= len(self.starts):
            # Beyond the last breakpoint the slope is the dangling mass.
            last_slope = self.slope[-1]
            if last_slope <= 0:
                return np.inf
            return float(
                self.starts[-1] + (target_sd - self.g_at_start[-1]) / last_slope
            )
        s = self.slope[idx - 1]
        if s <= 0:
            return float(self.starts[idx])
        return float(self.starts[idx - 1] + (target_sd - self.g_at_start[idx - 1]) / s)


class StatStackModel:
    """Fast statistical cache model over one application's reuse samples.

    Parameters
    ----------
    samples:
        Output of the reuse sampler
        (:class:`~repro.sampling.reuse.ReuseSampleSet`).
    line_bytes:
        Cache line size; converts cache sizes in bytes to line counts.
    """

    def __init__(self, samples: ReuseSampleSet, line_bytes: int = 64) -> None:
        if len(samples) == 0:
            raise ModelError("StatStack needs at least one reuse sample")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ModelError("line_bytes must be a positive power of two")
        with obs.span("statstack.solve", samples=len(samples)):
            self._build(samples, line_bytes)

    def _build(self, samples: ReuseSampleSet, line_bytes: int) -> None:
        self.line_bytes = line_bytes
        finite = samples.finite_mask
        self._finite_sorted = np.sort(samples.distance[finite])
        self._n_dangling = samples.n_dangling
        self._total = len(samples)
        self._tail = _TailIntegral(self._finite_sorted, self._n_dangling)

        # Per-PC populations: finite samples keyed by *ending* PC,
        # dangling counts keyed by *starting* PC.
        self._pc_distances: dict[int, np.ndarray] = {}
        end_pcs = samples.end_pc[finite]
        dists = samples.distance[finite]
        order = np.argsort(end_pcs, kind="stable")
        sorted_pcs = end_pcs[order]
        sorted_d = dists[order]
        bounds = np.flatnonzero(np.diff(sorted_pcs)) + 1
        for chunk_pc, chunk in zip(
            np.split(sorted_pcs, bounds), np.split(sorted_d, bounds)
        ):
            if len(chunk_pc):
                self._pc_distances[int(chunk_pc[0])] = np.sort(chunk)

        self._pc_dangling: dict[int, int] = {}
        dang_pcs, dang_counts = np.unique(
            samples.start_pc[~finite], return_counts=True
        )
        for pc, cnt in zip(dang_pcs.tolist(), dang_counts.tolist()):
            self._pc_dangling[pc] = cnt

    # ------------------------------------------------------------------
    # core queries
    # ------------------------------------------------------------------

    def expected_stack_distance(self, reuse_distance: np.ndarray) -> np.ndarray:
        """Vectorised ``sd(d)`` (see module docstring)."""
        return self._tail.stack_distance(reuse_distance)

    def _critical_reuse_distance(self, cache_bytes: int) -> float:
        """Reuse distance at which the expected stack distance fills the cache."""
        if cache_bytes <= 0:
            raise ModelError("cache_bytes must be positive")
        cache_lines = cache_bytes / self.line_bytes
        return self._tail.inverse(cache_lines)

    def miss_ratio(self, cache_bytes: int) -> float:
        """Modelled miss ratio of the whole application at ``cache_bytes``."""
        d_crit = self._critical_reuse_distance(cache_bytes)
        if np.isinf(d_crit):
            misses = self._n_dangling
        else:
            idx = int(np.searchsorted(self._finite_sorted, d_crit, side="left"))
            misses = (len(self._finite_sorted) - idx) + self._n_dangling
        return misses / self._total

    def pc_miss_ratio(self, pc: int, cache_bytes: int) -> float:
        """Modelled miss ratio of one instruction at ``cache_bytes``."""
        dists = self._pc_distances.get(pc)
        dangling = self._pc_dangling.get(pc, 0)
        n = (0 if dists is None else len(dists)) + dangling
        if n == 0:
            return 0.0
        d_crit = self._critical_reuse_distance(cache_bytes)
        if np.isinf(d_crit) or dists is None:
            misses = dangling
        else:
            idx = int(np.searchsorted(dists, d_crit, side="left"))
            misses = (len(dists) - idx) + dangling
        return misses / n

    # ------------------------------------------------------------------
    # populations
    # ------------------------------------------------------------------

    def modelled_pcs(self) -> list[int]:
        """PCs with at least one sample (sorted)."""
        pcs = set(self._pc_distances) | set(self._pc_dangling)
        return sorted(pcs)

    def pc_sample_count(self, pc: int) -> int:
        """Number of samples informing one PC's miss ratio."""
        dists = self._pc_distances.get(pc)
        return (0 if dists is None else len(dists)) + self._pc_dangling.get(pc, 0)

    def pc_sample_weight(self, pc: int) -> float:
        """Fraction of all samples attributed to ``pc``.

        Because sampling is uniform over references, this estimates the
        fraction of dynamic memory accesses issued by the instruction —
        used to scale per-PC miss ratios into absolute miss counts.
        """
        return self.pc_sample_count(pc) / self._total

    @property
    def n_samples(self) -> int:
        return self._total

    @property
    def dangling_fraction(self) -> float:
        return self._n_dangling / self._total
