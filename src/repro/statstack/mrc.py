"""Miss-ratio-curve objects built on top of the StatStack model.

A :class:`MissRatioCurve` is the paper's Figure 3 artefact: miss ratio as
a function of cache size, either for a whole application or for a single
instruction.  The bypass analysis (paper §VI-B) asks a *shape* question
of these curves — "does the curve drop between the L1 and LLC points?" —
so the class exposes interpolation and drop/flatness helpers rather than
raw arrays only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.config import MachineConfig
from repro.errors import ModelError
from repro.statstack.model import StatStackModel

__all__ = ["MissRatioCurve", "PerPCMissRatios", "default_size_grid"]


def default_size_grid(
    min_bytes: int = 8 * 1024,
    max_bytes: int = 8 * 1024 * 1024,
    points_per_octave: int = 1,
) -> np.ndarray:
    """Log-spaced cache sizes, 8 kB–8 MB by default (paper Fig. 3 x-axis)."""
    if min_bytes <= 0 or max_bytes < min_bytes:
        raise ModelError("invalid size-grid bounds")
    n_oct = int(np.log2(max_bytes / min_bytes) * points_per_octave)
    return (min_bytes * 2 ** (np.arange(n_oct + 1) / points_per_octave)).astype(np.int64)


@dataclass(frozen=True)
class MissRatioCurve:
    """Miss ratio sampled at a set of cache sizes.

    ``sizes_bytes`` must be strictly increasing; ``ratios`` are in
    ``[0, 1]`` and (for LRU) non-increasing, although small statistical
    wiggles from sampling are tolerated by consumers.
    """

    sizes_bytes: np.ndarray
    ratios: np.ndarray

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes_bytes, dtype=np.int64)
        ratios = np.asarray(self.ratios, dtype=np.float64)
        if len(sizes) != len(ratios) or len(sizes) == 0:
            raise ModelError("curve needs equal-length, non-empty arrays")
        if np.any(np.diff(sizes) <= 0):
            raise ModelError("sizes must be strictly increasing")
        if ratios.min() < -1e-9 or ratios.max() > 1 + 1e-9:
            raise ModelError("ratios must lie in [0, 1]")
        object.__setattr__(self, "sizes_bytes", sizes)
        object.__setattr__(self, "ratios", ratios)

    def at(self, size_bytes: int) -> float:
        """Miss ratio at an arbitrary size (log-linear interpolation)."""
        if size_bytes <= 0:
            raise ModelError("size_bytes must be positive")
        return float(
            np.interp(
                np.log2(size_bytes),
                np.log2(self.sizes_bytes.astype(np.float64)),
                self.ratios,
            )
        )

    def drop_between(self, small_bytes: int, large_bytes: int) -> float:
        """Absolute miss-ratio drop from ``small`` to ``large`` size.

        Sampled curves can wiggle upward by a hair between sizes (the
        "small statistical wiggles" tolerated above), which would make
        the raw difference negative; a real LRU drop is never below
        zero, so the result is clamped at 0 — otherwise a noisy-but-flat
        curve could pass a ``drop > threshold`` test with the *sign* of
        the comparison flipped at call sites that negate it.
        """
        if large_bytes < small_bytes:
            raise ModelError("large_bytes must be >= small_bytes")
        return max(0.0, self.at(small_bytes) - self.at(large_bytes))

    def _aligned_ratios(self, other: "MissRatioCurve") -> np.ndarray:
        """``other``'s ratios sampled on this curve's size grid."""
        if np.array_equal(self.sizes_bytes, other.sizes_bytes):
            return other.ratios
        return np.array([other.at(int(s)) for s in self.sizes_bytes])

    def linf_distance(self, other: "MissRatioCurve") -> float:
        """Largest absolute miss-ratio gap to ``other`` over this grid.

        The conformance harness' headline number: how far the modelled
        curve strays from ground truth at its worst size (paper Fig. 3
        eyeballs exactly this).  ``other`` is interpolated onto this
        curve's size grid when the grids differ.
        """
        return float(np.max(np.abs(self.ratios - self._aligned_ratios(other))))

    def l1_distance(self, other: "MissRatioCurve") -> float:
        """Mean absolute miss-ratio gap to ``other`` over this grid."""
        return float(np.mean(np.abs(self.ratios - self._aligned_ratios(other))))

    def is_monotone_nonincreasing(self, tolerance: float = 1e-9) -> bool:
        """True when the curve never rises by more than ``tolerance``.

        An exact LRU miss-ratio curve is non-increasing in cache size
        (the stack property); sampled model curves may wiggle within
        ``tolerance``.
        """
        if len(self.ratios) < 2:
            return True
        return bool(np.all(np.diff(self.ratios) <= tolerance))

    def is_flat_between(
        self, small_bytes: int, large_bytes: int, tolerance: float = 0.05
    ) -> bool:
        """True when the curve barely drops between the two sizes.

        The bypass analysis uses this with (L1 size, LLC size): a flat
        curve means the instruction does not reuse data out of the outer
        cache levels, so its lines can bypass them.  ``tolerance`` is
        *relative* to the miss ratio at the small size (a curve going
        from 40 % to 38 % is flat; 2 % to 0 % is not).
        """
        small = self.at(small_bytes)
        if small <= 0.0:
            return True
        return self.drop_between(small_bytes, large_bytes) <= tolerance * small


class PerPCMissRatios:
    """Per-instruction miss ratio curves for one application.

    Built from a :class:`~repro.statstack.model.StatStackModel`; offers
    the queries the MDDLI and bypass passes need, including the paper's
    Fig. 3 per-size sweeps for any instruction.
    """

    def __init__(
        self,
        model: StatStackModel,
        machine: MachineConfig,
        size_grid: np.ndarray | None = None,
    ) -> None:
        self.model = model
        self.machine = machine
        self.size_grid = (
            size_grid if size_grid is not None else default_size_grid()
        )

    def application_curve(self) -> MissRatioCurve:
        """Whole-application miss ratio curve over the size grid."""
        with obs.span("statstack.mrc", sizes=len(self.size_grid)):
            ratios = np.array(
                [self.model.miss_ratio(int(s)) for s in self.size_grid]
            )
            return MissRatioCurve(self.size_grid, ratios)

    def pc_curve(self, pc: int) -> MissRatioCurve:
        """One instruction's miss ratio curve over the size grid."""
        ratios = np.array(
            [self.model.pc_miss_ratio(pc, int(s)) for s in self.size_grid]
        )
        return MissRatioCurve(self.size_grid, ratios)

    def pc_level_ratios(self, pc: int) -> tuple[float, float, float]:
        """(L1, L2, LLC) miss ratios of one instruction on this machine."""
        return (
            self.model.pc_miss_ratio(pc, self.machine.l1.size_bytes),
            self.model.pc_miss_ratio(pc, self.machine.l2.size_bytes),
            self.model.pc_miss_ratio(pc, self.machine.llc.size_bytes),
        )

    def modelled_pcs(self) -> list[int]:
        """All instructions with sample support."""
        return self.model.modelled_pcs()
