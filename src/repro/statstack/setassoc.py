"""Set-associativity correction for StatStack miss ratios.

StatStack (like stack-distance analysis generally) models a
fully-associative LRU cache; real caches are set-associative, and a
2-way L1 misses somewhat more than the fully-associative model
predicts.  A. J. Smith's classic set-refinement model closes the gap:
assume lines map to the ``s`` sets uniformly at random.  An access with
stack distance ``d`` (i.e. ``d`` distinct lines touched since its last
use) misses in an ``a``-way cache iff at least ``a`` of those ``d``
lines fell into *its* set — a Binomial tail:

    P(miss | d) = P( Binomial(d, 1/s) >= a )

:func:`set_associative_miss_ratio` evaluates this against the model's
expected stack distances, vectorised over the unique sampled reuse
distances (``scipy.stats.binom`` supplies the tail).  The fully
associative result is the ``s = 1`` … ``a = C`` limit.

Validated against the exact set-associative functional simulator in
``tests/test_setassoc.py``; the correction matters most exactly where
the paper's Table I is measured — the 2-way AMD L1.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.config import CacheConfig
from repro.errors import ModelError
from repro.statstack.model import StatStackModel

__all__ = ["set_associative_miss_ratio", "associativity_penalty"]


def set_associative_miss_ratio(
    model: StatStackModel,
    cache: CacheConfig,
    pc: int | None = None,
) -> float:
    """Miss ratio of a set-associative cache via Smith's refinement.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.statstack.model.StatStackModel`.
    cache:
        Target geometry (sets and ways are taken from it).
    pc:
        Restrict to one instruction's sample population (as in
        :meth:`StatStackModel.pc_miss_ratio`); whole application when
        omitted.
    """
    if cache.line_bytes != model.line_bytes:
        raise ModelError(
            f"cache line size {cache.line_bytes} differs from the model's "
            f"{model.line_bytes}"
        )
    if pc is None:
        distances = model._finite_sorted
        dangling = model._n_dangling
    else:
        distances = model._pc_distances.get(pc)
        dangling = model._pc_dangling.get(pc, 0)
        if distances is None:
            distances = np.empty(0, dtype=np.int64)
    total = len(distances) + dangling
    if total == 0:
        return 0.0

    sets = cache.num_sets
    ways = cache.ways
    if sets == 1:
        # fully associative: fall back to the plain threshold rule
        finite_misses = int(
            np.count_nonzero(
                model.expected_stack_distance(distances) >= cache.num_lines
            )
        )
        return (finite_misses + dangling) / total

    # One Binomial-tail evaluation per *unique* reuse distance.
    uniq, counts = np.unique(distances, return_counts=True)
    if len(uniq):
        sd = model.expected_stack_distance(uniq)
        # P(X >= ways) with X ~ Binomial(floor(sd), 1/sets)
        p_miss = stats.binom.sf(ways - 1, np.floor(sd).astype(np.int64), 1.0 / sets)
        finite_miss_mass = float(np.sum(p_miss * counts))
    else:
        finite_miss_mass = 0.0
    return (finite_miss_mass + dangling) / total


def associativity_penalty(model: StatStackModel, cache: CacheConfig) -> float:
    """How much the real geometry misses beyond the fully-associative model.

    Returns ``mr_setassoc − mr_fullyassoc`` (non-negative up to sampling
    noise); large values flag workloads whose conflict misses the plain
    model under-estimates.
    """
    fa = model.miss_ratio(cache.size_bytes)
    sa = set_associative_miss_ratio(model, cache)
    return sa - fa
