"""Content-addressed persistent result cache.

The evaluation grid is a pure function of its inputs: every cell is
deterministic given the :class:`~repro.api.ExperimentSpec`, the machine
model and the profiling rate (sampling is the pipeline's only stochastic
step and it is seeded from the spec).  That makes results safe to cache
on disk across processes and across invocations — regenerating a paper
figure a second time should cost file reads, not hours of simulation.

Keys are *content addresses*: the SHA-256 of a canonical JSON document
containing the spec fields **and everything the result depends on** —
the full machine configuration, the profiling rate, the serialisation
format version and a cache epoch.  Changing any of those (resizing a
cache level, bumping the sampling rate, revising the simulator's cache
format) silently invalidates stale entries instead of replaying them.

Two artefact kinds are stored, both as JSON via
:mod:`repro.core.serialization`:

* ``stats`` — :class:`~repro.cachesim.stats.RunStats`, one per grid cell;
* ``sampling`` — :class:`~repro.sampling.sampler.SamplingResult`, one per
  (workload, input_set, scale, rate) profiling pass.

Unreadable or format-mismatched entries are treated as misses and
removed, so a corrupted cache degrades to a cold one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

from repro import faults
from repro.api import ExperimentSpec
from repro.config import get_machine
from repro.core import serialization
from repro.errors import AnalysisError, ConfigError

__all__ = ["ResultCache", "CacheCounters", "default_cache_dir", "CACHE_EPOCH"]

#: Bump to invalidate every existing cache entry (e.g. after a change to
#: the simulator or analysis pipeline that alters results without
#: touching any keyed setting).
CACHE_EPOCH = 1

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``./.repro-cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else Path(".repro-cache")


@dataclasses.dataclass
class CacheCounters:
    """Hit/miss/store counters for one artefact kind."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.hits, self.misses, self.stores)


class ResultCache:
    """Directory-backed cache of simulation results and profiles.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first store.  Layout is
        ``root/<kind>/<key[:2]>/<key>.json`` to keep directories small.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheCounters()
        self.sampling = CacheCounters()

    # -- keys ----------------------------------------------------------

    def _machine_fingerprint(self, machine_name: str) -> dict:
        """Everything about the machine model a result depends on."""
        try:
            return dataclasses.asdict(get_machine(machine_name))
        except ConfigError:
            # Unknown machines still key deterministically (the compute
            # layer will raise for them anyway).
            return {"name": machine_name}

    def stats_key(self, spec: ExperimentSpec, profile_rate: float) -> str:
        """Content address of one grid cell's :class:`RunStats`."""
        document = {
            "kind": "stats",
            "epoch": CACHE_EPOCH,
            "format": serialization.STATS_FORMAT,
            "spec": spec.as_dict(),
            "machine": self._machine_fingerprint(spec.machine),
            "profile_rate": profile_rate,
        }
        return _digest(document)

    def sampling_key(
        self, workload: str, input_set: str, scale: float, rate: float
    ) -> str:
        """Content address of one profiling pass's :class:`SamplingResult`."""
        document = {
            "kind": "sampling",
            "epoch": CACHE_EPOCH,
            "format": serialization.SAMPLING_FORMAT,
            "workload": workload,
            "input_set": input_set,
            "scale": float(scale),
            "rate": float(rate),
        }
        return _digest(document)

    # -- stats ---------------------------------------------------------

    def has_stats(self, spec: ExperimentSpec, profile_rate: float) -> bool:
        """Whether a cell is plausibly present on disk (no counters, no
        decode).

        An existing but unreadable or zero-length entry (torn write from
        a killed process) counts as *absent* — otherwise a memo-only
        cell would never be re-persisted and could never be read back.
        """
        path = self._path("stats", self.stats_key(spec, profile_rate))
        try:
            return path.stat().st_size > 0
        except OSError:
            return False

    def get_stats(self, spec: ExperimentSpec, profile_rate: float):
        """Cached :class:`RunStats` for ``spec``, or ``None`` on a miss."""
        data = self._read("stats", self.stats_key(spec, profile_rate))
        if data is None:
            self.stats.misses += 1
            return None
        try:
            stats = serialization.stats_from_dict(data)
        except (AnalysisError, KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return stats

    def put_stats(self, spec: ExperimentSpec, profile_rate: float, stats) -> None:
        """Store one grid cell's result."""
        self._write(
            "stats",
            self.stats_key(spec, profile_rate),
            serialization.stats_to_dict(stats),
        )
        self.stats.stores += 1

    # -- sampling ------------------------------------------------------

    def get_sampling(
        self, workload: str, input_set: str, scale: float, rate: float
    ):
        """Cached :class:`SamplingResult`, or ``None`` on a miss."""
        key = self.sampling_key(workload, input_set, scale, rate)
        data = self._read("sampling", key)
        if data is None:
            self.sampling.misses += 1
            return None
        try:
            sampling = serialization.sampling_from_dict(data)
        except (AnalysisError, KeyError, TypeError, ValueError):
            self.sampling.misses += 1
            return None
        self.sampling.hits += 1
        return sampling

    def put_sampling(
        self, workload: str, input_set: str, scale: float, rate: float, sampling
    ) -> None:
        """Store one profiling pass's sampling result."""
        key = self.sampling_key(workload, input_set, scale, rate)
        self._write("sampling", key, serialization.sampling_to_dict(sampling))
        self.sampling.stores += 1

    # -- file plumbing -------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.json"

    def _read(self, kind: str, key: str) -> dict | None:
        path = self._path(kind, key)
        if faults.ACTIVE:
            faults.check("cache.read", key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            # Corrupted entry (interrupted writer from a pre-atomic era,
            # disk trouble): drop it so it stops costing a parse attempt.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return data if isinstance(data, dict) else None

    def _write(self, kind: str, key: str, data: dict) -> None:
        path = self._path(kind, key)
        if faults.ACTIVE:
            faults.check("cache.write", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent writers (parallel engine workers,
        # parallel CLI invocations) each rename a private temp file into
        # place; last writer wins with an identical document.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if faults.ACTIVE and faults.should_corrupt("cache.write", key):
            path.write_text("")  # simulate a torn write surviving on disk

    def sweep_stale_tmp(self, older_than: float = 600.0) -> int:
        """Remove temp files orphaned by killed writers; returns the count.

        A writer that dies between ``mkstemp`` and ``os.replace`` leaves
        a private ``.<key>-*.tmp`` behind forever.  Anything older than
        ``older_than`` seconds cannot belong to a live writer (writes
        take milliseconds) and is reclaimed; younger files are left alone
        so concurrent runs are never disturbed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        cutoff = time.time() - older_than
        for tmp in self.root.glob("*/*/.*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    # -- reporting -----------------------------------------------------

    def counters(self) -> dict[str, tuple[int, int, int]]:
        """{kind: (hits, misses, stores)} across this cache's lifetime."""
        return {
            "stats": self.stats.as_tuple(),
            "sampling": self.sampling.as_tuple(),
        }

    def describe(self) -> str:
        """One-line summary for engine/CLI diagnostics."""
        s, p = self.stats, self.sampling
        return (
            f"cache {self.root}: stats {s.hits} hit/{s.misses} miss/"
            f"{s.stores} stored, sampling {p.hits} hit/{p.misses} miss/"
            f"{p.stores} stored"
        )


def _digest(document: dict) -> str:
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
