"""Content-addressed persistent result cache.

The evaluation grid is a pure function of its inputs: every cell is
deterministic given the :class:`~repro.api.ExperimentSpec`, the machine
model and the profiling rate (sampling is the pipeline's only stochastic
step and it is seeded from the spec).  That makes results safe to cache
on disk across processes and across invocations — regenerating a paper
figure a second time should cost file reads, not hours of simulation.

Keys are *content addresses*: the SHA-256 of a canonical JSON document
containing the spec fields **and everything the result depends on** —
the full machine configuration, the profiling rate, the serialisation
format version and a cache epoch.  Changing any of those (resizing a
cache level, bumping the sampling rate, revising the simulator's cache
format) silently invalidates stale entries instead of replaying them.

Two artefact kinds are stored, both as JSON via
:mod:`repro.core.serialization`:

* ``stats`` — :class:`~repro.cachesim.stats.RunStats`, one per grid cell;
* ``sampling`` — :class:`~repro.sampling.sampler.SamplingResult`, one per
  (workload, input_set, scale, rate) profiling pass.

Durability and self-healing
---------------------------

Every entry is stored as its payload JSON plus a **length + SHA-256
footer** (``#repro-cache-entry-v1 len=… sha256=…``) verified on read.
Torn writes, truncation and bit flips are therefore *detected*, and a
bad entry is **quarantined** (moved under ``<root>/quarantine/``),
counted, and served as a miss — never crashed on and never silently
replayed.  Writes are atomic (private temp file, ``fsync``, then
``os.replace``); a full disk (``ENOSPC``/``EDQUOT``) or a cross-device
rename downgrades the cache to **read-only** with a counted warning
instead of failing the run.  ``verify()`` audits every entry on demand,
``gc()`` reclaims quarantine/temp debris, and ``enforce_quota()`` gives
the store a size budget with least-recently-used eviction (read hits
bump an entry's mtime) — the quota machinery the serve daemon reuses
per tenant.  The ``repro cache verify|gc|stats`` subcommands surface
all three.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

from repro import faults, obs
from repro.api import ExperimentSpec, validate_tenant
from repro.config import get_machine
from repro.core import serialization
from repro.errors import AnalysisError, ConfigError

__all__ = [
    "ResultCache",
    "CacheCounters",
    "IntegrityCounters",
    "VerifyReport",
    "default_cache_dir",
    "CACHE_EPOCH",
    "ENTRY_FORMAT",
]

#: Bump to invalidate every existing cache entry (e.g. after a change to
#: the simulator or analysis pipeline that alters results without
#: touching any keyed setting).  Epoch 2: checksummed entry footers.
CACHE_EPOCH = 2

#: On-disk entry envelope version (the footer line's leading token).
ENTRY_FORMAT = "#repro-cache-entry-v1"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Errnos that flip the cache read-only instead of failing the run.
_READONLY_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EDQUOT, errno.EXDEV, errno.EROFS, errno.EACCES, errno.EPERM}
)

_LOG = obs.get_logger("repro.cache")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``./.repro-cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else Path(".repro-cache")


@dataclasses.dataclass
class CacheCounters:
    """Hit/miss/store counters for one artefact kind."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.hits, self.misses, self.stores)


@dataclasses.dataclass
class IntegrityCounters:
    """Self-healing accounting: what the cache detected and did about it.

    ``corrupt`` entries failed their footer/CRC check on read or during
    ``verify()``; every one of them is ``quarantined`` (or unlinked when
    the move itself fails).  ``evicted`` counts quota evictions,
    ``write_errors`` the stores that were downgraded after IO trouble
    (the read-only transition logs once).
    """

    corrupt: int = 0
    quarantined: int = 0
    evicted: int = 0
    write_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class VerifyReport:
    """Outcome of one :meth:`ResultCache.verify` audit."""

    checked: int = 0
    ok: int = 0
    corrupt: int = 0
    quarantined: list[str] = dataclasses.field(default_factory=list)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        verdict = "clean" if self.corrupt == 0 else f"{self.corrupt} corrupt entr(y/ies)"
        line = f"cache verify: {self.checked} checked | {self.ok} ok | {verdict}"
        if self.quarantined:
            line += "\nquarantined:\n" + "\n".join(f"  {name}" for name in self.quarantined)
        return line


class ResultCache:
    """Directory-backed cache of simulation results and profiles.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first store.  Layout is
        ``root/<kind>/<key[:2]>/<key>.json`` plus ``root/quarantine/``
        for entries that failed their integrity check.
    quota_bytes:
        Optional size budget for :meth:`enforce_quota` (least-recently
        used entries are evicted first; ``None`` disables eviction).
    """

    KINDS = ("stats", "sampling")

    def __init__(self, root: str | Path, quota_bytes: int | None = None) -> None:
        self.root = Path(root)
        self.quota_bytes = quota_bytes
        self.stats = CacheCounters()
        self.sampling = CacheCounters()
        self.integrity = IntegrityCounters()
        #: Per-class sweep counters (see :meth:`sweep_stale_tmp`).
        self.swept: dict[str, int] = {"tmp": 0, "quarantine": 0, "journal": 0}
        #: Set after an ``ENOSPC``-class store failure: reads keep
        #: working, writes are skipped (and counted) from then on.
        self.read_only = False

    # -- keys ----------------------------------------------------------

    def _machine_fingerprint(self, machine_name: str) -> dict:
        """Everything about the machine model a result depends on."""
        try:
            return dataclasses.asdict(get_machine(machine_name))
        except ConfigError:
            # Unknown machines still key deterministically (the compute
            # layer will raise for them anyway).
            return {"name": machine_name}

    def stats_key(self, spec: ExperimentSpec, profile_rate: float) -> str:
        """Content address of one grid cell's :class:`RunStats`."""
        document = {
            "kind": "stats",
            "epoch": CACHE_EPOCH,
            "format": serialization.STATS_FORMAT,
            "spec": spec.as_dict(),
            "machine": self._machine_fingerprint(spec.machine),
            "profile_rate": profile_rate,
        }
        return _digest(document)

    def sampling_key(self, workload: str, input_set: str, scale: float, rate: float) -> str:
        """Content address of one profiling pass's :class:`SamplingResult`."""
        document = {
            "kind": "sampling",
            "epoch": CACHE_EPOCH,
            "format": serialization.SAMPLING_FORMAT,
            "workload": workload,
            "input_set": input_set,
            "scale": float(scale),
            "rate": float(rate),
        }
        return _digest(document)

    # -- stats ---------------------------------------------------------

    def has_stats(self, spec: ExperimentSpec, profile_rate: float) -> bool:
        """Whether a cell is plausibly present on disk (no counters, no
        decode).

        An existing but unreadable or zero-length entry (torn write from
        a killed process) counts as *absent* — otherwise a memo-only
        cell would never be re-persisted and could never be read back.
        """
        path = self._path("stats", self.stats_key(spec, profile_rate))
        try:
            return path.stat().st_size > 0
        except OSError:
            return False

    def get_stats(self, spec: ExperimentSpec, profile_rate: float):
        """Cached :class:`RunStats` for ``spec``, or ``None`` on a miss."""
        data = self._read("stats", self.stats_key(spec, profile_rate))
        if data is None:
            self.stats.misses += 1
            return None
        try:
            stats = serialization.stats_from_dict(data)
        except (AnalysisError, KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return stats

    def put_stats(self, spec: ExperimentSpec, profile_rate: float, stats) -> None:
        """Store one grid cell's result."""
        if self._write(
            "stats",
            self.stats_key(spec, profile_rate),
            serialization.stats_to_dict(stats),
        ):
            self.stats.stores += 1

    # -- sampling ------------------------------------------------------

    def get_sampling(self, workload: str, input_set: str, scale: float, rate: float):
        """Cached :class:`SamplingResult`, or ``None`` on a miss."""
        key = self.sampling_key(workload, input_set, scale, rate)
        data = self._read("sampling", key)
        if data is None:
            self.sampling.misses += 1
            return None
        try:
            sampling = serialization.sampling_from_dict(data)
        except (AnalysisError, KeyError, TypeError, ValueError):
            self.sampling.misses += 1
            return None
        self.sampling.hits += 1
        return sampling

    def put_sampling(
        self, workload: str, input_set: str, scale: float, rate: float, sampling
    ) -> None:
        """Store one profiling pass's sampling result."""
        key = self.sampling_key(workload, input_set, scale, rate)
        if self._write("sampling", key, serialization.sampling_to_dict(sampling)):
            self.sampling.stores += 1

    # -- file plumbing -------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _read(self, kind: str, key: str) -> dict | None:
        path = self._path(kind, key)
        if faults.ACTIVE:
            faults.check("cache.read", key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        data = _verify_entry(raw)
        if data is None:
            # Torn, truncated, or bit-flipped entry: quarantine it so it
            # stops costing a parse attempt and stays inspectable.
            self._quarantine(path, kind)
            return None
        # LRU recency for quota eviction: a hit makes the entry young.
        try:
            os.utime(path)
        except OSError:
            pass
        return data

    def _write(self, kind: str, key: str, data: dict) -> bool:
        """Durably publish one entry; returns whether the store happened.

        The payload and its integrity footer land in a private temp
        file, which is ``fsync``'d *before* the atomic rename — a crash
        at any point leaves either the old entry or the complete new
        one, never a torn file that parses.  ``ENOSPC``-class failures
        (full disk, quota, read-only or cross-device target) downgrade
        the cache to read-only with a counted warning: the run keeps
        computing, it just stops persisting.
        """
        if self.read_only:
            self.integrity.write_errors += 1
            return False
        path = self._path(kind, key)
        if faults.ACTIVE:
            faults.check("cache.write", key)
        tmp_name = None
        try:
            if faults.ACTIVE:
                faults.check("disk.enospc", key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: concurrent writers (parallel engine
            # workers, parallel CLI invocations) each rename a private
            # temp file into place; last writer wins with an identical
            # document.
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(_encode_entry(data))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            tmp_name = None
        except OSError as exc:
            if exc.errno not in _READONLY_ERRNOS:
                raise
            self._downgrade_to_read_only(exc)
            return False
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        if faults.ACTIVE:
            if faults.should_corrupt("cache.write", key):
                path.write_text("")  # simulate a torn write surviving on disk
            if faults.should_corrupt("cache.torn_write", key):
                # Simulate a write torn mid-entry: keep only the first half
                # of the bytes, which the footer check must catch on read.
                raw = path.read_bytes()
                path.write_bytes(raw[: len(raw) // 2])
        return True

    def _downgrade_to_read_only(self, exc: OSError) -> None:
        self.integrity.write_errors += 1
        if not self.read_only:
            self.read_only = True
            _LOG.warning(
                "[cache] %s: store failed (%s); cache is now read-only for "
                "this process — results keep computing, they just stop "
                "persisting",
                self.root,
                exc,
            )
        if obs.enabled():
            obs.metrics().counter("cache.integrity.write_errors").inc()

    def _quarantine(self, path: Path, kind: str) -> None:
        """Move one corrupt entry out of the addressable tree; count it."""
        self.integrity.corrupt += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / f"{kind}-{path.name}")
            self.integrity.quarantined += 1
        except OSError:
            # Quarantine itself failed (read-only fs?); at least try to
            # stop the entry from being re-parsed forever.
            try:
                path.unlink()
            except OSError:
                pass
        if obs.enabled():
            reg = obs.metrics()
            reg.counter("cache.integrity.corrupt").inc()
            reg.counter("cache.integrity.quarantined").inc()

    # -- tenancy -------------------------------------------------------

    def tenant_view(self, tenant: str, quota_bytes: int | None = None) -> "ResultCache":
        """An isolated per-tenant namespace of this cache.

        The view is a full :class:`ResultCache` rooted at
        ``<root>/tenants/<tenant>`` with its own counters, quarantine
        and quota — one tenant's evictions, corruption or disk-full
        downgrade never touch another's entries.  Tenant names are
        validated by :func:`repro.api.validate_tenant`, so a view can
        never escape the ``tenants/`` subtree (which sits outside the
        parent's addressable ``<kind>/`` dirs and is therefore invisible
        to its quota, verify and gc sweeps).
        """
        validate_tenant(tenant)
        return ResultCache(self.root / "tenants" / tenant, quota_bytes=quota_bytes)

    def tenants(self) -> list[str]:
        """Names of the tenant namespaces that exist under this cache."""
        base = self.root / "tenants"
        if not base.is_dir():
            return []
        return sorted(p.name for p in base.iterdir() if p.is_dir())

    # -- maintenance ---------------------------------------------------

    def _entries(self):
        for kind in self.KINDS:
            base = self.root / kind
            if not base.is_dir():
                continue
            yield from ((kind, p) for p in sorted(base.glob("*/*.json")))

    def verify(self) -> VerifyReport:
        """Audit every entry's integrity footer; quarantine the corrupt.

        Returns a :class:`VerifyReport`; never raises for a bad entry —
        detection *is* the healing (the entry becomes a future miss).
        """
        report = VerifyReport()
        with obs.span("cache.verify"):
            for kind, path in self._entries():
                report.checked += 1
                try:
                    raw = path.read_bytes()
                except OSError:
                    continue
                if _verify_entry(raw) is None:
                    report.corrupt += 1
                    report.quarantined.append(f"{kind}/{path.name}")
                    self._quarantine(path, kind)
                else:
                    report.ok += 1
        if obs.enabled():
            obs.metrics().counter("cache.integrity.verified").inc(report.checked)
        return report

    def entry_stats(self) -> dict:
        """Size accounting: entries and bytes per kind, quarantine, quota."""
        kinds: dict[str, dict[str, int]] = {}
        total_bytes = 0
        for kind, path in self._entries():
            bucket = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
            try:
                size = path.stat().st_size
            except OSError:
                continue
            bucket["entries"] += 1
            bucket["bytes"] += size
            total_bytes += size
        quarantined = 0
        if self.quarantine_dir.is_dir():
            quarantined = sum(1 for _ in self.quarantine_dir.iterdir())
        return {
            "root": str(self.root),
            "kinds": kinds,
            "total_bytes": total_bytes,
            "quarantined": quarantined,
            "quota_bytes": self.quota_bytes,
        }

    def enforce_quota(self, quota_bytes: int | None = None) -> int:
        """Evict least-recently-used entries until under budget.

        Recency is the entry's mtime (reads bump it), so cold entries
        go first.  Returns the number of evictions; a ``None`` budget
        (both here and on the instance) is a no-op.
        """
        quota = self.quota_bytes if quota_bytes is None else quota_bytes
        if quota is None:
            return 0
        entries = []
        total = 0
        for _kind, path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        evicted = 0
        for _mtime, size, path in sorted(entries):
            if total <= quota:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.integrity.evicted += evicted
        if evicted and obs.enabled():
            obs.metrics().counter("cache.integrity.evicted").inc(evicted)
        return evicted

    def gc(self, older_than: float = 600.0, runs_dir: str | Path | None = None) -> dict:
        """Reclaim debris: quarantined entries, stale temps, quota excess.

        Returns ``{"quarantine_removed": …, "swept": …, "evicted": …}``.
        """
        quarantine_removed = 0
        if self.quarantine_dir.is_dir():
            for entry in list(self.quarantine_dir.iterdir()):
                try:
                    entry.unlink()
                    quarantine_removed += 1
                except OSError:
                    continue
        swept = self.sweep_stale_tmp(older_than, runs_dir=runs_dir)
        evicted = self.enforce_quota()
        return {
            "quarantine_removed": quarantine_removed,
            "swept": swept,
            "evicted": evicted,
        }

    def sweep_stale_tmp(
        self, older_than: float = 600.0, runs_dir: str | Path | None = None
    ) -> int:
        """Remove temp files orphaned by killed writers; returns the count.

        A writer that dies between ``mkstemp`` and ``os.replace`` leaves
        a private ``.<key>-*.tmp`` behind forever.  Anything older than
        ``older_than`` seconds cannot belong to a live writer (writes
        take milliseconds) and is reclaimed; younger files are left alone
        so concurrent runs are never disturbed.  Three orphan classes are
        swept and counted separately in :attr:`swept` (surfaced by
        :meth:`describe`): cache-entry temps (``tmp``), interrupted
        quarantine moves (``quarantine``), and — when ``runs_dir`` is
        given — journal temps under the run directories (``journal``).
        """
        removed = 0
        cutoff = time.time() - older_than
        sweeps: list[tuple[str, object]] = []
        if self.root.is_dir():
            sweeps.append(("tmp", self.root.glob("*/*/.*.tmp")))
            sweeps.append(("quarantine", self.quarantine_dir.glob(".*.tmp")))
        if runs_dir is not None and Path(runs_dir).is_dir():
            sweeps.append(("journal", Path(runs_dir).glob("*/.*.tmp")))
        for label, candidates in sweeps:
            for tmp in candidates:
                try:
                    if tmp.stat().st_mtime <= cutoff:
                        tmp.unlink()
                        self.swept[label] += 1
                        removed += 1
                except OSError:
                    continue
        return removed

    # -- reporting -----------------------------------------------------

    def counters(self) -> dict[str, tuple[int, int, int]]:
        """{kind: (hits, misses, stores)} across this cache's lifetime."""
        return {
            "stats": self.stats.as_tuple(),
            "sampling": self.sampling.as_tuple(),
        }

    def describe(self) -> str:
        """One-line summary for engine/CLI diagnostics."""
        s, p = self.stats, self.sampling
        line = (
            f"cache {self.root}: stats {s.hits} hit/{s.misses} miss/"
            f"{s.stores} stored, sampling {p.hits} hit/{p.misses} miss/"
            f"{p.stores} stored"
        )
        i = self.integrity
        if i.corrupt or i.quarantined or i.evicted or i.write_errors:
            line += (
                f", integrity {i.corrupt} corrupt/{i.quarantined} quarantined/"
                f"{i.evicted} evicted/{i.write_errors} write errors"
            )
        if any(self.swept.values()):
            line += ", swept " + "/".join(
                f"{count} {label}" for label, count in self.swept.items() if count
            )
        if self.read_only:
            line += " [read-only]"
        return line


def _encode_entry(data: dict) -> bytes:
    """Payload JSON plus the length + SHA-256 integrity footer."""
    body = json.dumps(data, separators=(",", ":")).encode()
    digest = hashlib.sha256(body).hexdigest()
    footer = f"\n{ENTRY_FORMAT} len={len(body)} sha256={digest}\n".encode()
    return body + footer


def _verify_entry(raw: bytes) -> dict | None:
    """Decode one entry's bytes, or ``None`` if integrity checks fail."""
    lines = raw.rsplit(b"\n", 2)
    if len(lines) != 3 or lines[2] != b"":
        return None
    body, footer = lines[0], lines[1]
    try:
        token, len_field, sha_field = footer.decode().split(" ")
        if token != ENTRY_FORMAT:
            return None
        expected_len = int(len_field.removeprefix("len="))
        expected_sha = sha_field.removeprefix("sha256=")
    except (UnicodeDecodeError, ValueError):
        return None
    if len(body) != expected_len or hashlib.sha256(body).hexdigest() != expected_sha:
        return None
    try:
        data = json.loads(body)
    except json.JSONDecodeError:
        return None
    return data if isinstance(data, dict) else None


def _digest(document: dict) -> str:
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
