"""Online (windowed) prefetch optimisation.

The paper positions its analysis as enabling *dynamic binary rewriting*
(§I): because sampling is cheap and the model is fast, the whole
pipeline can run **while the program executes**, updating the inserted
prefetches as behaviour changes.  This module implements that loop on
the trace level:

1. execute a window of the program under the current prefetch plan;
2. sample the window (reuse + strides) and fold the samples into a
   sliding profile;
3. re-run the analysis to produce the plan for the *next* window.

Cache and memory-controller state persist across windows (one
continuous execution), so plan changes pay realistic transition costs.
The regression test drives a two-phase program and checks that the plan
tracks the phase change — the scenario static insertion cannot handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.stats import RunStats
from repro.config import MachineConfig
from repro.core.insertion import apply_prefetch_plan
from repro.core.pipeline import OptimizerSettings, PrefetchOptimizer
from repro.core.report import OptimizationReport
from repro.errors import AnalysisError
from repro.sampling.sampler import RuntimeSampler, SamplingResult
from repro.trace.events import MemoryTrace

__all__ = ["OnlineOptimizer", "OnlineResult"]


@dataclass
class OnlineResult:
    """Outcome of one online-optimised execution."""

    stats: RunStats
    plans: list[OptimizationReport] = field(default_factory=list)

    @property
    def n_windows(self) -> int:
        return len(self.plans)

    def plan_changes(self) -> int:
        """Number of windows whose prefetched-PC set differs from the previous."""
        changes = 0
        previous: set[int] | None = None
        for plan in self.plans:
            current = plan.prefetched_pcs
            if previous is not None and current != previous:
                changes += 1
            previous = current
        return changes


class OnlineOptimizer:
    """Windowed sample → analyse → rewrite loop over one execution.

    Parameters
    ----------
    machine:
        Target machine model.
    window_refs:
        Demand references per adaptation window.
    rate:
        Sampling rate within each window (denser than offline profiling
        because each window is short).
    history_windows:
        Sliding profile length: samples from this many recent windows
        feed the analysis.  Short histories adapt fast; long ones are
        stable.
    settings:
        Analysis thresholds (defaults to the paper's).
    """

    def __init__(
        self,
        machine: MachineConfig,
        window_refs: int = 50_000,
        rate: float = 5e-3,
        history_windows: int = 2,
        settings: OptimizerSettings | None = None,
    ) -> None:
        if window_refs <= 0:
            raise AnalysisError("window_refs must be positive")
        if history_windows <= 0:
            raise AnalysisError("history_windows must be positive")
        self.machine = machine
        self.window_refs = window_refs
        self.rate = rate
        self.history_windows = history_windows
        self.optimizer = PrefetchOptimizer(machine, settings)

    def run(
        self,
        trace: MemoryTrace,
        work_per_memop: float = 2.0,
        mlp: float = 2.0,
        seed: int = 0,
    ) -> OnlineResult:
        """Execute ``trace`` with per-window re-optimisation."""
        hierarchy = CacheHierarchy(self.machine)
        stats = RunStats(line_bytes=self.machine.line_bytes)
        plans: list[OptimizationReport] = []
        history: list[SamplingResult] = []
        current_plan: OptimizationReport | None = None

        window_id = 0
        for window in trace.iter_chunks(self.window_refs):
            if current_plan is not None and current_plan.decisions:
                executed = apply_prefetch_plan(window, current_plan)
            else:
                executed = window
            hierarchy.run(executed, work_per_memop, mlp, stats=stats)

            sampler = RuntimeSampler(
                rate=self.rate, seed=seed + window_id, min_samples=32
            )
            history.append(sampler.sample(window))
            if len(history) > self.history_windows:
                history.pop(0)

            merged_reuse = history[0].reuse
            merged_strides = history[0].strides
            for extra in history[1:]:
                merged_reuse = merged_reuse.merged_with(extra.reuse)
                merged_strides = merged_strides.merged_with(extra.strides)
            merged = SamplingResult(
                reuse=merged_reuse,
                strides=merged_strides,
                sample_rate=self.rate,
                n_refs=merged_reuse.n_refs,
                overhead_estimate=history[-1].overhead_estimate,
            )
            if len(merged.reuse):
                current_plan = self.optimizer.analyze(merged)
            plans.append(
                current_plan
                if current_plan is not None
                else OptimizationReport(machine_name=self.machine.name)
            )
            window_id += 1

        hierarchy.drain_writebacks(stats)
        stats.cycles = hierarchy.now
        return OnlineResult(stats=stats, plans=plans)
