"""Prefetch insertion at the trace level (paper §VI-C).

The real framework inserts ``prefetch[nta] distance(base)`` right after
each selected load at the assembler level; at run time every execution
of the load therefore also issues a prefetch of ``address + distance``.
:func:`apply_prefetch_plan` performs the equivalent transformation on a
:class:`~repro.trace.events.MemoryTrace`: for every demand event whose PC
carries a :class:`~repro.core.report.PrefetchDecision`, a prefetch event
to ``addr + distance_bytes`` is spliced in immediately after it.

The transformation is fully vectorised — events are assigned fractional
sort keys (original position, inserted events at position + ½) and the
result is one stable sort.

For insertion into the mini-IR (the "assembler level" of this
reproduction) see :mod:`repro.isa.rewriter`.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import OptimizationReport, PrefetchDecision
from repro.errors import AnalysisError
from repro.trace.events import MemOp, MemoryTrace

__all__ = ["apply_prefetch_plan", "apply_nt_stores", "prefetch_overhead_ratio"]


def apply_prefetch_plan(
    trace: MemoryTrace,
    decisions: list[PrefetchDecision] | OptimizationReport,
) -> MemoryTrace:
    """Return a new trace with software prefetches inserted.

    ``decisions`` may be a bare list or a full
    :class:`~repro.core.report.OptimizationReport`.
    """
    if isinstance(decisions, OptimizationReport):
        decisions = decisions.decisions
    if not decisions:
        return trace

    by_pc: dict[int, PrefetchDecision] = {}
    for d in decisions:
        if d.pc in by_pc:
            raise AnalysisError(f"duplicate prefetch decision for pc {d.pc}")
        by_pc[d.pc] = d
    direct = {pc: d for pc, d in by_pc.items() if not d.indirect_ahead}
    indirect = {pc: d for pc, d in by_pc.items() if d.indirect_ahead}

    demand = trace.demand_mask
    # Inserted-event groups in IR body order: a load's own prefetch
    # first, an index load's run-ahead prefetch second (matching
    # ``insert_prefetches``, which appends in that order); the stable
    # merge preserves group order for events sharing a source position.
    srcs: list[np.ndarray] = []
    addrs: list[np.ndarray] = []
    pcs_out: list[np.ndarray] = []
    ops: list[np.ndarray] = []

    if direct:
        pcs = sorted(direct)
        pc_arr = np.array(pcs, dtype=np.int64)
        dist_arr = np.array([direct[p].distance_bytes for p in pcs], dtype=np.int64)
        nta_arr = np.array([direct[p].nta for p in pcs], dtype=bool)

        # Match demand events against the decision table.
        match_idx = np.searchsorted(pc_arr, trace.pc)
        match_idx_clipped = np.clip(match_idx, 0, len(pc_arr) - 1)
        hits = demand & (pc_arr[match_idx_clipped] == trace.pc)
        src = np.flatnonzero(hits)
        which = match_idx_clipped[src]
        new_addr = trace.addr[src] + dist_arr[which]
        # Prefetching below address zero would fault; the rewriter drops
        # those (a real compiler guards the loop prologue similarly).
        valid = new_addr >= 0
        src = src[valid]
        which = which[valid]
        srcs.append(src)
        addrs.append(new_addr[valid])
        pcs_out.append(trace.pc[src])
        ops.append(
            np.where(
                nta_arr[which], int(MemOp.PREFETCH_NTA), int(MemOp.PREFETCH)
            ).astype(np.uint8)
        )

    for pc in sorted(indirect):
        d = indirect[pc]
        # B[i+ahead]: ordinary run-ahead prefetch on the index walk.
        idx_src = np.flatnonzero(demand & (trace.pc == d.index_pc))
        if len(idx_src):
            new_addr = trace.addr[idx_src] + d.distance_bytes
            valid = new_addr >= 0
            srcs.append(idx_src[valid])
            addrs.append(new_addr[valid])
            pcs_out.append(trace.pc[idx_src[valid]])
            ops.append(
                np.full(int(valid.sum()), int(MemOp.PREFETCH), dtype=np.uint8)
            )
        # A[B[i+ahead]]: the data load's own address ``ahead``
        # occurrences later, clamped to its final occurrence — the
        # trace-level mirror of the interpreter's column shift.
        src = np.flatnonzero(demand & (trace.pc == pc))
        if len(src):
            shifted = np.minimum(
                np.arange(len(src), dtype=np.int64) + d.indirect_ahead,
                len(src) - 1,
            )
            srcs.append(src)
            addrs.append(trace.addr[src[shifted]])
            pcs_out.append(trace.pc[src])
            ops.append(
                np.full(
                    len(src),
                    int(MemOp.PREFETCH_NTA) if d.nta else int(MemOp.PREFETCH),
                    dtype=np.uint8,
                )
            )

    if not srcs or not sum(len(s) for s in srcs):
        return trace
    src_all = np.concatenate(srcs)

    # Stable merge: original events at key i, inserted ones at i + 0.5.
    keys = np.concatenate(
        [np.arange(len(trace), dtype=np.float64), src_all.astype(np.float64) + 0.5]
    )
    order = np.argsort(keys, kind="stable")
    return MemoryTrace(
        np.concatenate([trace.pc, *pcs_out])[order],
        np.concatenate([trace.addr, *addrs])[order],
        np.concatenate([trace.op, *ops])[order],
    )


def apply_nt_stores(trace: MemoryTrace, pcs: list[int]) -> MemoryTrace:
    """Convert the stores of the given PCs into non-temporal stores.

    A pure op-kind transformation (no events added or removed) — the
    trace-level mirror of replacing ``mov`` with ``movnt`` in the
    rewritten assembly.
    """
    if not pcs:
        return trace
    pc_set = np.isin(trace.pc, np.asarray(sorted(pcs), dtype=np.int64))
    targets = pc_set & (trace.op == int(MemOp.STORE))
    if not targets.any():
        return trace
    new_op = trace.op.copy()
    new_op[targets] = int(MemOp.STORE_NT)
    return MemoryTrace(trace.pc, trace.addr, new_op)


def prefetch_overhead_ratio(original: MemoryTrace, optimised: MemoryTrace) -> float:
    """Prefetch instructions executed per original demand reference."""
    n_demand = original.n_demand
    if n_demand == 0:
        return 0.0
    return optimised.n_prefetch / n_demand
