"""Prefetch insertion at the trace level (paper §VI-C).

The real framework inserts ``prefetch[nta] distance(base)`` right after
each selected load at the assembler level; at run time every execution
of the load therefore also issues a prefetch of ``address + distance``.
:func:`apply_prefetch_plan` performs the equivalent transformation on a
:class:`~repro.trace.events.MemoryTrace`: for every demand event whose PC
carries a :class:`~repro.core.report.PrefetchDecision`, a prefetch event
to ``addr + distance_bytes`` is spliced in immediately after it.

The transformation is fully vectorised — events are assigned fractional
sort keys (original position, inserted events at position + ½) and the
result is one stable sort.

For insertion into the mini-IR (the "assembler level" of this
reproduction) see :mod:`repro.isa.rewriter`.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import OptimizationReport, PrefetchDecision
from repro.errors import AnalysisError
from repro.trace.events import MemOp, MemoryTrace

__all__ = ["apply_prefetch_plan", "apply_nt_stores", "prefetch_overhead_ratio"]


def apply_prefetch_plan(
    trace: MemoryTrace,
    decisions: list[PrefetchDecision] | OptimizationReport,
) -> MemoryTrace:
    """Return a new trace with software prefetches inserted.

    ``decisions`` may be a bare list or a full
    :class:`~repro.core.report.OptimizationReport`.
    """
    if isinstance(decisions, OptimizationReport):
        decisions = decisions.decisions
    if not decisions:
        return trace

    by_pc: dict[int, PrefetchDecision] = {}
    for d in decisions:
        if d.pc in by_pc:
            raise AnalysisError(f"duplicate prefetch decision for pc {d.pc}")
        by_pc[d.pc] = d

    pcs = sorted(by_pc)
    pc_arr = np.array(pcs, dtype=np.int64)
    dist_arr = np.array([by_pc[p].distance_bytes for p in pcs], dtype=np.int64)
    nta_arr = np.array([by_pc[p].nta for p in pcs], dtype=bool)

    # Match demand events against the decision table.
    demand = trace.demand_mask
    match_idx = np.searchsorted(pc_arr, trace.pc)
    match_idx_clipped = np.clip(match_idx, 0, len(pc_arr) - 1)
    hits = demand & (pc_arr[match_idx_clipped] == trace.pc)
    if not hits.any():
        return trace

    src = np.flatnonzero(hits)
    which = match_idx_clipped[src]
    new_addr = trace.addr[src] + dist_arr[which]
    # Prefetching below address zero would fault; the rewriter drops
    # those (a real compiler guards the loop prologue similarly).
    valid = new_addr >= 0
    src = src[valid]
    which = which[valid]
    new_addr = new_addr[valid]

    new_pc = trace.pc[src]
    new_op = np.where(
        nta_arr[which], int(MemOp.PREFETCH_NTA), int(MemOp.PREFETCH)
    ).astype(np.uint8)

    # Stable merge: original events at key i, inserted ones at i + 0.5.
    keys = np.concatenate(
        [np.arange(len(trace), dtype=np.float64), src.astype(np.float64) + 0.5]
    )
    order = np.argsort(keys, kind="stable")
    return MemoryTrace(
        np.concatenate([trace.pc, new_pc])[order],
        np.concatenate([trace.addr, new_addr])[order],
        np.concatenate([trace.op, new_op])[order],
    )


def apply_nt_stores(trace: MemoryTrace, pcs: list[int]) -> MemoryTrace:
    """Convert the stores of the given PCs into non-temporal stores.

    A pure op-kind transformation (no events added or removed) — the
    trace-level mirror of replacing ``mov`` with ``movnt`` in the
    rewritten assembly.
    """
    if not pcs:
        return trace
    pc_set = np.isin(trace.pc, np.asarray(sorted(pcs), dtype=np.int64))
    targets = pc_set & (trace.op == int(MemOp.STORE))
    if not targets.any():
        return trace
    new_op = trace.op.copy()
    new_op[targets] = int(MemOp.STORE_NT)
    return MemoryTrace(trace.pc, trace.addr, new_op)


def prefetch_overhead_ratio(original: MemoryTrace, optimised: MemoryTrace) -> float:
    """Prefetch instructions executed per original demand reference."""
    n_demand = original.n_demand
    if n_demand == 0:
        return 0.0
    return optimised.n_prefetch / n_demand
