"""Result and plan persistence.

An :class:`~repro.core.report.OptimizationReport` is the contract
between the offline analysis and the rewriter — in the paper's
deployment story the analysis host and the optimised binary's host need
not be the same machine, so plans serialise to a small, stable,
human-auditable JSON document.

The same layer also serialises the two artefacts the persistent result
cache (:mod:`repro.cache`) stores between processes and between runs:

* :class:`~repro.cachesim.stats.RunStats` — the complete outcome of one
  simulated cell of the evaluation grid;
* :class:`~repro.sampling.sampler.SamplingResult` — one workload's
  reuse/stride profile (the expensive part of profiling).

All codecs are versioned; a reader seeing an unknown ``format`` raises
:class:`~repro.errors.AnalysisError` so callers can treat the document
as a cache miss rather than mis-decode it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import faults
from repro.cachesim.stats import LevelStats, PCStats, RunStats
from repro.core.report import (
    DelinquentLoad,
    OptimizationReport,
    PrefetchDecision,
    StrideInfo,
)
from repro.errors import AnalysisError
from repro.sampling.reuse import ReuseSampleSet
from repro.sampling.sampler import SamplingResult
from repro.sampling.stridesampler import StrideSampleSet

__all__ = [
    "plan_to_dict",
    "plan_from_dict",
    "save_plan",
    "load_plan",
    "stats_to_dict",
    "stats_from_dict",
    "sampling_to_dict",
    "sampling_from_dict",
    "advisor_request_to_dict",
    "advisor_request_from_dict",
    "advisor_response_to_dict",
    "advisor_response_from_dict",
    "coordinator_policy_to_dict",
    "coordinator_policy_from_dict",
]

_FORMAT = "repro-plan-v1"
STATS_FORMAT = "repro-stats-v1"
SAMPLING_FORMAT = "repro-sampling-v1"
ADVISOR_REQUEST_FORMAT = "repro-advisor-request-v1"
ADVISOR_RESPONSE_FORMAT = "repro-advisor-response-v1"
COORDINATOR_POLICY_FORMAT = "repro-coordinator-policy-v1"


def plan_to_dict(report: OptimizationReport) -> dict:
    """Convert a report to JSON-serialisable primitives."""
    return {
        "format": _FORMAT,
        "machine": report.machine_name,
        "latency_used": report.latency_used,
        "delinquent": [
            {
                "pc": d.pc,
                "mr_l1": d.mr_l1,
                "mr_l2": d.mr_l2,
                "mr_llc": d.mr_llc,
                "sample_weight": d.sample_weight,
                "benefit_score": d.benefit_score,
            }
            for d in report.delinquent
        ],
        "strides": {
            str(pc): {
                "dominant_stride": info.dominant_stride,
                "dominance": info.dominance,
                "median_recurrence": info.median_recurrence,
                "n_samples": info.n_samples,
            }
            for pc, info in report.strides.items()
        },
        "decisions": [
            {
                "pc": d.pc,
                "stride": d.stride,
                "distance_bytes": d.distance_bytes,
                "nta": d.nta,
                # Indirect fields are emitted only when set so direct
                # plans keep the original wire shape byte-for-byte.
                **(
                    {"indirect_ahead": d.indirect_ahead, "index_pc": d.index_pc}
                    if d.indirect_ahead
                    else {}
                ),
            }
            for d in report.decisions
        ],
        "nt_stores": list(report.nt_stores),
        "skipped": {str(pc): reason for pc, reason in report.skipped.items()},
    }


def plan_from_dict(data: dict) -> OptimizationReport:
    """Rebuild a report from :func:`plan_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise AnalysisError(f"unsupported plan format {data.get('format')!r}")
    report = OptimizationReport(
        machine_name=data["machine"], latency_used=data.get("latency_used", 0.0)
    )
    report.delinquent = [
        DelinquentLoad(
            pc=d["pc"],
            mr_l1=d["mr_l1"],
            mr_l2=d["mr_l2"],
            mr_llc=d["mr_llc"],
            sample_weight=d["sample_weight"],
            benefit_score=d["benefit_score"],
        )
        for d in data.get("delinquent", [])
    ]
    report.strides = {
        int(pc): StrideInfo(
            pc=int(pc),
            dominant_stride=info["dominant_stride"],
            dominance=info["dominance"],
            median_recurrence=info["median_recurrence"],
            n_samples=info["n_samples"],
        )
        for pc, info in data.get("strides", {}).items()
    }
    report.decisions = [
        PrefetchDecision(
            pc=d["pc"],
            stride=d["stride"],
            distance_bytes=d["distance_bytes"],
            nta=d["nta"],
            indirect_ahead=int(d.get("indirect_ahead", 0)),
            index_pc=d.get("index_pc"),
        )
        for d in data.get("decisions", [])
    ]
    report.nt_stores = [int(pc) for pc in data.get("nt_stores", [])]
    report.skipped = {int(pc): r for pc, r in data.get("skipped", {}).items()}
    return report


def save_plan(report: OptimizationReport, path: str | Path) -> None:
    """Write a plan as pretty-printed JSON."""
    Path(path).write_text(json.dumps(plan_to_dict(report), indent=2) + "\n")


def _level_to_dict(level: LevelStats) -> dict:
    return {"accesses": level.accesses, "misses": level.misses}


def _level_from_dict(data: dict) -> LevelStats:
    return LevelStats(accesses=int(data["accesses"]), misses=int(data["misses"]))


def _pcstats_to_dict(pc_stats: PCStats) -> dict:
    return {
        "accesses": {str(pc): n for pc, n in sorted(pc_stats.accesses.items())},
        "misses": {str(pc): n for pc, n in sorted(pc_stats.misses.items())},
    }


def _pcstats_from_dict(data: dict) -> PCStats:
    stats = PCStats()
    stats.accesses = {int(pc): int(n) for pc, n in data.get("accesses", {}).items()}
    stats.misses = {int(pc): int(n) for pc, n in data.get("misses", {}).items()}
    return stats


def stats_to_dict(stats: RunStats) -> dict:
    """Convert one simulated run's statistics to JSON primitives."""
    return {
        "format": STATS_FORMAT,
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "l1": _level_to_dict(stats.l1),
        "l2": _level_to_dict(stats.l2),
        "llc": _level_to_dict(stats.llc),
        "pc_l1": _pcstats_to_dict(stats.pc_l1),
        "sw_prefetches": stats.sw_prefetches,
        "sw_useful": stats.sw_useful,
        "sw_useless": stats.sw_useless,
        "sw_late": stats.sw_late,
        "hw_prefetches": stats.hw_prefetches,
        "hw_useful": stats.hw_useful,
        "hw_useless": stats.hw_useless,
        "dram_fills": stats.dram_fills,
        "nta_fills": stats.nta_fills,
        "dram_writebacks": stats.dram_writebacks,
        "nt_store_writes": stats.nt_store_writes,
        "line_bytes": stats.line_bytes,
    }


def stats_from_dict(data: dict) -> RunStats:
    """Rebuild a :class:`RunStats` from :func:`stats_to_dict` output."""
    if faults.ACTIVE:
        faults.check("serialization.decode", data.get("format"))
    if data.get("format") != STATS_FORMAT:
        raise AnalysisError(f"unsupported stats format {data.get('format')!r}")
    return RunStats(
        cycles=float(data["cycles"]),
        instructions=int(data["instructions"]),
        l1=_level_from_dict(data["l1"]),
        l2=_level_from_dict(data["l2"]),
        llc=_level_from_dict(data["llc"]),
        pc_l1=_pcstats_from_dict(data.get("pc_l1", {})),
        sw_prefetches=int(data["sw_prefetches"]),
        sw_useful=int(data["sw_useful"]),
        sw_useless=int(data["sw_useless"]),
        sw_late=int(data["sw_late"]),
        hw_prefetches=int(data["hw_prefetches"]),
        hw_useful=int(data["hw_useful"]),
        hw_useless=int(data["hw_useless"]),
        dram_fills=int(data["dram_fills"]),
        nta_fills=int(data["nta_fills"]),
        dram_writebacks=int(data["dram_writebacks"]),
        nt_store_writes=int(data["nt_store_writes"]),
        line_bytes=int(data["line_bytes"]),
    )


def sampling_to_dict(sampling: SamplingResult) -> dict:
    """Convert one workload profile's sampling pass to JSON primitives."""
    return {
        "format": SAMPLING_FORMAT,
        "sample_rate": sampling.sample_rate,
        "n_refs": sampling.n_refs,
        "overhead_estimate": sampling.overhead_estimate,
        "reuse": {
            "start_pc": sampling.reuse.start_pc.tolist(),
            "end_pc": sampling.reuse.end_pc.tolist(),
            "distance": sampling.reuse.distance.tolist(),
            "n_refs": sampling.reuse.n_refs,
        },
        "strides": {
            "pc": sampling.strides.pc.tolist(),
            "stride": sampling.strides.stride.tolist(),
            "recurrence": sampling.strides.recurrence.tolist(),
        },
    }


def sampling_from_dict(data: dict) -> SamplingResult:
    """Rebuild a :class:`SamplingResult` from :func:`sampling_to_dict` output."""
    if faults.ACTIVE:
        faults.check("serialization.decode", data.get("format"))
    if data.get("format") != SAMPLING_FORMAT:
        raise AnalysisError(f"unsupported sampling format {data.get('format')!r}")
    reuse = data["reuse"]
    strides = data["strides"]
    return SamplingResult(
        reuse=ReuseSampleSet(
            start_pc=np.asarray(reuse["start_pc"], dtype=np.int64),
            end_pc=np.asarray(reuse["end_pc"], dtype=np.int64),
            distance=np.asarray(reuse["distance"], dtype=np.int64),
            n_refs=int(reuse["n_refs"]),
        ),
        strides=StrideSampleSet(
            pc=np.asarray(strides["pc"], dtype=np.int64),
            stride=np.asarray(strides["stride"], dtype=np.int64),
            recurrence=np.asarray(strides["recurrence"], dtype=np.int64),
        ),
        sample_rate=float(data["sample_rate"]),
        n_refs=int(data["n_refs"]),
        overhead_estimate=float(data["overhead_estimate"]),
    )


def advisor_request_to_dict(request) -> dict:
    """Convert an :class:`~repro.api.AdvisorRequest` to JSON primitives.

    The document is the unit the ``repro-advisor-v1`` wire protocol
    frames one-per-line; field order is stable and every value is a
    plain JSON primitive.
    """
    return {
        "format": ADVISOR_REQUEST_FORMAT,
        "workload": request.workload,
        "machine": request.machine,
        "config": request.config,
        "input_set": request.input_set,
        "scale": request.scale,
        "trace": (
            None
            if request.trace is None
            else [[pc, addr, op] for pc, addr, op in request.trace]
        ),
        "tenant": request.tenant,
        "request_id": request.request_id,
        "want_plan": request.want_plan,
        "want_stats": request.want_stats,
        "stream": request.stream,
    }


def advisor_request_from_dict(data: dict):
    """Rebuild an :class:`~repro.api.AdvisorRequest`; validates as it goes.

    Raises :class:`~repro.errors.AnalysisError` for an unknown format and
    lets the request's own validation (:class:`~repro.errors.ExperimentError`)
    surface malformed fields — the serve daemon maps both to an
    ``error`` response rather than dropping the connection.
    """
    from repro.api import AdvisorRequest

    if data.get("format") != ADVISOR_REQUEST_FORMAT:
        raise AnalysisError(
            f"unsupported advisor request format {data.get('format')!r}"
        )
    trace = data.get("trace")
    return AdvisorRequest(
        workload=data.get("workload"),
        machine=data.get("machine", "amd-phenom-ii"),
        config=data.get("config", "swnt"),
        input_set=data.get("input_set", "ref"),
        scale=data.get("scale", 1.0),
        trace=None if trace is None else tuple(tuple(ev) for ev in trace),
        tenant=data.get("tenant", "default"),
        request_id=data.get("request_id", ""),
        want_plan=bool(data.get("want_plan", True)),
        want_stats=bool(data.get("want_stats", True)),
        stream=bool(data.get("stream", False)),
    )


def advisor_response_to_dict(response) -> dict:
    """Convert an :class:`~repro.api.AdvisorResponse` to JSON primitives.

    ``plan`` and ``stats`` are embedded verbatim — they are already
    :func:`plan_to_dict` / :func:`stats_to_dict` documents, so a
    response round-trips byte-for-byte through its own codec.
    """
    return {
        "format": ADVISOR_RESPONSE_FORMAT,
        "status": response.status,
        "request_id": response.request_id,
        "tenant": response.tenant,
        "spec": response.spec,
        "plan": response.plan,
        "stats": response.stats,
        "error": response.error,
        "retry_after": response.retry_after,
    }


def advisor_response_from_dict(data: dict):
    """Rebuild an :class:`~repro.api.AdvisorResponse` from codec output."""
    from repro.api import AdvisorResponse

    if data.get("format") != ADVISOR_RESPONSE_FORMAT:
        raise AnalysisError(
            f"unsupported advisor response format {data.get('format')!r}"
        )
    return AdvisorResponse(
        status=data.get("status", "error"),
        request_id=data.get("request_id", ""),
        tenant=data.get("tenant", "default"),
        spec=data.get("spec"),
        plan=data.get("plan"),
        stats=data.get("stats"),
        error=data.get("error"),
        retry_after=data.get("retry_after"),
    )


def coordinator_policy_to_dict(policy) -> dict:
    """Convert a frozen coordinator Q policy to JSON primitives.

    Q-table states serialise as ``"r,b,g,s"`` keys; action values are
    already rounded at freeze time (:func:`repro.multicore.coordinator.
    train_coordinator`), so the document is bit-stable across
    round-trips.
    """
    return {
        "format": COORDINATOR_POLICY_FORMAT,
        "seed": policy.seed,
        "episodes": policy.episodes,
        "alpha": policy.alpha,
        "gamma": policy.gamma,
        "q": {
            ",".join(str(v) for v in state): list(row)
            for state, row in sorted(policy.q.items())
        },
    }


def coordinator_policy_from_dict(data: dict):
    """Rebuild a :class:`~repro.multicore.coordinator.CoordinatorPolicy`."""
    from repro.multicore.coordinator import CoordinatorPolicy

    if data.get("format") != COORDINATOR_POLICY_FORMAT:
        raise AnalysisError(
            f"unsupported coordinator policy format {data.get('format')!r}"
        )
    try:
        q = {
            tuple(int(v) for v in key.split(",")): tuple(float(v) for v in row)
            for key, row in data.get("q", {}).items()
        }
    except ValueError as exc:
        raise AnalysisError(f"malformed coordinator policy Q table: {exc}") from None
    return CoordinatorPolicy(
        seed=int(data.get("seed", 0)),
        episodes=int(data.get("episodes", 0)),
        alpha=float(data.get("alpha", 0.0)),
        gamma=float(data.get("gamma", 0.0)),
        q=q,
    )


def load_plan(path: str | Path) -> OptimizationReport:
    """Read a plan written by :func:`save_plan`."""
    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"no plan file at {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{path} is not valid JSON: {exc}") from None
    return plan_from_dict(data)
