"""Prefetch-plan persistence.

An :class:`~repro.core.report.OptimizationReport` is the contract
between the offline analysis and the rewriter — in the paper's
deployment story the analysis host and the optimised binary's host need
not be the same machine, so plans serialise to a small, stable,
human-auditable JSON document.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.report import (
    DelinquentLoad,
    OptimizationReport,
    PrefetchDecision,
    StrideInfo,
)
from repro.errors import AnalysisError

__all__ = ["plan_to_dict", "plan_from_dict", "save_plan", "load_plan"]

_FORMAT = "repro-plan-v1"


def plan_to_dict(report: OptimizationReport) -> dict:
    """Convert a report to JSON-serialisable primitives."""
    return {
        "format": _FORMAT,
        "machine": report.machine_name,
        "latency_used": report.latency_used,
        "delinquent": [
            {
                "pc": d.pc,
                "mr_l1": d.mr_l1,
                "mr_l2": d.mr_l2,
                "mr_llc": d.mr_llc,
                "sample_weight": d.sample_weight,
                "benefit_score": d.benefit_score,
            }
            for d in report.delinquent
        ],
        "strides": {
            str(pc): {
                "dominant_stride": info.dominant_stride,
                "dominance": info.dominance,
                "median_recurrence": info.median_recurrence,
                "n_samples": info.n_samples,
            }
            for pc, info in report.strides.items()
        },
        "decisions": [
            {
                "pc": d.pc,
                "stride": d.stride,
                "distance_bytes": d.distance_bytes,
                "nta": d.nta,
            }
            for d in report.decisions
        ],
        "nt_stores": list(report.nt_stores),
        "skipped": {str(pc): reason for pc, reason in report.skipped.items()},
    }


def plan_from_dict(data: dict) -> OptimizationReport:
    """Rebuild a report from :func:`plan_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise AnalysisError(f"unsupported plan format {data.get('format')!r}")
    report = OptimizationReport(
        machine_name=data["machine"], latency_used=data.get("latency_used", 0.0)
    )
    report.delinquent = [
        DelinquentLoad(
            pc=d["pc"],
            mr_l1=d["mr_l1"],
            mr_l2=d["mr_l2"],
            mr_llc=d["mr_llc"],
            sample_weight=d["sample_weight"],
            benefit_score=d["benefit_score"],
        )
        for d in data.get("delinquent", [])
    ]
    report.strides = {
        int(pc): StrideInfo(
            pc=int(pc),
            dominant_stride=info["dominant_stride"],
            dominance=info["dominance"],
            median_recurrence=info["median_recurrence"],
            n_samples=info["n_samples"],
        )
        for pc, info in data.get("strides", {}).items()
    }
    report.decisions = [
        PrefetchDecision(
            pc=d["pc"],
            stride=d["stride"],
            distance_bytes=d["distance_bytes"],
            nta=d["nta"],
        )
        for d in data.get("decisions", [])
    ]
    report.nt_stores = [int(pc) for pc in data.get("nt_stores", [])]
    report.skipped = {int(pc): r for pc, r in data.get("skipped", {}).items()}
    return report


def save_plan(report: OptimizationReport, path: str | Path) -> None:
    """Write a plan as pretty-printed JSON."""
    Path(path).write_text(json.dumps(plan_to_dict(report), indent=2) + "\n")


def load_plan(path: str | Path) -> OptimizationReport:
    """Read a plan written by :func:`save_plan`."""
    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"no plan file at {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{path} is not valid JSON: {exc}") from None
    return plan_from_dict(data)
