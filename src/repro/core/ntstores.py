"""Non-temporal store identification — an extension beyond the paper.

The paper bypasses the cache on the *prefetch* side (`PREFETCHNTA`);
streaming *stores* still perform a read-for-ownership fill and a later
writeback — two off-chip transfers per written line.  x86 offers
``MOVNT*`` stores that write-combine straight to DRAM (one transfer, no
fill, no cache occupancy), and the very same data-reuse analysis that
drives the paper's bypass decision can prove them safe:

* the store must actually miss (otherwise there is no fill to save) —
  the same ``MR > α/latency``-style materiality test as MDDLI;
* **nothing must read the line while it would still be cached.**  The
  reuse samples' data-flow graph gives this directly: any data-reusing
  *other* instruction disqualifies the store (its read would now miss
  all the way to DRAM).  Self-reuse by the same store (sub-line strides
  writing one line several times) is fine — the write-combining buffer
  merges it.

On store-heavy streams (lbm writes a full lattice per timestep) this
halves the stores' traffic on top of Soft.Pref.+NT; the
``bench_nt_stores`` benchmark quantifies it.
"""

from __future__ import annotations

from repro.core.bypass import data_reusing_loads
from repro.core.mddli import cost_benefit_threshold
from repro.errors import AnalysisError
from repro.sampling.sampler import SamplingResult
from repro.statstack.mrc import PerPCMissRatios

__all__ = ["identify_nt_stores"]


def identify_nt_stores(
    sampling: SamplingResult,
    ratios: PerPCMissRatios,
    store_pcs: set[int],
    latency: float | None = None,
    min_samples: int = 4,
    min_reuser_share: float = 0.05,
) -> list[int]:
    """Store instructions safe and worthwhile to convert to ``MOVNT``.

    Parameters
    ----------
    sampling:
        The profiling pass output (reuse samples give the data-flow
        graph).
    ratios:
        Per-PC miss ratio provider for the target machine.
    store_pcs:
        PCs of the program's store instructions (the analysis cannot
        infer operation kinds from addresses alone; the rewriter knows
        them from the program, see
        :meth:`repro.isa.program.Program.store_pcs`).
    latency:
        Average miss latency for the materiality threshold; defaults to
        the machine estimate.
    min_samples:
        Sample support required per store.
    min_reuser_share:
        Reuse-share below which a consuming instruction is treated as
        statistical noise (same default as the bypass analysis).

    Returns the selected PCs sorted by descending miss ratio.
    """
    if min_samples < 0:
        raise AnalysisError("min_samples must be non-negative")
    machine = ratios.machine
    threshold = cost_benefit_threshold(machine, latency)

    selected: list[tuple[float, int]] = []
    for pc in sorted(store_pcs):
        if ratios.model.pc_sample_count(pc) < min_samples:
            continue
        mr_l1 = ratios.model.pc_miss_ratio(pc, machine.l1.size_bytes)
        if mr_l1 <= threshold:
            continue  # the store rarely fills; nothing to save
        reusers = data_reusing_loads(sampling.reuse, pc, min_reuser_share)
        if any(reuser != pc for reuser in reusers):
            continue  # someone reads the written data while cached
        selected.append((mr_l1, pc))
    selected.sort(reverse=True)
    return [pc for _, pc in selected]
