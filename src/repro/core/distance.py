"""Prefetch distance computation (paper §VI-A).

To hide memory latency, a prefetch must be issued enough iterations
before the demand load.  With the selected stride, the paper computes the
distance in bytes as::

    P = ceil(l / d) × stride

where ``l`` is the average memory latency and ``d`` the cycles per loop
iteration, approximated as ``d = recurrence × Δ`` (``Δ`` = average cycles
per memory operation).  When the stride is smaller than the cache line
``C`` the line is reused ``i = C / stride`` times, so the distance is
shortened proportionally::

    P = ceil(latency / (d × i)) × C

Finally, a loop executing ``R`` references can only usefully run ``R/2``
ahead — the first ``P`` bytes of any prefetched region are misses, so the
analysis enforces ``P ≤ ceil(R / 2)`` (in iterations, scaled by stride).
"""

from __future__ import annotations

import math

from repro.config import MachineConfig
from repro.core.report import StrideInfo
from repro.errors import AnalysisError

__all__ = ["compute_prefetch_distance"]


def compute_prefetch_distance(
    stride_info: StrideInfo,
    machine: MachineConfig,
    latency: float | None = None,
    refs_in_loop: int | None = None,
    delta: float | None = None,
) -> int:
    """Distance in bytes to prefetch ahead of a delinquent load.

    Parameters
    ----------
    stride_info:
        Output of the stride analysis (dominant stride + recurrence).
    machine:
        Supplies ``Δ`` (cycles per memory operation), the line size and
        the default latency.
    latency:
        Average memory latency ``l``; defaults to the machine estimate
        (the paper measures it with performance counters).
    refs_in_loop:
        Estimated dynamic reference count ``R`` of the loop; enables the
        ``P ≤ R/2`` clamp when known.
    delta:
        Override for ``Δ``; defaults to the machine's calibrated value.

    Returns
    -------
    Signed distance in bytes (negative for descending strides).
    """
    stride = stride_info.dominant_stride
    if stride == 0:
        raise AnalysisError("cannot compute a distance for a zero stride")
    lat = machine.avg_memory_latency if latency is None else latency
    if lat <= 0:
        raise AnalysisError("latency must be positive")
    dlt = machine.cycles_per_memop if delta is None else delta
    if dlt <= 0:
        raise AnalysisError("delta must be positive")

    # d — cycles per loop iteration, from the recurrence (memory
    # references between executions of this load) and Δ.  A recurrence of
    # zero means back-to-back executions; one memop of spacing is the
    # floor.
    d = max(1.0, (stride_info.median_recurrence + 1.0)) * dlt

    line = machine.line_bytes
    magnitude = abs(stride)
    sign = 1 if stride > 0 else -1

    if magnitude >= line:
        iterations_ahead = math.ceil(lat / d)
        distance = iterations_ahead * magnitude
    else:
        # Short strides reuse the line i = C/stride times, so fewer
        # line-granule fetches are needed per unit time.
        i = line / magnitude
        lines_ahead = math.ceil(lat / (d * i))
        distance = lines_ahead * line

    # P (in iterations) must not exceed R/2 — otherwise more than half
    # the loop's references are cold misses ahead of the prefetch wave.
    # R is the smaller of the static loop trip count (when known) and the
    # run length estimated from stride-sample dominance, which catches
    # short-lived strided runs inside long loops (cigar's rows).
    r_candidates = [stride_info.estimated_run_length]
    if refs_in_loop is not None and refs_in_loop > 0:
        r_candidates.append(float(refs_in_loop))
    r = min(r_candidates)
    if math.isfinite(r):
        max_iterations = max(1.0, r / 2.0)
        max_distance = max(line, int(max_iterations * magnitude))
        distance = min(distance, max_distance)

    return sign * max(line, int(distance))
