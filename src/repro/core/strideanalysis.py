"""Stride analysis: regular-stride classification (paper §VI).

For each delinquent load, its stride samples are grouped into
cache-line-sized buckets ("all strides of similar size that are likely
to fall in the same cache line").  If more than 70 % of the samples land
in one bucket the load has a *regular stride*, and the most frequent
stride inside the dominant bucket is selected for the prefetch-distance
computation.  Pointer-chasing loads (omnetpp, xalan) fail this test —
their stride histograms are flat — which is precisely why the paper's
miss coverage is low for them despite MDDLI finding their delinquent
loads (paper §VI-D: omnetpp's MDDLI coverage is 89 %, stride-prefetchable
coverage only 9 %).
"""

from __future__ import annotations

import numpy as np

from repro.core.report import StrideInfo
from repro.errors import AnalysisError
from repro.sampling.stridesampler import StrideSampleSet

__all__ = ["analyze_stride", "analyze_all_strides"]


def _bucket(strides: np.ndarray, line_bytes: int) -> np.ndarray:
    """Cache-line-sized stride groups (floor division keeps sign)."""
    return np.floor_divide(strides, line_bytes)


def analyze_stride(
    samples: StrideSampleSet,
    pc: int,
    line_bytes: int = 64,
    dominance_threshold: float = 0.7,
    min_samples: int = 4,
) -> StrideInfo | None:
    """Classify one load's stride behaviour.

    Returns a :class:`~repro.core.report.StrideInfo` when a dominant
    stride group exists and its representative stride is non-zero;
    otherwise ``None`` (irregular, or stationary access).
    """
    if not 0.0 < dominance_threshold <= 1.0:
        raise AnalysisError("dominance_threshold must be in (0, 1]")
    strides, recurrences = samples.for_pc(pc)
    n = len(strides)
    if n < min_samples:
        return None

    groups = _bucket(strides, line_bytes)
    uniq, counts = np.unique(groups, return_counts=True)
    best = int(np.argmax(counts))
    dominance = counts[best] / n
    if dominance < dominance_threshold:
        return None

    in_group = groups == uniq[best]
    group_strides = strides[in_group]
    vals, val_counts = np.unique(group_strides, return_counts=True)
    dominant_stride = int(vals[np.argmax(val_counts)])
    if dominant_stride == 0:
        # Stationary accesses (same address every iteration) never miss
        # after the first touch; nothing to prefetch.
        return None

    return StrideInfo(
        pc=pc,
        dominant_stride=dominant_stride,
        dominance=float(dominance),
        median_recurrence=float(np.median(recurrences)),
        n_samples=n,
    )


def analyze_all_strides(
    samples: StrideSampleSet,
    pcs: list[int] | None = None,
    line_bytes: int = 64,
    dominance_threshold: float = 0.7,
    min_samples: int = 4,
) -> dict[int, StrideInfo]:
    """Run :func:`analyze_stride` over many loads; keep the regular ones."""
    if pcs is None:
        pcs = [int(p) for p in samples.sampled_pcs()]
    out: dict[int, StrideInfo] = {}
    for pc in pcs:
        info = analyze_stride(
            samples, pc, line_bytes, dominance_threshold, min_samples
        )
        if info is not None:
            out[pc] = info
    return out
