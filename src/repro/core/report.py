"""Result dataclasses produced by the optimisation pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DelinquentLoad",
    "StrideInfo",
    "PrefetchDecision",
    "OptimizationReport",
]


@dataclass(frozen=True)
class DelinquentLoad:
    """A load selected by MDDLI as worth prefetching (paper §V).

    Attributes
    ----------
    pc:
        Static instruction id.
    mr_l1, mr_l2, mr_llc:
        Modelled miss ratios at the machine's three cache sizes.
    sample_weight:
        Fraction of all reuse samples attributed to this PC — an
        estimate of its share of dynamic memory references.
    benefit_score:
        ``mr_l1 × latency − α``: expected cycles saved per execution; the
        quantity the cost/benefit test thresholds above zero.
    """

    pc: int
    mr_l1: float
    mr_l2: float
    mr_llc: float
    sample_weight: float
    benefit_score: float


@dataclass(frozen=True)
class StrideInfo:
    """Outcome of the stride analysis for one delinquent load (paper §VI)."""

    pc: int
    dominant_stride: int
    dominance: float
    median_recurrence: float
    n_samples: int

    @property
    def is_regular(self) -> bool:
        """True when a dominant stride group exists (dominance set by caller)."""
        return self.dominant_stride != 0

    @property
    def estimated_run_length(self) -> float:
        """Expected consecutive same-stride references (the loop's ``R``).

        Off-group samples mark the ends of strided runs, so a dominance
        of ``p`` implies runs of about ``p / (1 - p)`` iterations — how
        the analysis bounds the prefetch distance (``P ≤ R/2``) for
        short-lived strides such as cigar's chromosome rows.  Infinite
        for perfectly regular streams.
        """
        if self.dominance >= 1.0:
            return float("inf")
        return self.dominance / (1.0 - self.dominance)


@dataclass(frozen=True)
class PrefetchDecision:
    """One prefetch instruction to insert (paper §VI-C).

    ``prefetch[nta] distance(base)`` is placed right after load ``pc``;
    at trace level this means every execution of the load issues a
    prefetch of ``addr + distance_bytes``.

    An *indirect* decision (``indirect_ahead > 0``) covers an ``A[B[i]]``
    load instead: ``distance_bytes`` then runs ahead on the companion
    index load ``index_pc`` (prefetching ``B[i+ahead]``), ``stride`` is
    the index walk's stride, and the data load gets an
    ``IndirectPrefetch`` of ``A[B[i+ahead]]`` — the two-instruction
    rewrite of the paper's indirection discussion.
    """

    pc: int
    stride: int
    distance_bytes: int
    nta: bool
    indirect_ahead: int = 0
    index_pc: int | None = None

    def __post_init__(self) -> None:
        if self.distance_bytes == 0:
            raise ValueError("a prefetch with zero distance is useless")
        if self.indirect_ahead < 0:
            raise ValueError("indirect_ahead must be non-negative")
        if self.indirect_ahead > 0 and self.index_pc is None:
            raise ValueError("an indirect decision requires index_pc")
        if self.indirect_ahead == 0 and self.index_pc is not None:
            raise ValueError("index_pc requires indirect_ahead > 0")

    @property
    def kind(self) -> str:
        if self.indirect_ahead:
            return "prefetch-indirect"
        return "prefetchnta" if self.nta else "prefetch"


@dataclass
class OptimizationReport:
    """Full output of one analysis pass over one application profile.

    ``skipped`` maps PCs that were considered but rejected to a short
    reason string (``"cost-benefit"``, ``"irregular-stride"``,
    ``"zero-stride"``, ``"few-samples"``) — Table I's coverage gaps come
    straight from these buckets.
    """

    machine_name: str
    delinquent: list[DelinquentLoad] = field(default_factory=list)
    strides: dict[int, StrideInfo] = field(default_factory=dict)
    decisions: list[PrefetchDecision] = field(default_factory=list)
    nt_stores: list[int] = field(default_factory=list)
    skipped: dict[int, str] = field(default_factory=dict)
    latency_used: float = 0.0

    def decision_for(self, pc: int) -> PrefetchDecision | None:
        """The decision covering ``pc``, if any."""
        for d in self.decisions:
            if d.pc == pc:
                return d
        return None

    @property
    def prefetched_pcs(self) -> set[int]:
        return {d.pc for d in self.decisions}

    @property
    def nta_fraction(self) -> float:
        """Share of inserted prefetches that are non-temporal."""
        if not self.decisions:
            return 0.0
        return sum(d.nta for d in self.decisions) / len(self.decisions)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"machine: {self.machine_name}",
            f"delinquent loads (MDDLI): {len(self.delinquent)}",
            f"prefetches inserted: {len(self.decisions)} "
            f"({sum(d.nta for d in self.decisions)} non-temporal)",
        ]
        for d in self.decisions:
            lines.append(
                f"  pc {d.pc}: {d.kind} {d.distance_bytes:+d}(base) "
                f"stride {d.stride:+d}"
            )
        if self.nt_stores:
            lines.append(f"non-temporal stores: {sorted(self.nt_stores)}")
        if self.skipped:
            lines.append(f"skipped: {len(self.skipped)}")
            for pc, why in sorted(self.skipped.items()):
                lines.append(f"  pc {pc}: {why}")
        return "\n".join(lines)
