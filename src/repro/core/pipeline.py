"""The end-to-end optimisation pipeline (paper Fig. 1).

``sampling pass → StatStack → MDDLI → stride analysis → prefetch
distance → bypass analysis → prefetch plan``.

:class:`PrefetchOptimizer` wires the passes together.  It consumes a
:class:`~repro.sampling.sampler.SamplingResult` (one cheap profiling run)
and produces an :class:`~repro.core.report.OptimizationReport` holding
the prefetch plan for a *target machine* — the same profile can be
analysed for several machines, which is how the paper optimises for both
processors "using a single input profile" (§VII).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.config import MachineConfig
from repro.core.bypass import should_bypass
from repro.core.distance import compute_prefetch_distance
from repro.core.mddli import estimate_miss_latency, identify_delinquent_loads
from repro.core.report import OptimizationReport, PrefetchDecision
from repro.core.strideanalysis import analyze_stride
from repro.errors import AnalysisError
from repro.sampling.sampler import SamplingResult
from repro.statstack.model import StatStackModel
from repro.statstack.mrc import PerPCMissRatios, default_size_grid

__all__ = ["PrefetchOptimizer", "OptimizerSettings"]


@dataclass(frozen=True)
class OptimizerSettings:
    """Tunable thresholds of the analysis (paper defaults).

    Attributes
    ----------
    dominance_threshold:
        Stride-group share required to call a load regularly strided
        (paper: 70 %).
    enable_bypass:
        Emit ``PREFETCHNTA`` where the bypass analysis allows it; turning
        this off yields the paper's plain "Software Pref." configuration.
    enable_nt_stores:
        Also convert safe streaming stores to ``MOVNT`` (extension
        beyond the paper; requires ``store_pcs`` at analysis time).
    enable_indirect:
        Rescue irregular-stride loads that are structurally ``A[B[i]]``
        indirections (requires ``indirect_pairs`` at analysis time):
        instead of skipping them, emit an indirect decision that runs
        ahead on the index walk and prefetches the pointed-at data —
        the ``prefetch B[i+d]; prefetch A[B[i+d]]`` rewrite.
    flatness_tolerance:
        Relative miss-ratio drop between L1 and LLC below which a reusing
        load's curve counts as flat.
    min_samples:
        Per-PC sample support required before any decision is made.
    latency:
        Average L1-miss latency override (cycles).  ``None`` uses the
        machine estimate.
    """

    dominance_threshold: float = 0.70
    enable_bypass: bool = True
    enable_nt_stores: bool = False
    enable_indirect: bool = False
    flatness_tolerance: float = 0.10
    min_samples: int = 4
    latency: float | None = None


class PrefetchOptimizer:
    """Analysis pipeline from sampled profile to prefetch plan."""

    def __init__(
        self,
        machine: MachineConfig,
        settings: OptimizerSettings | None = None,
    ) -> None:
        self.machine = machine
        self.settings = settings if settings is not None else OptimizerSettings()

    def analyze(
        self,
        sampling: SamplingResult,
        refs_per_pc: dict[int, int] | None = None,
        store_pcs: set[int] | None = None,
        indirect_pairs: dict[int, tuple[int, int]] | None = None,
    ) -> OptimizationReport:
        """Produce a prefetch plan from one sampling pass.

        Parameters
        ----------
        sampling:
            Output of :class:`~repro.sampling.sampler.RuntimeSampler`.
        refs_per_pc:
            Optional estimate of each loop's dynamic reference count,
            enabling the ``P ≤ R/2`` distance clamp.  When omitted, the
            clamp uses the per-PC share of total references estimated
            from the samples themselves.
        indirect_pairs:
            Structural ``A[B[i]]`` pairing (indexed-load PC →
            (index-load PC, index stride)), typically
            ``program.indirect_pairs()``.  Consulted only when
            ``enable_indirect`` is set.
        """
        if len(sampling.reuse) == 0:
            raise AnalysisError("sampling produced no reuse samples")
        with obs.span(
            "analysis.pipeline", machine=self.machine.name
        ) as pipeline_span:
            report = self._analyze(sampling, refs_per_pc, store_pcs, indirect_pairs)
            pipeline_span.set(
                delinquent=len(report.delinquent),
                decisions=len(report.decisions),
            )
            return report

    def _analyze(
        self,
        sampling: SamplingResult,
        refs_per_pc: dict[int, int] | None,
        store_pcs: set[int] | None,
        indirect_pairs: dict[int, tuple[int, int]] | None = None,
    ) -> OptimizationReport:
        st = self.settings
        machine = self.machine

        model = StatStackModel(sampling.reuse, line_bytes=machine.line_bytes)
        # The paper measures the average L1-miss latency with performance
        # counters; we derive the equivalent per-application value from
        # the cache model's level mix.
        latency = (
            st.latency
            if st.latency is not None
            else estimate_miss_latency(model, machine)
        )
        grid = np.unique(
            np.concatenate(
                [
                    default_size_grid(),
                    np.array(
                        [
                            machine.l1.size_bytes,
                            machine.l2.size_bytes,
                            machine.llc.size_bytes,
                        ],
                        dtype=np.int64,
                    ),
                ]
            )
        )
        ratios = PerPCMissRatios(model, machine, size_grid=grid)

        report = OptimizationReport(machine_name=machine.name, latency_used=latency)
        with obs.span("analysis.delinquent") as delinq_span:
            delinquent, skipped = identify_delinquent_loads(
                ratios, latency=latency, min_samples=st.min_samples
            )
            delinq_span.set(found=len(delinquent), skipped=len(skipped))
        report.delinquent = delinquent
        report.skipped.update(skipped)

        with obs.span("analysis.decisions", loads=len(delinquent)):
            for load in delinquent:
                info = analyze_stride(
                    sampling.strides,
                    load.pc,
                    line_bytes=machine.line_bytes,
                    dominance_threshold=st.dominance_threshold,
                    min_samples=st.min_samples,
                )
                if info is None:
                    indirect = None
                    if st.enable_indirect and indirect_pairs:
                        indirect = self._indirect_decision(
                            load, sampling, latency, refs_per_pc,
                            indirect_pairs, ratios,
                        )
                    if indirect is None:
                        report.skipped[load.pc] = "irregular-stride"
                        continue
                    decision, idx_info = indirect
                    report.strides[decision.index_pc] = idx_info
                    report.decisions.append(decision)
                    continue
                report.strides[load.pc] = info

                if refs_per_pc is not None and load.pc in refs_per_pc:
                    refs_in_loop = refs_per_pc[load.pc]
                else:
                    refs_in_loop = int(load.sample_weight * sampling.n_refs)
                distance = compute_prefetch_distance(
                    info,
                    machine,
                    latency=latency,
                    refs_in_loop=refs_in_loop,
                )
                nta = st.enable_bypass and should_bypass(
                    load.pc, sampling.reuse, ratios, st.flatness_tolerance
                )
                report.decisions.append(
                    PrefetchDecision(
                        pc=load.pc,
                        stride=info.dominant_stride,
                        distance_bytes=distance,
                        nta=nta,
                    )
                )

        if st.enable_nt_stores and store_pcs:
            from repro.core.ntstores import identify_nt_stores

            report.nt_stores = identify_nt_stores(
                sampling,
                ratios,
                store_pcs,
                latency=latency,
                min_samples=st.min_samples,
            )
            # A non-temporal store never reads its line, so prefetching
            # for it would just re-add the fill MOVNT exists to avoid.
            converted = set(report.nt_stores)
            report.decisions = [
                d for d in report.decisions if d.pc not in converted
            ]
        return report

    def _indirect_decision(
        self,
        load,
        sampling: SamplingResult,
        latency: float,
        refs_per_pc: dict[int, int] | None,
        indirect_pairs: dict[int, tuple[int, int]],
        ratios: PerPCMissRatios,
    ):
        """Indirect decision for one irregular delinquent load, or None.

        The run-ahead distance is computed on the *index* walk — the
        regular half of the pair — with the standard distance machinery
        (including the ``P ≤ R/2`` clamp), then converted to iterations:
        ``ahead = ceil(|distance| / |index stride|)``.  No resolvable
        pair, an irregular index walk, or thin sample support all return
        ``None`` and the load stays skipped as before.
        """
        st = self.settings
        pair = indirect_pairs.get(load.pc)
        if pair is None:
            return None
        index_pc, _index_stride = pair
        idx_info = analyze_stride(
            sampling.strides,
            index_pc,
            line_bytes=self.machine.line_bytes,
            dominance_threshold=st.dominance_threshold,
            min_samples=st.min_samples,
        )
        if idx_info is None:
            return None
        if refs_per_pc is not None and load.pc in refs_per_pc:
            refs_in_loop = refs_per_pc[load.pc]
        else:
            refs_in_loop = int(load.sample_weight * sampling.n_refs)
        distance = compute_prefetch_distance(
            idx_info,
            self.machine,
            latency=latency,
            refs_in_loop=refs_in_loop,
        )
        ahead = max(1, -(-abs(distance) // abs(idx_info.dominant_stride)))
        nta = st.enable_bypass and should_bypass(
            load.pc, sampling.reuse, ratios, st.flatness_tolerance
        )
        return (
            PrefetchDecision(
                pc=load.pc,
                stride=idx_info.dominant_stride,
                distance_bytes=distance,
                nta=nta,
                indirect_ahead=ahead,
                index_pc=index_pc,
            ),
            idx_info,
        )
