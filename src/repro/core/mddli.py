"""Model-driven delinquent load identification — MDDLI (paper §V).

The cache model provides per-instruction miss ratios at the machine's
L1, L2 and LLC sizes.  A software prefetch only pays off when the cycles
it saves (misses removed × miss latency) exceed the cycles it costs
(every execution of the covering prefetch instruction costs ``α``).  The
paper formalises the insertion test for load *A* as::

    MR_A(D$) > α / latency

with ``α = 1`` cycle (measured with ineffective prefetches) and
``latency`` the average latency of an L1 miss measured with performance
counters.  Loads failing the test are filtered out — this is what makes
the method *resource efficient* relative to stride-centric insertion,
which prefetches for every regularly-strided load regardless of benefit.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.core.report import DelinquentLoad
from repro.errors import AnalysisError
from repro.statstack.mrc import PerPCMissRatios

__all__ = [
    "identify_delinquent_loads",
    "cost_benefit_threshold",
    "estimate_miss_latency",
]


def estimate_miss_latency(model, machine: MachineConfig) -> float:
    """Average latency of an L1 miss for one application on one machine.

    The paper measures this with performance counters; here it is
    derived from the same cache model that drives MDDLI: the modelled
    miss ratios at the L2/LLC sizes give the fraction of L1 misses
    serviced by each level, and DRAM-serviced misses additionally pay
    the line transfer time.  Falls back to the machine-wide estimate
    when the application has no L1 misses at all.
    """
    mr1 = model.miss_ratio(machine.l1.size_bytes)
    if mr1 <= 0.0:
        return machine.avg_memory_latency
    mr2 = min(model.miss_ratio(machine.l2.size_bytes), mr1)
    mr3 = min(model.miss_ratio(machine.llc.size_bytes), mr2)
    f_l2 = (mr1 - mr2) / mr1
    f_llc = (mr2 - mr3) / mr1
    f_dram = mr3 / mr1
    transfer = machine.line_bytes / machine.bytes_per_cycle()
    return (
        f_l2 * machine.l2.hit_latency
        + f_llc * machine.llc.hit_latency
        + f_dram * (machine.dram_latency + transfer)
    )


def cost_benefit_threshold(machine: MachineConfig, latency: float | None = None) -> float:
    """The miss-ratio threshold ``α / latency`` for one machine.

    ``latency`` defaults to the machine's estimated average L1-miss
    latency; experiments that measured the real value (the paper uses
    performance counters) pass it in.
    """
    lat = machine.avg_memory_latency if latency is None else latency
    if lat <= 0:
        raise AnalysisError("latency must be positive")
    return machine.prefetch_cost / lat


def identify_delinquent_loads(
    ratios: PerPCMissRatios,
    latency: float | None = None,
    min_samples: int = 4,
) -> tuple[list[DelinquentLoad], dict[int, str]]:
    """Run the MDDLI cost/benefit filter over all modelled instructions.

    Parameters
    ----------
    ratios:
        Per-PC miss ratio provider (StatStack-backed).
    latency:
        Average L1-miss latency in cycles; defaults to the machine
        estimate.
    min_samples:
        Instructions with fewer samples than this are skipped — their
        modelled miss ratio is statistically meaningless, and in the real
        framework they would account for a negligible share of accesses
        anyway.

    Returns
    -------
    (selected, skipped):
        Selected loads sorted by descending expected benefit, and a map
        of rejected PCs to the reason.
    """
    machine = ratios.machine
    lat = machine.avg_memory_latency if latency is None else latency
    threshold = cost_benefit_threshold(machine, lat)

    selected: list[DelinquentLoad] = []
    skipped: dict[int, str] = {}
    for pc in ratios.modelled_pcs():
        if pc < 0:
            continue
        if ratios.model.pc_sample_count(pc) < min_samples:
            skipped[pc] = "few-samples"
            continue
        mr_l1, mr_l2, mr_llc = ratios.pc_level_ratios(pc)
        if mr_l1 <= threshold:
            skipped[pc] = "cost-benefit"
            continue
        weight = ratios.model.pc_sample_weight(pc)
        benefit = mr_l1 * lat - machine.prefetch_cost
        selected.append(
            DelinquentLoad(
                pc=pc,
                mr_l1=mr_l1,
                mr_l2=mr_l2,
                mr_llc=mr_llc,
                sample_weight=weight,
                benefit_score=benefit,
            )
        )
    selected.sort(key=lambda d: d.benefit_score * d.sample_weight, reverse=True)
    return selected, skipped
