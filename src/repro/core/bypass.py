"""Cache-bypass (non-temporal) analysis — paper §VI-B.

After a load is identified as prefetchable, this pass decides whether the
ordinary ``prefetch`` can be upgraded to ``PREFETCHNTA`` (fill L1 only,
bypass L2/LLC).  Following Sandberg et al. (SC'10):

1. Identify the *data-reusing loads* — the instructions that access the
   same cache line directly after the candidate.  The reuse samples give
   exactly this data-flow graph: a sample started at PC *A* and ended at
   PC *B* means *B* reuses *A*'s lines.
2. For every data-reusing load, inspect its miss-ratio curve between the
   L1 and LLC sizes.  A *flat* curve means the load's hits never come
   from L2/LLC — caching the lines there serves nobody.
3. Only if **no** reusing load benefits from the outer levels is the
   candidate marked non-temporal.

Bypassing keeps other (temporally useful) data resident in the shared
LLC longer and cuts re-fetch traffic — the paper measures up to 22 %
traffic *reduction below the no-prefetch baseline* on streaming codes.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.reuse import ReuseSampleSet
from repro.statstack.mrc import PerPCMissRatios

__all__ = ["data_reusing_loads", "should_bypass"]


def data_reusing_loads(
    samples: ReuseSampleSet,
    pc: int,
    min_share: float = 0.05,
) -> dict[int, float]:
    """Loads that consume ``pc``'s lines, with their reuse share.

    Returns a map of end-PC to the fraction of ``pc``'s finite reuse
    samples it accounts for; consumers below ``min_share`` are dropped as
    statistical noise.
    """
    mask = (samples.start_pc == pc) & samples.finite_mask
    ends = samples.end_pc[mask]
    if len(ends) == 0:
        return {}
    uniq, counts = np.unique(ends, return_counts=True)
    total = len(ends)
    return {
        int(end): cnt / total
        for end, cnt in zip(uniq.tolist(), counts.tolist())
        if cnt / total >= min_share
    }


def should_bypass(
    pc: int,
    samples: ReuseSampleSet,
    ratios: PerPCMissRatios,
    flatness_tolerance: float = 0.10,
) -> bool:
    """Decide whether prefetches for ``pc`` may bypass L2/LLC.

    True when every significant data-reusing load (including ``pc``
    itself, if it re-touches its own lines) has a flat miss-ratio curve
    between the L1 and LLC sizes — i.e. nobody reuses these lines out of
    the outer cache levels.

    A load whose lines are *never* reused (all samples dangling) is
    trivially bypassable: its data is written out / abandoned, the
    classic non-temporal stream.
    """
    machine = ratios.machine
    reusers = data_reusing_loads(samples, pc)
    if not reusers:
        return True
    for reuser_pc in reusers:
        curve = ratios.pc_curve(reuser_pc)
        if not curve.is_flat_between(
            machine.l1.size_bytes, machine.llc.size_bytes, flatness_tolerance
        ):
            return False
    return True
