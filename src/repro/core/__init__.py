"""The paper's primary contribution: resource-efficient prefetch analysis."""

from repro.core.bypass import data_reusing_loads, should_bypass
from repro.core.distance import compute_prefetch_distance
from repro.core.insertion import apply_nt_stores, apply_prefetch_plan, prefetch_overhead_ratio
from repro.core.ntstores import identify_nt_stores
from repro.core.mddli import (
    cost_benefit_threshold,
    estimate_miss_latency,
    identify_delinquent_loads,
)
from repro.core.online import OnlineOptimizer, OnlineResult
from repro.core.pipeline import OptimizerSettings, PrefetchOptimizer
from repro.core.serialization import load_plan, plan_from_dict, plan_to_dict, save_plan
from repro.core.report import (
    DelinquentLoad,
    OptimizationReport,
    PrefetchDecision,
    StrideInfo,
)
from repro.core.strideanalysis import analyze_all_strides, analyze_stride

__all__ = [
    "PrefetchOptimizer",
    "OptimizerSettings",
    "OptimizationReport",
    "PrefetchDecision",
    "DelinquentLoad",
    "StrideInfo",
    "identify_delinquent_loads",
    "cost_benefit_threshold",
    "estimate_miss_latency",
    "analyze_stride",
    "analyze_all_strides",
    "compute_prefetch_distance",
    "should_bypass",
    "data_reusing_loads",
    "apply_prefetch_plan",
    "apply_nt_stores",
    "identify_nt_stores",
    "prefetch_overhead_ratio",
    "OnlineOptimizer",
    "OnlineResult",
    "save_plan",
    "load_plan",
    "plan_to_dict",
    "plan_from_dict",
]
