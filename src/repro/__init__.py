"""repro — resource-efficient software prefetching for multicores.

A full-system reproduction of *"A Case for Resource Efficient
Prefetching in Multicores"* (Khan, Sandberg & Hagersten, ICPP 2014):
runtime sampling, StatStack cache modelling, model-driven delinquent
load identification, stride/distance/bypass analyses, prefetch insertion
at the (mini-)assembler level, and timed single-core / multicore cache
simulation with hardware-prefetcher models.

Most users start from:

* :class:`repro.core.PrefetchOptimizer` — sampled profile → prefetch plan;
* :class:`repro.cachesim.CacheHierarchy` — timed simulation of a plan;
* :mod:`repro.workloads` — the paper's benchmark models;
* :mod:`repro.experiments` — drivers for every paper table and figure.
"""

from repro.config import MachineConfig, amd_phenom_ii, get_machine, intel_i7_2600k
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "amd_phenom_ii",
    "intel_i7_2600k",
    "get_machine",
    "ReproError",
    "__version__",
]
