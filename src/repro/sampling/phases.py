"""Phase detection over memory traces.

The sampler the paper builds on is the *phase-guided* profiler of
Sembrant, Black-Schaffer & Hagersten (CGO'12): execution is split into
windows, each window gets a compact *access signature*, similar
signatures are clustered into **phases**, and expensive monitoring only
runs once per phase instead of continuously.  This module provides the
equivalent machinery:

* :func:`window_signatures` — random-projected footprint vectors per
  window (a vectorised stand-in for CGO'12's branch/working-set
  signatures);
* :class:`PhaseDetector` — online clustering by cosine similarity
  against per-phase centroids;
* :func:`phase_aware_sample` — sampling budget spent *per phase*, so a
  program that alternates A-B-A-B is profiled once per distinct phase
  and the samples are reweighted by phase residency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.sampling.reuse import ReuseSampleSet, collect_reuse_samples
from repro.sampling.sampler import RuntimeSampler, SamplingResult
from repro.sampling.stridesampler import StrideSampleSet, collect_stride_samples
from repro.trace.events import MemoryTrace

__all__ = ["window_signatures", "PhaseDetector", "phase_aware_sample", "PhaseProfile"]


def window_signatures(
    trace: MemoryTrace,
    window_refs: int,
    signature_bits: int = 128,
    line_bytes: int = 64,
) -> np.ndarray:
    """Per-window footprint signatures, shape ``(n_windows, signature_bits)``.

    Each window's touched cache lines are hashed into a fixed-width
    histogram; two windows touching similar data have similar vectors.
    Fully vectorised (one pass of modular hashing + bincount per window).
    """
    if window_refs <= 0:
        raise SamplingError("window_refs must be positive")
    if signature_bits <= 0:
        raise SamplingError("signature_bits must be positive")
    demand = trace.demand_only()
    lines = demand.line_addr(line_bytes)
    n = len(lines)
    if n == 0:
        return np.zeros((0, signature_bits))
    # Working-set signature at 32 kB granularity: the granule id is
    # scrambled with a golden-ratio multiplier so distinct regions land
    # in uncorrelated buckets, while re-visits of the same data always
    # hit the same buckets (line-level hashing would saturate the
    # histogram for any large footprint and lose all discrimination).
    granules = lines >> 9
    multiplier = np.uint64(0x9E3779B97F4A7C15).astype(np.int64)
    with np.errstate(over="ignore"):
        hashed = np.abs((granules * multiplier) >> 17) % signature_bits
    n_windows = -(-n // window_refs)
    out = np.zeros((n_windows, signature_bits))
    for w in range(n_windows):
        chunk = hashed[w * window_refs : (w + 1) * window_refs]
        out[w] = np.bincount(chunk, minlength=signature_bits)
    norms = np.linalg.norm(out, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return out / norms


@dataclass
class _Phase:
    centroid: np.ndarray
    windows: int


class PhaseDetector:
    """Online phase clustering by cosine similarity to phase centroids."""

    def __init__(self, similarity_threshold: float = 0.85) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise SamplingError("similarity_threshold must be in (0, 1]")
        self.similarity_threshold = similarity_threshold
        self._phases: list[_Phase] = []

    def classify(self, signature: np.ndarray) -> int:
        """Assign one window signature to a phase (creating one if novel)."""
        best_id, best_sim = -1, -1.0
        for phase_id, phase in enumerate(self._phases):
            sim = float(signature @ phase.centroid)
            if sim > best_sim:
                best_id, best_sim = phase_id, sim
        if best_id >= 0 and best_sim >= self.similarity_threshold:
            phase = self._phases[best_id]
            # running centroid update, renormalised
            phase.centroid = phase.centroid * phase.windows + signature
            phase.windows += 1
            norm = np.linalg.norm(phase.centroid)
            phase.centroid = phase.centroid / (norm if norm else 1.0)
            return best_id
        self._phases.append(_Phase(centroid=signature.copy(), windows=1))
        return len(self._phases) - 1

    def classify_all(self, signatures: np.ndarray) -> np.ndarray:
        """Classify a whole run's windows in order."""
        return np.array([self.classify(sig) for sig in signatures], dtype=np.int64)

    @property
    def n_phases(self) -> int:
        return len(self._phases)


@dataclass(frozen=True)
class PhaseProfile:
    """Phase structure plus the phase-aware sampling result."""

    phase_of_window: np.ndarray
    sampled_windows: dict[int, int]
    sampling: SamplingResult

    @property
    def n_phases(self) -> int:
        return int(self.phase_of_window.max()) + 1 if len(self.phase_of_window) else 0


def phase_aware_sample(
    trace: MemoryTrace,
    window_refs: int = 50_000,
    rate: float = 5e-3,
    similarity_threshold: float = 0.85,
    line_bytes: int = 64,
    seed: int = 0,
) -> PhaseProfile:
    """Sample only the first window of each detected phase.

    Returns the merged samples of the representative windows.  For a
    program with few, long phases this cuts sampling work by the phase
    repetition factor at nearly no accuracy cost — the CGO'12 result the
    paper's "<30 % overhead" figure rests on.
    """
    demand = trace.demand_only()
    signatures = window_signatures(demand, window_refs, line_bytes=line_bytes)
    detector = PhaseDetector(similarity_threshold)
    phase_of_window = detector.classify_all(signatures)

    sampled_windows: dict[int, int] = {}
    merged_reuse: ReuseSampleSet | None = None
    merged_strides: StrideSampleSet | None = None
    for w, phase in enumerate(phase_of_window.tolist()):
        if phase in sampled_windows:
            continue
        sampled_windows[phase] = w
        window = demand[w * window_refs : (w + 1) * window_refs]
        sampler = RuntimeSampler(rate=rate, seed=seed + w, min_samples=32)
        result = sampler.sample(window)
        if merged_reuse is None:
            merged_reuse, merged_strides = result.reuse, result.strides
        else:
            merged_reuse = merged_reuse.merged_with(result.reuse)
            merged_strides = merged_strides.merged_with(result.strides)

    if merged_reuse is None:
        empty = np.empty(0, dtype=np.int64)
        merged_reuse = ReuseSampleSet(empty, empty.copy(), empty.copy(), 0)
        merged_strides = StrideSampleSet(empty, empty.copy(), empty.copy())
    sampling = SamplingResult(
        reuse=merged_reuse,
        strides=merged_strides,
        sample_rate=rate,
        n_refs=len(demand),
        overhead_estimate=rate * 12_000.0 * len(sampled_windows) / max(1, len(phase_of_window)),
    )
    return PhaseProfile(
        phase_of_window=phase_of_window,
        sampled_windows=sampled_windows,
        sampling=sampling,
    )
