"""The integrated sampling pass (paper Fig. 1, steps 1–2).

One pass over the target's execution produces both data-reuse samples
(for StatStack) and per-instruction stride/recurrence samples (for the
prefetching analysis).  Sampling is sparse — the paper uses 1 in 100 000
memory references — which keeps the real framework's runtime overhead
under 30 %; :class:`SamplingResult` carries the matching overhead
estimate so experiments can report it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import SamplingError
from repro.sampling.reuse import (
    ReuseSampleSet,
    collect_reuse_samples,
    next_same_value_index,
)
from repro.sampling.stridesampler import StrideSampleSet, collect_stride_samples
from repro.trace.events import MemoryTrace

__all__ = ["RuntimeSampler", "SamplingResult"]

#: Cost model constants for the simulated runtime overhead, expressed as
#: fractions of native execution per sample (watchpoint trap + counter
#: reprogramming) — chosen so the paper's default rate lands below the
#: <30 % overhead it reports.
_BASE_OVERHEAD = 0.02
_COST_PER_SAMPLE_REFS = 12_000.0


@dataclass(frozen=True)
class SamplingResult:
    """Output of one sampling pass over a workload execution."""

    reuse: ReuseSampleSet
    strides: StrideSampleSet
    sample_rate: float
    n_refs: int
    overhead_estimate: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{len(self.reuse)} reuse samples ({self.reuse.n_dangling} dangling), "
            f"{len(self.strides)} stride samples over {self.n_refs} refs "
            f"(rate 1/{round(1 / self.sample_rate)}, est. overhead "
            f"{self.overhead_estimate * 100:.1f}%)"
        )


class RuntimeSampler:
    """Sparse random sampler over a demand-access trace.

    Parameters
    ----------
    rate:
        Sampling probability per memory reference (paper: 1e-5).
    line_bytes:
        Cache line granularity monitored by the watchpoints.
    seed:
        Seed for the sample-point selector; sampling is the only
        stochastic step of the whole optimisation pipeline, so fixing
        this makes end-to-end runs reproducible.
    min_samples:
        If the Bernoulli draw yields fewer than this many sample points
        (short traces), the sampler falls back to evenly spaced points so
        downstream analyses always have material to work with.
    """

    def __init__(
        self,
        rate: float = 1e-5,
        line_bytes: int = 64,
        seed: int = 0,
        min_samples: int = 64,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise SamplingError("rate must be in (0, 1]")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise SamplingError("line_bytes must be a positive power of two")
        if min_samples < 0:
            raise SamplingError("min_samples must be non-negative")
        self.rate = rate
        self.line_bytes = line_bytes
        self.seed = seed
        self.min_samples = min_samples

    def select_sample_points(self, n_refs: int) -> np.ndarray:
        """Randomly chosen reference indices (sorted, unique)."""
        rng = np.random.default_rng(self.seed)
        n_samples = rng.binomial(n_refs, self.rate)
        if n_samples < self.min_samples:
            n_samples = min(self.min_samples, n_refs)
        if n_samples == 0:
            return np.empty(0, dtype=np.int64)
        idx = rng.choice(n_refs, size=n_samples, replace=False)
        idx.sort()
        return idx.astype(np.int64)

    def sample(self, trace: MemoryTrace) -> SamplingResult:
        """Run the integrated reuse + stride sampling pass."""
        with obs.span("sampling.pass", rate=self.rate) as pass_span:
            demand = trace.demand_only()
            n = len(demand)
            idx = self.select_sample_points(n)
            pass_span.set(refs=n, samples=len(idx))
            # Both samplers share the demand view; precompute next-access
            # maps once each.
            next_line = next_same_value_index(demand.line_addr(self.line_bytes))
            next_pc = next_same_value_index(demand.pc)
            reuse = collect_reuse_samples(demand, idx, self.line_bytes, next_line)
            strides = collect_stride_samples(demand, idx, next_pc)
            if obs.enabled():
                obs.metrics().histogram("sampling.samples").observe(len(idx))
        overhead = _BASE_OVERHEAD + (
            _COST_PER_SAMPLE_REFS * len(idx) / n if n else 0.0
        )
        return SamplingResult(
            reuse=reuse,
            strides=strides,
            sample_rate=self.rate,
            n_refs=n,
            overhead_estimate=overhead,
        )
