"""Low-overhead runtime sampling (reuse distances, strides, recurrences)."""

from repro.sampling.phases import (
    PhaseDetector,
    PhaseProfile,
    phase_aware_sample,
    window_signatures,
)
from repro.sampling.reuse import ReuseSampleSet, collect_reuse_samples, next_same_value_index
from repro.sampling.sampler import RuntimeSampler, SamplingResult
from repro.sampling.stridesampler import StrideSampleSet, collect_stride_samples

__all__ = [
    "ReuseSampleSet",
    "StrideSampleSet",
    "RuntimeSampler",
    "SamplingResult",
    "collect_reuse_samples",
    "collect_stride_samples",
    "next_same_value_index",
    "PhaseDetector",
    "PhaseProfile",
    "phase_aware_sample",
    "window_signatures",
]
