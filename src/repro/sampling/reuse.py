"""Sparse data-reuse (reuse distance) sampling.

Emulates the hardware-assisted sampler of Sembrant et al. that the paper
builds on: execution is stopped at randomly chosen memory references, a
watchpoint is armed on the referenced cache line, and the trap at the
next access to that line yields one *reuse sample* — the number of
intervening memory references (the reuse distance), plus the PCs of both
endpoint instructions.  Lines that are never re-accessed produce
*dangling* samples, which the cache model treats as always-missing
(cold/stream-out accesses).

Instead of scanning forward per sample, the trace-driven implementation
precomputes every reference's next-access-to-same-line index with one
``lexsort`` (O(n log n)) and then reads off the sampled entries — the
semantics are identical to per-sample watchpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.trace.events import MemoryTrace

from repro.trace.util import next_same_value_index

__all__ = ["ReuseSampleSet", "next_same_value_index", "collect_reuse_samples"]


@dataclass(frozen=True)
class ReuseSampleSet:
    """Vectorised collection of reuse samples.

    Attributes
    ----------
    start_pc:
        PC of the sampled (watchpoint-arming) access.
    end_pc:
        PC of the access that re-touched the line; -1 for dangling
        samples.
    distance:
        Reuse distance — intervening memory references between the two
        accesses; -1 for dangling samples.
    n_refs:
        Total demand references in the sampled execution (for scaling).
    """

    start_pc: np.ndarray
    end_pc: np.ndarray
    distance: np.ndarray
    n_refs: int

    def __post_init__(self) -> None:
        if not (len(self.start_pc) == len(self.end_pc) == len(self.distance)):
            raise SamplingError("reuse sample arrays must have equal length")
        if self.n_refs < 0:
            raise SamplingError("n_refs must be non-negative")

    def __len__(self) -> int:
        return len(self.distance)

    @property
    def finite_mask(self) -> np.ndarray:
        """Samples whose line was re-accessed."""
        return self.distance >= 0

    @property
    def n_dangling(self) -> int:
        """Samples whose line was never re-accessed."""
        return int(np.count_nonzero(self.distance < 0))

    def finite_distances(self) -> np.ndarray:
        """Reuse distances of the finite samples."""
        return self.distance[self.finite_mask]

    def merged_with(self, other: "ReuseSampleSet") -> "ReuseSampleSet":
        """Concatenate two sample sets (e.g. from phased sampling)."""
        return ReuseSampleSet(
            np.concatenate([self.start_pc, other.start_pc]),
            np.concatenate([self.end_pc, other.end_pc]),
            np.concatenate([self.distance, other.distance]),
            self.n_refs + other.n_refs,
        )


def collect_reuse_samples(
    trace: MemoryTrace,
    sample_indices: np.ndarray,
    line_bytes: int,
    next_same_line: np.ndarray | None = None,
) -> ReuseSampleSet:
    """Take reuse samples at the given demand-reference indices.

    ``sample_indices`` index into the *demand-only* view of ``trace``.
    ``next_same_line`` may be supplied to share the precomputed
    next-access map with other passes over the same trace.
    """
    demand = trace.demand_only()
    n = len(demand)
    if n == 0:
        if len(sample_indices):
            raise SamplingError("cannot sample an empty trace")
        empty = np.empty(0, dtype=np.int64)
        return ReuseSampleSet(empty, empty.copy(), empty.copy(), 0)
    if len(sample_indices) and (sample_indices.min() < 0 or sample_indices.max() >= n):
        raise SamplingError("sample index out of range")

    if next_same_line is None:
        next_same_line = next_same_value_index(demand.line_addr(line_bytes))

    idx = np.asarray(sample_indices, dtype=np.int64)
    nxt = next_same_line[idx]
    finite = nxt >= 0
    distance = np.where(finite, nxt - idx - 1, -1).astype(np.int64)
    end_pc = np.where(finite, demand.pc[np.maximum(nxt, 0)], -1).astype(np.int64)
    return ReuseSampleSet(
        start_pc=demand.pc[idx].astype(np.int64),
        end_pc=end_pc,
        distance=distance,
        n_refs=n,
    )
