"""Per-instruction stride and recurrence sampling.

The paper extends the reuse sampler with breakpoint-based monitoring of
the *sampled instruction* itself (paper §III, Fig. 2): when the sampled
load executes again, the difference between its current and previous data
addresses is recorded as a **stride sample**, and the number of
intervening memory references as its **recurrence**.  Recurrence feeds
the prefetch-distance formula (``d = recurrence × Δ``); strides feed the
regular-stride classification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.sampling.reuse import next_same_value_index
from repro.trace.events import MemoryTrace

__all__ = ["StrideSampleSet", "collect_stride_samples"]


@dataclass(frozen=True)
class StrideSampleSet:
    """Vectorised collection of stride/recurrence samples.

    Attributes
    ----------
    pc:
        The monitored instruction.
    stride:
        Byte difference between consecutive dynamic addresses of that
        instruction.
    recurrence:
        Intervening memory references between the two executions.
    """

    pc: np.ndarray
    stride: np.ndarray
    recurrence: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.pc) == len(self.stride) == len(self.recurrence)):
            raise SamplingError("stride sample arrays must have equal length")

    def __len__(self) -> int:
        return len(self.pc)

    def for_pc(self, pc: int) -> tuple[np.ndarray, np.ndarray]:
        """(strides, recurrences) observed for one instruction."""
        mask = self.pc == pc
        return self.stride[mask], self.recurrence[mask]

    def sampled_pcs(self) -> np.ndarray:
        """Sorted unique PCs that have at least one stride sample."""
        return np.unique(self.pc)

    def merged_with(self, other: "StrideSampleSet") -> "StrideSampleSet":
        """Concatenate two sample sets."""
        return StrideSampleSet(
            np.concatenate([self.pc, other.pc]),
            np.concatenate([self.stride, other.stride]),
            np.concatenate([self.recurrence, other.recurrence]),
        )


def collect_stride_samples(
    trace: MemoryTrace,
    sample_indices: np.ndarray,
    next_same_pc: np.ndarray | None = None,
) -> StrideSampleSet:
    """Take stride samples at the given demand-reference indices.

    A sampled instruction that never executes again contributes nothing
    (the breakpoint simply never fires).
    """
    demand = trace.demand_only()
    n = len(demand)
    if n == 0:
        if len(sample_indices):
            raise SamplingError("cannot sample an empty trace")
        empty = np.empty(0, dtype=np.int64)
        return StrideSampleSet(empty, empty.copy(), empty.copy())
    if len(sample_indices) and (sample_indices.min() < 0 or sample_indices.max() >= n):
        raise SamplingError("sample index out of range")

    if next_same_pc is None:
        next_same_pc = next_same_value_index(demand.pc)

    idx = np.asarray(sample_indices, dtype=np.int64)
    nxt = next_same_pc[idx]
    fired = nxt >= 0
    idx = idx[fired]
    nxt = nxt[fired]
    return StrideSampleSet(
        pc=demand.pc[idx].astype(np.int64),
        stride=(demand.addr[nxt] - demand.addr[idx]).astype(np.int64),
        recurrence=(nxt - idx - 1).astype(np.int64),
    )
