"""Exact LRU stack-distance oracle.

The conformance harness needs ground truth that is *independent* of the
cache simulators it validates.  This module computes, for every demand
access of a trace, the exact **stack distance** — the number of distinct
other cache lines touched since the previous access to the same line —
using the classic Bennett–Kruskal formulation: maintain a "latest
occurrence of its line" flag per position in a Fenwick tree and count
flags inside each reuse window.  O(n log n), no cache state at all.

From the stack distances the entire fully-associative LRU behaviour
falls out in closed form:

* an access with stack distance ``d`` hits a cache of ``C`` lines iff
  ``d < C`` (cold accesses never hit);
* the exact miss-ratio curve at *every* size comes from one pass;
* the stack (inclusion) property — a hit at size ``C`` is a hit at any
  larger size — holds by construction, so any simulator disagreeing
  with this oracle at some size violates LRU semantics.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.statstack.mrc import MissRatioCurve
from repro.trace.events import MemoryTrace

__all__ = [
    "COLD",
    "stack_distances",
    "oracle_miss_vector",
    "oracle_miss_ratio_curve",
    "oracle_per_pc_miss_ratios",
]

#: Stack distance assigned to cold (first-touch) accesses.
COLD = -1


class _Fenwick:
    """Fixed-size Fenwick (binary indexed) tree over event positions."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self.tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & -i

    def prefix(self, i: int) -> int:
        """Sum over positions ``[0, i]``."""
        i += 1
        tree = self.tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total


def stack_distances(lines: np.ndarray) -> np.ndarray:
    """Exact per-access LRU stack distances of a line-number stream.

    Returns an ``int64`` array: entry ``i`` is the number of distinct
    *other* lines accessed since the previous access to ``lines[i]``,
    or :data:`COLD` for a first touch.
    """
    n = len(lines)
    sd = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return sd
    fen = _Fenwick(n)
    last: dict[int, int] = {}
    with obs.span("validate.oracle", events=n):
        for i, line in enumerate(lines.tolist()):
            prev = last.get(line)
            if prev is not None:
                # Distinct lines in (prev, i): each contributes exactly
                # one flag at its latest occurrence; the line itself is
                # excluded because its flag still sits at `prev`.
                sd[i] = fen.prefix(i - 1) - fen.prefix(prev)
                fen.add(prev, -1)
            last[line] = i
            fen.add(i, 1)
    return sd


def oracle_miss_vector(sd: np.ndarray, cache_lines: int) -> np.ndarray:
    """Per-access miss booleans of a fully-associative LRU of ``cache_lines``."""
    if cache_lines <= 0:
        raise SimulationError("cache_lines must be positive")
    return (sd == COLD) | (sd >= cache_lines)


def oracle_miss_ratio_curve(
    sd: np.ndarray, sizes_bytes: np.ndarray, line_bytes: int = 64
) -> MissRatioCurve:
    """Exact miss-ratio curve over ``sizes_bytes`` from stack distances."""
    if len(sd) == 0:
        raise SimulationError("cannot build a curve from an empty trace")
    ratios = [
        float(np.count_nonzero(oracle_miss_vector(sd, int(size) // line_bytes)))
        / len(sd)
        for size in sizes_bytes
    ]
    return MissRatioCurve(np.asarray(sizes_bytes, dtype=np.int64), np.array(ratios))


def oracle_per_pc_miss_ratios(
    trace: MemoryTrace, sd: np.ndarray, cache_lines: int
) -> dict[int, float]:
    """Exact per-PC miss ratios at one size (demand view of ``trace``)."""
    if len(sd) != len(trace):
        raise SimulationError("stack distances must cover the whole trace")
    miss = oracle_miss_vector(sd, cache_lines)
    pcs, counts = np.unique(trace.pc, return_counts=True)
    out: dict[int, float] = {}
    miss_pcs, miss_counts = np.unique(trace.pc[miss], return_counts=True)
    misses = dict(zip(miss_pcs.tolist(), miss_counts.tolist()))
    for pc, count in zip(pcs.tolist(), counts.tolist()):
        out[int(pc)] = misses.get(pc, 0) / count
    return out
