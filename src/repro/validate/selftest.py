"""Mutation self-test: prove each conformance engine has teeth.

A conformance harness that always passes is indistinguishable from one
that checks nothing.  Before trusting a green run, this module injects
one deliberate corruption per engine — in the style of
:mod:`repro.faults` — and asserts the matching engine *fails*:

* ``model-mrc-bump`` → **differential** engine: StatStack's whole-curve
  miss ratio is inflated by a constant; the L∞ check against the exact
  curve must flag every trace class.
* ``eviction-perturbation`` → **invariant** engine: the reference
  backend's LRU eviction is flipped to evict the *most* recently used
  line.  MRU eviction is still a stack algorithm — pairwise inclusion
  alone would pass! — so this specifically certifies the
  simulator-vs-stack-oracle comparison inside ``lru-stack-inclusion``.
* ``codec-corruption`` → **fuzz** engine: a ``"raise"`` fault armed at
  the real ``serialization.decode`` site must surface as failing
  sampling-codec fuzz cases.
* ``xcore-unresolved`` → **invariant** engine: the cross-core LLC
  prefetcher's index resolution is broken to return the raw index-walk
  lines instead of ``A[B[i+d]]`` — traffic that still *looks* like
  prefetching but fills the wrong region.  The
  ``xcore-llc-fill-attribution`` invariant must flag every graph
  program in the corpus.

The mutations are applied via scoped monkey-patches (restored in
``finally``), so a self-test run leaves the process clean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults, obs
from repro.cachesim.lru import LRUCache
from repro.statstack.model import StatStackModel
from repro.validate.corpus import CorpusTrace, build_corpus
from repro.validate.differential import DiffSettings, run_differential
from repro.validate.fuzz import run_fuzz
from repro.validate.invariants import run_invariants

__all__ = ["SelfTestOutcome", "run_selftest"]

#: One representative per class with mid-range reuse.  Pure streams are
#: useless here: every reuse has stack distance 0 and every first touch
#: is cold, so even a perverted eviction policy produces the same miss
#: vector.
_SELFTEST_CLASSES = ("strided", "sweep", "chase", "random")


@dataclass
class SelfTestOutcome:
    """Did one engine flag its injected corruption?"""

    mutation: str
    engine: str
    detected: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "mutation": self.mutation,
            "engine": self.engine,
            "detected": self.detected,
            "detail": self.detail,
        }


def _selftest_corpus(seed: int) -> list[CorpusTrace]:
    corpus = build_corpus(seed=seed, quick=True)
    picked: list[CorpusTrace] = []
    for cls in _SELFTEST_CLASSES:
        picked.append(next(e for e in corpus if e.cls == cls))
    return picked


def _mutate_model(corpus: list[CorpusTrace]) -> SelfTestOutcome:
    original = StatStackModel.miss_ratio

    def bumped(self: StatStackModel, cache_bytes: int) -> float:
        return min(1.0, original(self, cache_bytes) + 0.25)

    StatStackModel.miss_ratio = bumped  # type: ignore[method-assign]
    try:
        results = run_differential(corpus, DiffSettings())
    finally:
        StatStackModel.miss_ratio = original  # type: ignore[method-assign]
    flagged = [r for r in results if not r.passed]
    return SelfTestOutcome(
        mutation="model-mrc-bump",
        engine="differential",
        detected=len(flagged) == len(results),
        detail=f"{len(flagged)}/{len(results)} traces flagged the inflated curve",
    )


def _mutate_eviction(corpus: list[CorpusTrace]) -> SelfTestOutcome:
    original = LRUCache.install

    def mru_install(self: LRUCache, line: int, flags: int = 0):
        s = self._sets[line & self._set_mask]
        old = s.pop(line, None)
        if old is not None:
            s[line] = old | flags
            return None
        victim = None
        if len(s) >= self.ways:
            victim_line = next(reversed(s))  # evict MRU instead of LRU
            victim = (victim_line, s.pop(victim_line))
        s[line] = flags
        return victim

    LRUCache.install = mru_install  # type: ignore[method-assign]
    try:
        results = run_invariants(corpus)
    finally:
        LRUCache.install = original  # type: ignore[method-assign]
    flagged = [
        r for r in results if r.invariant == "lru-stack-inclusion" and not r.ok
    ]
    total = sum(1 for r in results if r.invariant == "lru-stack-inclusion")
    return SelfTestOutcome(
        mutation="eviction-perturbation",
        engine="invariants",
        detected=len(flagged) == total,
        detail=f"{len(flagged)}/{total} traces flagged the MRU eviction",
    )


def _mutate_xcore(seed: int) -> SelfTestOutcome:
    from repro.hwpref.xcore import CrossCoreLLCPrefetcher

    corpus = [e for e in build_corpus(seed=seed, quick=True) if e.cls == "graph"]
    original = CrossCoreLLCPrefetcher._resolve

    def unresolved(self, region, positions):
        # Drop the B[i+d] resolution: prefetch the index walk itself
        # instead of the data it points at.
        addrs = region.index_base + (positions % region.n_indices) * region.index_elem_bytes
        return addrs // self.line_bytes

    CrossCoreLLCPrefetcher._resolve = unresolved  # type: ignore[method-assign]
    try:
        results = run_invariants(corpus)
    finally:
        CrossCoreLLCPrefetcher._resolve = original  # type: ignore[method-assign]
    flagged = [
        r
        for r in results
        if r.invariant == "xcore-llc-fill-attribution" and not r.ok
    ]
    # Only entries with resolvable pairs exercise the resolver.
    total = sum(
        1
        for r in results
        if r.invariant == "xcore-llc-fill-attribution"
        and r.detail != "no A[B[i]] pairs"
    )
    return SelfTestOutcome(
        mutation="xcore-unresolved",
        engine="invariants",
        detected=total > 0 and len(flagged) == total,
        detail=f"{len(flagged)}/{total} graph programs flagged the broken resolver",
    )


def _mutate_codec(seed: int) -> SelfTestOutcome:
    faults.arm("serialization.decode", "raise")
    try:
        result = run_fuzz(seed=seed, cases_per_target=3, targets=("sampling-codec",))
    finally:
        faults.disarm("serialization.decode")
    return SelfTestOutcome(
        mutation="codec-corruption",
        engine="fuzz",
        detected=len(result.failures) == result.cases_run and result.cases_run > 0,
        detail=(
            f"{len(result.failures)}/{result.cases_run} cases flagged the "
            "armed decode fault"
        ),
    )


def run_selftest(seed: int = 0) -> list[SelfTestOutcome]:
    """Inject one corruption per engine; all three must be detected."""
    with obs.span("validate.selftest"):
        corpus = _selftest_corpus(seed)
        outcomes = [
            _mutate_model(corpus),
            _mutate_eviction(corpus),
            _mutate_codec(seed),
            _mutate_xcore(seed),
        ]
        if obs.enabled():
            missed = sum(1 for o in outcomes if not o.detected)
            if missed:
                obs.metrics().counter("validate.selftest.missed").inc(missed)
    return outcomes
