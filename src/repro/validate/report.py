"""Aggregate conformance report (the ``repro validate`` artefact).

One :class:`ValidationReport` collects the outcome of all engines —
differential, invariants, fuzz, self-test — plus the run configuration,
and serialises to a versioned JSON document (``repro-validate-v1``) for
the CI artifact.  :meth:`ValidationReport.render` produces the
human-readable summary the CLI prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.validate.differential import TraceDiffResult
from repro.validate.fuzz import FuzzResult
from repro.validate.invariants import InvariantResult
from repro.validate.selftest import SelfTestOutcome

__all__ = ["REPORT_FORMAT", "ValidationReport"]

REPORT_FORMAT = "repro-validate-v1"


@dataclass
class ValidationReport:
    """Everything one conformance run established."""

    corpus_seed: int
    quick: bool
    diff: list[TraceDiffResult] = field(default_factory=list)
    invariants: list[InvariantResult] = field(default_factory=list)
    fuzz: FuzzResult | None = None
    selftest: list[SelfTestOutcome] = field(default_factory=list)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------

    @property
    def diff_passed(self) -> bool:
        return all(r.passed for r in self.diff)

    @property
    def invariants_passed(self) -> bool:
        return all(r.ok for r in self.invariants)

    @property
    def fuzz_passed(self) -> bool:
        return self.fuzz is None or self.fuzz.passed

    @property
    def selftest_passed(self) -> bool:
        return all(o.detected for o in self.selftest)

    @property
    def passed(self) -> bool:
        return (
            self.diff_passed
            and self.invariants_passed
            and self.fuzz_passed
            and self.selftest_passed
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        worst = max(self.diff, key=lambda r: r.linf, default=None)
        return {
            "format": REPORT_FORMAT,
            "corpus_seed": self.corpus_seed,
            "quick": self.quick,
            "summary": {
                "traces": len(self.diff),
                "diff_failures": sum(len(r.failures) for r in self.diff),
                "invariant_checks": len(self.invariants),
                "invariant_failures": sum(1 for r in self.invariants if not r.ok),
                "fuzz_cases": 0 if self.fuzz is None else self.fuzz.cases_run,
                "fuzz_failures": 0 if self.fuzz is None else len(self.fuzz.failures),
                "selftest_missed": sum(1 for o in self.selftest if not o.detected),
                "worst_linf": None if worst is None else worst.linf,
                "worst_linf_trace": None if worst is None else worst.name,
                "passed": self.passed,
            },
            "differential": [r.as_dict() for r in self.diff],
            "invariants": [r.as_dict() for r in self.invariants],
            "fuzz": None if self.fuzz is None else self.fuzz.as_dict(),
            "selftest": [o.as_dict() for o in self.selftest],
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def summary_from_file(cls, path: str | Path) -> dict:
        """Load just the summary block of a saved report (CI helper)."""
        data = json.loads(Path(path).read_text())
        if data.get("format") != REPORT_FORMAT:
            raise ReproError(
                f"unsupported validation report format {data.get('format')!r}"
            )
        return data["summary"]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"conformance run  seed={self.corpus_seed}  "
            f"mode={'quick' if self.quick else 'full'}",
            "",
        ]

        ok = "ok " if self.diff_passed else "FAIL"
        lines.append(f"[{ok}] differential   {len(self.diff)} traces")
        by_cls: dict[str, list[TraceDiffResult]] = {}
        for r in self.diff:
            by_cls.setdefault(r.cls, []).append(r)
        for cls, results in sorted(by_cls.items()):
            worst = max(results, key=lambda r: r.linf)
            lines.append(
                f"       {cls:<9} n={len(results)}  worst Linf={worst.linf:.4f} "
                f"L1={worst.l1:.4f} pc={worst.pc_divergence:.4f}  ({worst.name})"
            )
        for r in self.diff:
            for failure in r.failures:
                lines.append(f"       FAIL {r.name}: {failure}")

        ok = "ok " if self.invariants_passed else "FAIL"
        lines.append(
            f"[{ok}] invariants     {len(self.invariants)} checks, "
            f"{sum(1 for r in self.invariants if not r.ok)} failed"
        )
        for r in self.invariants:
            if not r.ok:
                lines.append(f"       FAIL {r.invariant} on {r.trace}: {r.detail}")

        if self.fuzz is not None:
            ok = "ok " if self.fuzz_passed else "FAIL"
            lines.append(
                f"[{ok}] fuzz           {self.fuzz.cases_run} cases, "
                f"{len(self.fuzz.failures)} failing"
            )
            for failure in self.fuzz.failures:
                lines.append(
                    f"       FAIL {failure.target}#{failure.case_index} "
                    f"(shrunk {failure.shrink_steps} steps): {failure.error}"
                )

        if self.selftest:
            ok = "ok " if self.selftest_passed else "FAIL"
            lines.append(f"[{ok}] self-test      {len(self.selftest)} mutations")
            for o in self.selftest:
                mark = "detected" if o.detected else "MISSED"
                lines.append(f"       {o.mutation} -> {o.engine}: {mark} ({o.detail})")

        lines.append("")
        lines.append("PASSED" if self.passed else "FAILED")
        return "\n".join(lines)
