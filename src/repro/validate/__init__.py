"""Model-vs-simulation conformance harness (``repro validate``).

The reproduction rests on a chain of trust: the StatStack model is
validated against exact cache simulation, the fast simulation backend
against the reference one, and the rewriter against the interpreter.
This package makes that chain *executable*:

* :mod:`~repro.validate.oracle` — exact LRU stack distances (ground
  truth independent of all simulators);
* :mod:`~repro.validate.corpus` — the seeded trace corpus with
  per-class error bounds;
* :mod:`~repro.validate.differential` — StatStack vs oracle vs both
  simulation backends;
* :mod:`~repro.validate.invariants` — metamorphic laws of the pipeline
  (stack inclusion, MRC monotonicity, rewrite semantics, bypass
  consistency, coverage accounting);
* :mod:`~repro.validate.fuzz` — seeded fuzzing of the codecs and the
  rewriter, with shrinking and fixture persistence;
* :mod:`~repro.validate.selftest` — injected corruptions proving each
  engine detects what it claims to;
* :mod:`~repro.validate.report` — the versioned JSON report.

:func:`run_validation` orchestrates all of it; the ``repro validate``
CLI and :mod:`repro.api` are thin wrappers over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.validate.corpus import CLASS_BOUNDS, ClassBounds, CorpusTrace, build_corpus
from repro.validate.differential import DiffSettings, TraceDiffResult, run_differential
from repro.validate.fuzz import FuzzResult, persist_fixture, replay_fixture, run_fuzz
from repro.validate.invariants import InvariantResult, InvariantSettings, run_invariants
from repro.validate.oracle import stack_distances
from repro.validate.report import REPORT_FORMAT, ValidationReport
from repro.validate.selftest import SelfTestOutcome, run_selftest

__all__ = [
    "CLASS_BOUNDS",
    "ClassBounds",
    "CorpusTrace",
    "DiffSettings",
    "FuzzResult",
    "InvariantResult",
    "InvariantSettings",
    "REPORT_FORMAT",
    "SelfTestOutcome",
    "TraceDiffResult",
    "ValidationConfig",
    "ValidationReport",
    "build_corpus",
    "persist_fixture",
    "replay_fixture",
    "run_differential",
    "run_fuzz",
    "run_invariants",
    "run_selftest",
    "run_validation",
    "stack_distances",
]


@dataclass(frozen=True)
class ValidationConfig:
    """Configuration of one conformance run."""

    corpus_seed: int = 0
    quick: bool = True
    fuzz_cases: int = 25
    run_self_test: bool = True
    persist_repros: str | Path | None = None


def run_validation(
    config: ValidationConfig | None = None,
    diff_settings: DiffSettings | None = None,
    invariant_settings: InvariantSettings | None = None,
) -> ValidationReport:
    """Run the full conformance harness and return its report."""
    config = config or ValidationConfig()
    report = ValidationReport(corpus_seed=config.corpus_seed, quick=config.quick)
    with obs.span(
        "validate.run", seed=config.corpus_seed, quick=config.quick
    ) as run_span:
        corpus = build_corpus(seed=config.corpus_seed, quick=config.quick)
        report.diff = run_differential(corpus, diff_settings or DiffSettings())
        report.invariants = run_invariants(
            corpus, invariant_settings or InvariantSettings()
        )
        report.fuzz = run_fuzz(
            seed=config.corpus_seed, cases_per_target=config.fuzz_cases
        )
        if config.persist_repros is not None:
            for failure in report.fuzz.failures:
                persist_fixture(failure, config.persist_repros)
        if config.run_self_test:
            report.selftest = run_selftest(seed=config.corpus_seed)
        run_span.set(passed=report.passed)
    return report
