"""Seeded fuzz driver with greedy shrinking and fixture persistence.

The fuzz targets cover the surfaces where malformed or unusual inputs
historically break tools like this one:

* ``trace-codec`` — random event arrays through the JSON trace codec
  (:mod:`repro.trace.io`): encode → ``json`` round-trip → decode must be
  a fixed point.
* ``sampling-codec`` — a random trace through the runtime sampler and
  the sampling codec (:mod:`repro.core.serialization`): the decoded
  profile must be field-for-field identical.
* ``rewriter`` — a random generated workload, rewritten with a random
  prefetch plan, re-executed: the demand stream must be bit-identical
  and trace-level insertion must agree with IR-level insertion.
* ``indirect-rewrite`` — the same law for the indirect rewrite
  (``prefetch B[i+d]; prefetch A[B[i+d]]``) over workloads guaranteed
  to carry ``A[B[i]]`` pairs, with random run-ahead depths.
* ``graph-workload`` — the graph-family generators (CSR, BFS frontier,
  hash probe, index indirection): generation and execution must be
  deterministic, addresses in-window, and indexed accesses confined to
  their declared data region.

Every case is a *JSON-able dict*, derived deterministically from
``(seed, target, case index)``.  When a case fails, a greedy shrinker
minimises it (halving trips/arrays, dropping decisions) while the
failure reproduces, and the minimal case can be persisted as a fixture
under ``tests/fixtures/fuzz/`` — fixtures replay through
:func:`replay_fixture`, turning every fuzz find into a permanent
regression test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.insertion import apply_prefetch_plan
from repro.core.report import PrefetchDecision
from repro.core.serialization import sampling_from_dict, sampling_to_dict
from repro.errors import ReproError
from repro.isa import interpreter, rewriter
from repro.sampling.sampler import RuntimeSampler
from repro.trace.events import MemoryTrace
from repro.trace.io import trace_from_dict, trace_to_dict
from repro.workloads.generator import WorkloadRecipe, generate_workload

__all__ = [
    "FIXTURE_FORMAT",
    "FuzzFailure",
    "FuzzResult",
    "TARGETS",
    "run_fuzz",
    "replay_fixture",
    "persist_fixture",
]

FIXTURE_FORMAT = "repro-fuzz-repro-v1"

_MAX_SHRINK_STEPS = 200


@dataclass
class FuzzFailure:
    """One (shrunk) failing fuzz case."""

    target: str
    case_index: int
    error: str
    case: dict
    shrink_steps: int = 0

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "case_index": self.case_index,
            "error": self.error,
            "shrink_steps": self.shrink_steps,
            "case": self.case,
        }


@dataclass
class FuzzResult:
    """Aggregate outcome of one fuzz run."""

    seed: int
    cases_per_target: int
    cases_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases_per_target": self.cases_per_target,
            "cases_run": self.cases_run,
            "failures": [f.as_dict() for f in self.failures],
            "passed": self.passed,
        }


# ----------------------------------------------------------------------
# target: trace-codec
# ----------------------------------------------------------------------


def _gen_trace_codec(rng: np.random.Generator) -> dict:
    n = int(rng.integers(1, 256))
    return {
        "pc": rng.integers(0, 64, size=n).tolist(),
        "addr": rng.integers(0, 1 << 44, size=n).tolist(),
        "op": rng.integers(0, 5, size=n).tolist(),
    }


def _check_trace_codec(case: dict) -> None:
    trace = MemoryTrace(case["pc"], case["addr"], case["op"])
    encoded = json.loads(json.dumps(trace_to_dict(trace)))
    decoded = trace_from_dict(encoded)
    if decoded != trace:
        raise AssertionError("trace JSON round-trip is not a fixed point")
    if json.dumps(trace_to_dict(decoded), sort_keys=True) != json.dumps(
        encoded, sort_keys=True
    ):
        raise AssertionError("re-encoding a decoded trace changed the document")


def _shrink_trace_codec(case: dict):
    n = len(case["pc"])
    for keep in (n // 2, n - 1):
        if 0 < keep < n:
            yield {k: v[:keep] for k, v in case.items()}


# ----------------------------------------------------------------------
# target: sampling-codec
# ----------------------------------------------------------------------


def _gen_sampling_codec(rng: np.random.Generator) -> dict:
    n = int(rng.integers(64, 1024))
    footprint = int(rng.integers(4, 256)) * 64
    return {
        "trace": {
            "pc": rng.integers(0, 8, size=n).tolist(),
            "addr": (rng.integers(0, footprint, size=n)).tolist(),
            "op": rng.integers(0, 2, size=n).tolist(),
        },
        "rate": float(rng.choice([0.05, 0.2, 1.0])),
        "sampler_seed": int(rng.integers(0, 1 << 31)),
    }


def _check_sampling_codec(case: dict) -> None:
    trace = MemoryTrace(*(case["trace"][k] for k in ("pc", "addr", "op")))
    sampling = RuntimeSampler(rate=case["rate"], seed=case["sampler_seed"]).sample(trace)
    encoded = json.loads(json.dumps(sampling_to_dict(sampling)))
    decoded = sampling_from_dict(encoded)
    same = (
        np.array_equal(decoded.reuse.start_pc, sampling.reuse.start_pc)
        and np.array_equal(decoded.reuse.end_pc, sampling.reuse.end_pc)
        and np.array_equal(decoded.reuse.distance, sampling.reuse.distance)
        and decoded.reuse.n_refs == sampling.reuse.n_refs
        and np.array_equal(decoded.strides.pc, sampling.strides.pc)
        and np.array_equal(decoded.strides.stride, sampling.strides.stride)
        and np.array_equal(decoded.strides.recurrence, sampling.strides.recurrence)
        and decoded.sample_rate == sampling.sample_rate
        and decoded.n_refs == sampling.n_refs
    )
    if not same:
        raise AssertionError("sampling JSON round-trip lost information")


def _shrink_sampling_codec(case: dict):
    n = len(case["trace"]["pc"])
    for keep in (n // 2, n - 1):
        if 0 < keep < n:
            shrunk = dict(case)
            shrunk["trace"] = {k: v[:keep] for k, v in case["trace"].items()}
            yield shrunk


# ----------------------------------------------------------------------
# target: rewriter
# ----------------------------------------------------------------------


def _gen_rewriter(rng: np.random.Generator) -> dict:
    weights = rng.dirichlet(np.ones(5)).round(3).tolist()
    n_instructions = int(rng.integers(2, 7))
    n_decisions = int(rng.integers(1, n_instructions + 1))
    return {
        "recipe": {
            "stream_weight": weights[0],
            "chase_weight": weights[1],
            "gather_weight": weights[2],
            "burst_weight": weights[3],
            "store_weight": weights[4],
            "footprint_bytes": int(rng.integers(1, 33)) * 64 * 1024,
            "n_instructions": n_instructions,
            "trips": int(rng.integers(50, 800)),
            "stride_bytes": int(rng.choice([-64, -16, 8, 16, 64, 192])),
            "burst_len": int(rng.integers(2, 17)),
        },
        "program_seed": int(rng.integers(0, 1 << 31)),
        "exec_seed": int(rng.integers(0, 1 << 31)),
        "decision_slots": rng.integers(0, 64, size=n_decisions).tolist(),
        "distances": (rng.integers(1, 64, size=n_decisions) * 64).tolist(),
        "nta": rng.integers(0, 2, size=n_decisions).astype(bool).tolist(),
    }


def _rewriter_decisions(case: dict, program) -> list[PrefetchDecision]:
    pcs = sorted(program.pc_map().values())
    decisions: dict[int, PrefetchDecision] = {}
    for slot, distance, nta in zip(
        case["decision_slots"], case["distances"], case["nta"]
    ):
        pc = pcs[slot % len(pcs)]
        decisions[pc] = PrefetchDecision(
            pc=pc, stride=64, distance_bytes=int(distance), nta=bool(nta)
        )
    return list(decisions.values())


def _check_rewriter(case: dict) -> None:
    recipe = WorkloadRecipe(**case["recipe"])
    program = generate_workload(recipe, seed=case["program_seed"], name="fuzz")
    execution = interpreter.execute_program(program, seed=case["exec_seed"])
    original_demand = execution.trace.demand_only()
    decisions = _rewriter_decisions(case, program)

    rewritten = rewriter.insert_prefetches(program, decisions)
    re_exec = interpreter.execute_program(rewritten, seed=case["exec_seed"])
    if re_exec.trace.demand_only() != original_demand:
        raise AssertionError("rewriting changed the demand stream")

    trace_level = apply_prefetch_plan(execution.trace, decisions)
    if trace_level.demand_only() != original_demand:
        raise AssertionError("trace-level insertion changed the demand stream")
    # IR-level and trace-level insertion place each prefetch right after
    # its target, so the full event streams must agree, not just demand.
    if trace_level != re_exec.trace:
        raise AssertionError("IR-level and trace-level insertion disagree")


def _shrink_rewriter(case: dict):
    trips = case["recipe"]["trips"]
    if trips > 1:
        shrunk = json.loads(json.dumps(case))
        shrunk["recipe"]["trips"] = max(1, trips // 2)
        yield shrunk
    for drop in range(len(case["decision_slots"])):
        if len(case["decision_slots"]) > 1:
            shrunk = json.loads(json.dumps(case))
            for key in ("decision_slots", "distances", "nta"):
                shrunk[key] = [v for i, v in enumerate(case[key]) if i != drop]
            yield shrunk


# ----------------------------------------------------------------------
# target: indirect-rewrite
# ----------------------------------------------------------------------


def _gen_indirect_rewrite(rng: np.random.Generator) -> dict:
    """A workload guaranteed to carry A[B[i]] pairs, plus indirect plans."""
    n_pairs = int(rng.integers(1, 3))
    return {
        "recipe": {
            "stream_weight": float(rng.uniform(0.1, 0.5)),
            "indirect_weight": float(rng.uniform(0.3, 0.9)),
            "csr_weight": float(rng.choice([0.0, 0.3])),
            "footprint_bytes": int(rng.integers(1, 17)) * 64 * 1024,
            "n_instructions": 2 * n_pairs + 1,
            "trips": int(rng.integers(50, 800)),
        },
        "program_seed": int(rng.integers(0, 1 << 31)),
        "exec_seed": int(rng.integers(0, 1 << 31)),
        "ahead": int(rng.integers(1, 64)),
        "distance": int(rng.integers(1, 64)) * 64,
        "nta": bool(rng.integers(0, 2)),
    }


def _indirect_decisions(case: dict, program) -> list[PrefetchDecision]:
    return [
        PrefetchDecision(
            pc=data_pc,
            stride=stride,
            distance_bytes=int(case["distance"]),
            nta=bool(case["nta"]),
            indirect_ahead=int(case["ahead"]),
            index_pc=index_pc,
        )
        for data_pc, (index_pc, stride) in sorted(program.indirect_pairs().items())
    ]


def _check_indirect_rewrite(case: dict) -> None:
    recipe = WorkloadRecipe(**case["recipe"])
    program = generate_workload(recipe, seed=case["program_seed"], name="fuzz")
    decisions = _indirect_decisions(case, program)
    if not decisions:
        raise AssertionError("indirect recipe produced no A[B[i]] pairs")
    execution = interpreter.execute_program(program, seed=case["exec_seed"])
    original_demand = execution.trace.demand_only()

    rewritten = rewriter.insert_prefetches(program, decisions)
    re_exec = interpreter.execute_program(rewritten, seed=case["exec_seed"])
    if re_exec.trace.demand_only() != original_demand:
        raise AssertionError("indirect rewriting changed the demand stream")

    trace_level = apply_prefetch_plan(execution.trace, decisions)
    if trace_level.demand_only() != original_demand:
        raise AssertionError("trace-level indirect insertion changed the demand stream")
    if trace_level != re_exec.trace:
        raise AssertionError("IR-level and trace-level indirect insertion disagree")


def _shrink_indirect_rewrite(case: dict):
    trips = case["recipe"]["trips"]
    if trips > 1:
        shrunk = json.loads(json.dumps(case))
        shrunk["recipe"]["trips"] = max(1, trips // 2)
        yield shrunk
    if case["ahead"] > 1:
        shrunk = json.loads(json.dumps(case))
        shrunk["ahead"] = case["ahead"] // 2
        yield shrunk


# ----------------------------------------------------------------------
# target: graph-workload
# ----------------------------------------------------------------------


def _gen_graph_workload(rng: np.random.Generator) -> dict:
    weights = rng.dirichlet(np.ones(4)).round(3).tolist()
    return {
        "recipe": {
            "csr_weight": weights[0],
            "bfs_weight": weights[1],
            "hash_weight": weights[2],
            "indirect_weight": weights[3],
            "stream_weight": 0.0 if sum(weights) > 0 else 1.0,
            "footprint_bytes": int(rng.integers(1, 17)) * 64 * 1024,
            "n_instructions": int(rng.integers(2, 7)),
            "trips": int(rng.integers(50, 600)),
            "avg_degree": int(rng.integers(2, 33)),
        },
        "program_seed": int(rng.integers(0, 1 << 31)),
        "exec_seed": int(rng.integers(0, 1 << 31)),
    }


def _check_graph_workload(case: dict) -> None:
    """Graph generators must be deterministic, in-window, and executable."""
    recipe = WorkloadRecipe(**case["recipe"])
    a = generate_workload(recipe, seed=case["program_seed"], name="fuzz")
    b = generate_workload(recipe, seed=case["program_seed"], name="fuzz")
    if a != b:
        raise AssertionError("graph workload generation is not deterministic")
    exec_a = interpreter.execute_program(a, seed=case["exec_seed"])
    exec_b = interpreter.execute_program(a, seed=case["exec_seed"])
    if exec_a.trace != exec_b.trace:
        raise AssertionError("graph workload execution is not deterministic")
    if len(exec_a.trace) != a.n_dynamic_refs:
        raise AssertionError("trace length disagrees with the program's ref count")
    if (exec_a.trace.addr < 0).any():
        raise AssertionError("graph workload generated negative addresses")
    # Every A[B[i]] data access must stay inside its declared region.
    mapping = a.pc_map()
    for kernel in a.kernels:
        for instr in kernel.mem_instructions:
            pat = getattr(instr, "pattern", None)
            if pat is None or not hasattr(pat, "index_seed"):
                continue
            pc = mapping[(kernel.name, instr.label)]
            addrs = exec_a.trace.addr[exec_a.trace.pc == pc]
            if len(addrs) and (
                (addrs < pat.base) | (addrs >= pat.base + pat.region_bytes)
            ).any():
                raise AssertionError("indexed access escaped its data region")


def _shrink_graph_workload(case: dict):
    trips = case["recipe"]["trips"]
    if trips > 1:
        shrunk = json.loads(json.dumps(case))
        shrunk["recipe"]["trips"] = max(1, trips // 2)
        yield shrunk
    n = case["recipe"]["n_instructions"]
    if n > 1:
        shrunk = json.loads(json.dumps(case))
        shrunk["recipe"]["n_instructions"] = n - 1
        yield shrunk


#: name → (generate, check, shrink) for every fuzz target.
TARGETS = {
    "trace-codec": (_gen_trace_codec, _check_trace_codec, _shrink_trace_codec),
    "sampling-codec": (
        _gen_sampling_codec,
        _check_sampling_codec,
        _shrink_sampling_codec,
    ),
    "rewriter": (_gen_rewriter, _check_rewriter, _shrink_rewriter),
    "indirect-rewrite": (
        _gen_indirect_rewrite,
        _check_indirect_rewrite,
        _shrink_indirect_rewrite,
    ),
    "graph-workload": (
        _gen_graph_workload,
        _check_graph_workload,
        _shrink_graph_workload,
    ),
}


def _error_of(check, case: dict) -> str | None:
    try:
        check(case)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return f"{type(exc).__name__}: {exc}"
    return None


def _shrink(check, shrinker, case: dict, error: str) -> tuple[dict, int]:
    """Greedy shrink: adopt any smaller case reproducing *some* failure."""
    steps = 0
    while steps < _MAX_SHRINK_STEPS:
        for candidate in shrinker(case):
            candidate_error = _error_of(check, candidate)
            if candidate_error is not None:
                case, error = candidate, candidate_error
                steps += 1
                break
        else:
            break
    return case, steps


def run_fuzz(
    seed: int = 0,
    cases_per_target: int = 25,
    targets: tuple[str, ...] | None = None,
) -> FuzzResult:
    """Fuzz every target with ``cases_per_target`` seeded cases."""
    result = FuzzResult(seed=seed, cases_per_target=cases_per_target)
    names = targets if targets is not None else tuple(TARGETS)
    with obs.span("validate.fuzz", targets=len(names), cases=cases_per_target):
        for t_idx, name in enumerate(names):
            generate, check, shrinker = TARGETS[name]
            for c_idx in range(cases_per_target):
                rng = np.random.default_rng(
                    np.random.SeedSequence((seed, t_idx, c_idx))
                )
                case = generate(rng)
                result.cases_run += 1
                error = _error_of(check, case)
                if error is None:
                    continue
                case, steps = _shrink(check, shrinker, case, error)
                # Re-derive the error from the shrunk case so the report
                # matches what the persisted fixture reproduces.
                error = _error_of(check, case) or error
                result.failures.append(
                    FuzzFailure(
                        target=name,
                        case_index=c_idx,
                        error=error,
                        case=case,
                        shrink_steps=steps,
                    )
                )
        if obs.enabled():
            obs.metrics().counter("validate.fuzz.cases").inc(result.cases_run)
            if result.failures:
                obs.metrics().counter("validate.fuzz.failures").inc(
                    len(result.failures)
                )
    return result


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------


def persist_fixture(failure: FuzzFailure, directory: str | Path) -> Path:
    """Write one shrunk failure as a replayable JSON fixture."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    doc = {"format": FIXTURE_FORMAT, **failure.as_dict()}
    blob = json.dumps(doc, sort_keys=True).encode()
    import hashlib

    digest = hashlib.sha256(blob).hexdigest()[:10]
    path = directory / f"{failure.target}-{digest}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def replay_fixture(source: str | Path | dict) -> str | None:
    """Re-run a persisted fixture; returns the error, or None if fixed."""
    doc = source if isinstance(source, dict) else json.loads(Path(source).read_text())
    if doc.get("format") != FIXTURE_FORMAT:
        raise ReproError(f"unsupported fuzz fixture format {doc.get('format')!r}")
    target = doc["target"]
    if target not in TARGETS:
        raise ReproError(f"fuzz fixture names unknown target {target!r}")
    _, check, _ = TARGETS[target]
    return _error_of(check, doc["case"])
