"""Metamorphic and invariant checks over the analysis pipeline.

Each check encodes a *law* the pipeline must obey regardless of input —
properties with mathematical provenance, not golden numbers:

* ``lru-stack-inclusion`` — LRU is a stack algorithm: every hit in a
  small cache is a hit in any larger cache, and the simulator's miss
  vector must equal the stack-distance oracle's at both sizes.
* ``mrc-monotone`` — miss ratio curves (modelled and exact) never rise
  with cache size.
* ``rewrite-preserves-semantics`` — inserting prefetches (both at the
  mini-IR level and at the trace level) leaves the demand access stream
  bit-identical: the optimiser may add events, never change the
  program.
* ``bypass-model-consistent`` — every ``PREFETCHNTA`` decision is
  re-derivable from the model, and the modelled LLC misses bypassing
  could add stay within the analysis' flatness tolerance (bypass never
  meaningfully increases modelled LLC misses).
* ``coverage-accounting`` — per-PC miss/access counters sum exactly to
  the simulator's totals, before and after optimisation (Table I's
  coverage arithmetic is only meaningful if this holds).
* ``xcore-llc-fill-attribution`` — the cross-core helper prefetcher's
  fills are LLC-only (never the private L2) and every fill resolves to
  a line actually reachable as ``A[B[pos]]`` — a broken index resolver
  cannot hide behind plausible-looking traffic.

All checks are reusable predicates: the self-test arms a corruption and
re-runs them to prove they have teeth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cachesim.functional import FunctionalCacheSim, fully_associative_config
from repro.config import MachineConfig, amd_phenom_ii
from repro.core.bypass import data_reusing_loads, should_bypass
from repro.core.insertion import apply_prefetch_plan
from repro.core.pipeline import OptimizerSettings, PrefetchOptimizer
from repro.core.report import PrefetchDecision
from repro.isa import interpreter, rewriter
from repro.sampling.sampler import RuntimeSampler
from repro.statstack.mrc import MissRatioCurve, PerPCMissRatios
from repro.statstack.model import StatStackModel
from repro.validate.corpus import CorpusTrace
from repro.validate.differential import LINE_BYTES, size_grid_for
from repro.validate.oracle import oracle_miss_ratio_curve, oracle_miss_vector, stack_distances

__all__ = ["InvariantResult", "InvariantSettings", "run_invariants"]


@dataclass(frozen=True)
class InvariantSettings:
    sampler_rate: float = 0.2
    flatness_tolerance: float = 0.10
    machine: MachineConfig | None = None


@dataclass
class InvariantResult:
    """Outcome of one invariant on one corpus trace."""

    invariant: str
    trace: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "trace": self.trace,
            "ok": self.ok,
            "detail": self.detail,
        }


def _check_stack_inclusion(entry: CorpusTrace) -> InvariantResult:
    demand = entry.trace.demand_only()
    lines = demand.line_addr(LINE_BYTES)
    footprint = len(np.unique(lines))
    sd = stack_distances(lines)
    small_lines = max(8, footprint // 8)
    large_lines = max(small_lines * 4, small_lines + 1)
    misses = {}
    for cache_lines in (small_lines, large_lines):
        sim = FunctionalCacheSim(
            fully_associative_config(cache_lines * LINE_BYTES, LINE_BYTES),
            backend="reference",
        )
        sim.run(demand)
        expected = oracle_miss_vector(sd, cache_lines)
        if not np.array_equal(sim.last_miss, expected):
            return InvariantResult(
                "lru-stack-inclusion",
                entry.name,
                False,
                f"reference simulator disagrees with stack oracle at "
                f"{cache_lines} lines",
            )
        misses[cache_lines] = sim.last_miss
    # Inclusion: a miss in the large cache must also miss in the small one.
    violations = int(np.count_nonzero(misses[large_lines] & ~misses[small_lines]))
    return InvariantResult(
        "lru-stack-inclusion",
        entry.name,
        violations == 0,
        "" if violations == 0 else f"{violations} hits lost when growing the cache",
    )


def _check_mrc_monotone(entry: CorpusTrace) -> InvariantResult:
    demand = entry.trace.demand_only()
    lines = demand.line_addr(LINE_BYTES)
    sizes = size_grid_for(len(np.unique(lines)))
    sd = stack_distances(lines)
    exact = oracle_miss_ratio_curve(sd, sizes, LINE_BYTES)
    sampling = RuntimeSampler(rate=1.0, line_bytes=LINE_BYTES, seed=entry.seed).sample(demand)
    model = StatStackModel(sampling.reuse, line_bytes=LINE_BYTES)
    model_curve = MissRatioCurve(
        sizes, np.array([model.miss_ratio(int(s)) for s in sizes])
    )
    if not exact.is_monotone_nonincreasing():
        return InvariantResult(
            "mrc-monotone", entry.name, False, "exact curve rises with cache size"
        )
    if not model_curve.is_monotone_nonincreasing(tolerance=1e-9):
        return InvariantResult(
            "mrc-monotone", entry.name, False, "model curve rises with cache size"
        )
    return InvariantResult("mrc-monotone", entry.name, True)


def _synthetic_plan(entry: CorpusTrace) -> list[PrefetchDecision]:
    """A small hand-built plan targeting the program's hottest PCs.

    Used alongside the optimiser's own plan so rewriter semantics are
    exercised even when the analysis decides no prefetching is worth it.
    """
    pcs = entry.trace.unique_pcs()[:3].tolist()
    return [
        PrefetchDecision(
            pc=int(pc), stride=LINE_BYTES, distance_bytes=512 * (i + 1), nta=bool(i % 2)
        )
        for i, pc in enumerate(pcs)
    ]


def _check_rewrite_semantics(
    entry: CorpusTrace, settings: InvariantSettings
) -> InvariantResult:
    name = "rewrite-preserves-semantics"
    program = entry.program
    assert program is not None
    machine = settings.machine or amd_phenom_ii()
    execution = interpreter.execute_program(program, seed=entry.seed)
    original_demand = execution.trace.demand_only()

    sampling = RuntimeSampler(
        rate=settings.sampler_rate, line_bytes=LINE_BYTES, seed=entry.seed
    ).sample(execution.trace)
    report = PrefetchOptimizer(
        machine, OptimizerSettings(flatness_tolerance=settings.flatness_tolerance)
    ).analyze(sampling, refs_per_pc=program.refs_per_pc())

    plans: list[tuple[str, list[PrefetchDecision]]] = [
        ("synthetic", _synthetic_plan(entry))
    ]
    if report.decisions:
        plans.append(("optimizer", list(report.decisions)))
    # The indirect rewrite (prefetch B[i+d]; prefetch A[B[i+d]]) must
    # obey the same law; analyse again with it enabled when the program
    # carries a resolvable A[B[i]] pair.
    indirect_pairs = program.indirect_pairs()
    if indirect_pairs:
        indirect_report = PrefetchOptimizer(
            machine,
            OptimizerSettings(
                flatness_tolerance=settings.flatness_tolerance,
                enable_indirect=True,
            ),
        ).analyze(
            sampling,
            refs_per_pc=program.refs_per_pc(),
            indirect_pairs=indirect_pairs,
        )
        if indirect_report.decisions:
            plans.append(("indirect", list(indirect_report.decisions)))

    for label, decisions in plans:
        rewritten = rewriter.insert_prefetches(program, decisions)
        re_exec = interpreter.execute_program(rewritten, seed=entry.seed)
        if re_exec.trace.demand_only() != original_demand:
            return InvariantResult(
                name, entry.name, False,
                f"{label} plan: IR rewriting changed the demand stream",
            )
        inserted = re_exec.trace.select(re_exec.trace.prefetch_mask)
        # An indirect decision inserts at the data load's PC *and* a
        # run-ahead prefetch at its index load's PC.
        allowed = {d.pc for d in decisions} | {
            d.index_pc for d in decisions if d.index_pc is not None
        }
        if len(inserted) and not set(inserted.unique_pcs().tolist()) <= allowed:
            return InvariantResult(
                name, entry.name, False,
                f"{label} plan: prefetches attributed to non-target PCs",
            )
        trace_level = apply_prefetch_plan(execution.trace, decisions)
        if trace_level.demand_only() != original_demand:
            return InvariantResult(
                name, entry.name, False,
                f"{label} plan: trace-level insertion changed the demand stream",
            )
    return InvariantResult(name, entry.name, True)


def _check_bypass_consistent(
    entry: CorpusTrace, settings: InvariantSettings
) -> InvariantResult:
    name = "bypass-model-consistent"
    program = entry.program
    assert program is not None
    machine = settings.machine or amd_phenom_ii()
    execution = interpreter.execute_program(program, seed=entry.seed)
    sampling = RuntimeSampler(
        rate=settings.sampler_rate, line_bytes=LINE_BYTES, seed=entry.seed
    ).sample(execution.trace)
    report = PrefetchOptimizer(
        machine, OptimizerSettings(flatness_tolerance=settings.flatness_tolerance)
    ).analyze(sampling, refs_per_pc=program.refs_per_pc())
    nta = [d for d in report.decisions if d.nta]
    if not nta:
        return InvariantResult(name, entry.name, True, "no bypass decisions emitted")

    model = StatStackModel(sampling.reuse, line_bytes=machine.line_bytes)
    ratios = PerPCMissRatios(model, machine)
    extra_llc = 0.0
    modelled_l1 = 0.0
    for decision in nta:
        if not should_bypass(
            decision.pc, sampling.reuse, ratios, settings.flatness_tolerance
        ):
            return InvariantResult(
                name, entry.name, False,
                f"pc {decision.pc} marked NTA but model does not justify bypass",
            )
        # Bypassed lines stop being cached in L2/LLC, so the misses it
        # could add land on the loads that *consume* those lines: each
        # reuser's curve drop between L1 and LLC bounds what it loses.
        reusers = data_reusing_loads(sampling.reuse, decision.pc)
        for reuser_pc in reusers or {decision.pc: 1.0}:
            curve = ratios.pc_curve(reuser_pc)
            weight = model.pc_sample_weight(reuser_pc)
            extra_llc += weight * curve.drop_between(
                machine.l1.size_bytes, machine.llc.size_bytes
            )
            modelled_l1 += weight * curve.at(machine.l1.size_bytes)
    if extra_llc > settings.flatness_tolerance * max(modelled_l1, 1e-12):
        return InvariantResult(
            name, entry.name, False,
            f"bypassing adds {extra_llc:.4f} modelled LLC misses per reference "
            f"(> {settings.flatness_tolerance:.0%} of modelled L1 misses)",
        )
    return InvariantResult(name, entry.name, True)


def _check_coverage_accounting(
    entry: CorpusTrace, settings: InvariantSettings
) -> InvariantResult:
    name = "coverage-accounting"
    machine = settings.machine or amd_phenom_ii()
    demand = entry.trace.demand_only()
    sim = FunctionalCacheSim(machine.l1)
    stats = sim.run(demand)
    miss_from_vector = int(np.count_nonzero(sim.last_miss))
    if stats.total_misses() != miss_from_vector:
        return InvariantResult(
            name, entry.name, False,
            f"per-PC misses sum to {stats.total_misses()}, "
            f"miss vector counts {miss_from_vector}",
        )
    if stats.total_accesses() != len(demand):
        return InvariantResult(
            name, entry.name, False,
            f"per-PC accesses sum to {stats.total_accesses()}, "
            f"trace has {len(demand)} demand events",
        )
    # Coverage arithmetic: rewriting must keep the demand population
    # fixed, so removed + remaining misses always equals the baseline.
    plan = _synthetic_plan(entry)
    optimised = apply_prefetch_plan(entry.trace, plan)
    opt_sim = FunctionalCacheSim(machine.l1)
    opt_stats = opt_sim.run(optimised, honor_prefetches=True)
    if opt_stats.total_accesses() != len(demand):
        return InvariantResult(
            name, entry.name, False,
            "optimised run counts a different demand population "
            f"({opt_stats.total_accesses()} vs {len(demand)})",
        )
    removed = stats.total_misses() - opt_stats.total_misses()
    if removed + opt_stats.total_misses() != stats.total_misses():
        return InvariantResult(name, entry.name, False, "coverage identity violated")
    return InvariantResult(name, entry.name, True)


def _check_xcore_attribution(entry: CorpusTrace) -> InvariantResult:
    """Cross-core LLC fills must be LLC-only and resolver-correct.

    Every request the helper prefetcher issues while observing the
    program's demand stream must (a) skip the private L2
    (``fill_l2=False`` — the whole point of a cross-core fill) and
    (b) target a line of the *data* region reachable as ``A[B[pos]]``
    for some index position — a broken resolver (the self-test's
    mutation) lands fills outside that set.
    """
    from repro.hwpref.xcore import cross_core_prefetcher_for, index_directory_for

    name = "xcore-llc-fill-attribution"
    program = entry.program
    assert program is not None
    directory = index_directory_for(program)
    if not directory:
        return InvariantResult(name, entry.name, True, "no A[B[i]] pairs")
    execution = interpreter.execute_program(program, seed=entry.seed)
    demand = execution.trace.demand_only()
    prefetcher = cross_core_prefetcher_for(program)
    ev, lines, fill_l2 = prefetcher.observe_batch(
        demand.pc,
        demand.addr,
        demand.line_addr(LINE_BYTES),
        np.zeros(len(demand), dtype=bool),
    )
    if len(ev) == 0:
        return InvariantResult(
            name, entry.name, False,
            "pairs registered but no cross-core fills issued",
        )
    if fill_l2.any():
        return InvariantResult(
            name, entry.name, False,
            f"{int(fill_l2.sum())} cross-core fills target the private L2",
        )
    reachable = set()
    for region in directory.values():
        vals = region.index_values()
        addrs = region.data_base + vals * region.data_elem_bytes
        reachable.update(np.unique(addrs // LINE_BYTES).tolist())
    stray = set(np.unique(lines).tolist()) - reachable
    if stray:
        return InvariantResult(
            name, entry.name, False,
            f"{len(stray)} prefetched lines are not reachable as A[B[pos]]",
        )
    return InvariantResult(name, entry.name, True)


def run_invariants(
    corpus: list[CorpusTrace], settings: InvariantSettings | None = None
) -> list[InvariantResult]:
    """Run every applicable invariant over the corpus."""
    settings = settings or InvariantSettings()
    results: list[InvariantResult] = []
    with obs.span("validate.invariants", traces=len(corpus)):
        for entry in corpus:
            results.append(_check_stack_inclusion(entry))
            results.append(_check_mrc_monotone(entry))
            results.append(_check_coverage_accounting(entry, settings))
            if entry.program is not None:
                results.append(_check_rewrite_semantics(entry, settings))
                results.append(_check_bypass_consistent(entry, settings))
                results.append(_check_xcore_attribution(entry))
        if obs.enabled():
            obs.metrics().counter("validate.invariant.checks").inc(len(results))
            failed = sum(1 for r in results if not r.ok)
            if failed:
                obs.metrics().counter("validate.invariant.failures").inc(failed)
    return results
