"""Seeded trace corpus for the conformance harness.

Every conformance run is driven by the same deterministic corpus: a set
of synthesized traces spanning the access-pattern classes the paper's
workloads exhibit (streaming, strided sweeps, pointer chases, random and
gathered irregular traffic, prefetcher-hostile bursts, mixed phases) plus
whole generated workloads from :mod:`repro.workloads.generator`.  Each
trace is labelled with its **class**, and each class carries documented
error bounds for the StatStack-vs-simulation comparison — the analytical
model is exact for some reuse structures (constant-distance chases) and
only statistical for others (gathers), so one global tolerance would
either mask regressions or flake.

The corpus is a function of ``(seed, quick)`` only; two runs with the
same arguments produce bit-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.interpreter import execute_program
from repro.isa.program import Program
from repro.trace.events import MemOp, MemoryTrace, TraceBuilder
from repro.trace.synthesis import (
    bfs_frontier_pattern,
    burst_strided_pattern,
    chase_pattern,
    csr_pattern,
    gather_pattern,
    hash_probe_pattern,
    index_array_values,
    indexed_pattern,
    random_pattern,
    strided_pattern,
    stream_pattern,
    sweep_pattern,
)
from repro.workloads.generator import WorkloadRecipe, generate_workload

__all__ = ["ClassBounds", "CorpusTrace", "CLASS_BOUNDS", "build_corpus"]

KB = 1024


@dataclass(frozen=True)
class ClassBounds:
    """Documented model-vs-simulation error bounds for one trace class.

    Attributes
    ----------
    linf:
        Maximum allowed L∞ (worst size) gap between the StatStack curve
        built from the *exhaustive* (rate 1.0) reuse distribution and
        the exact simulated curve.
    l1:
        Maximum allowed mean absolute gap over the size grid.
    pc:
        Maximum allowed per-PC miss-ratio divergence at the mid size,
        over PCs with adequate sample support.
    sampled_slack:
        Extra L∞/L1/pc headroom granted when the model is built from a
        sparse sample (rate < 1) instead of the full distribution.
    cliff:
        True for classes whose exact curve is a step function (cyclic
        strided/sweep reuse: everything misses below the footprint,
        everything hits above).  At sparse sampling rates the L∞ check
        is skipped for these — an arbitrarily small displacement of the
        modelled knee scores as the full step height, so pointwise L∞
        is ill-conditioned there; the L1 (mean) and per-PC checks still
        apply.
    """

    linf: float
    l1: float
    pc: float
    sampled_slack: float = 0.10
    cliff: bool = False


#: Per-class bounds, calibrated against the seeded corpus at roughly 2×
#: the measured worst-case error (see ``docs/testing.md`` for per-class
#: measurements).  StatStack is *exact* for patterns whose reuse
#: distances are (per line) deterministic — streams, strided sweeps,
#: pointer chases — and statistical for random/gather traffic, where the
#: expected-stack-distance approximation smooths the true distribution.
#: The ``mixed`` class is the model's documented weak spot: one global
#: reuse distribution cannot represent distinct program phases, which
#: inflates both the curve gap and (especially) per-PC divergence for
#: PCs confined to one phase.
#: ``mixed.pc = 1.0`` deliberately disables the per-PC check for that
#: class: a PC confined to one phase sees a completely different reuse
#: environment than the global distribution StatStack builds, so its
#: modelled miss ratio can be arbitrarily wrong — the bound documents
#: the model's assumption rather than pretending a number exists.
CLASS_BOUNDS: dict[str, ClassBounds] = {
    "stream": ClassBounds(linf=0.01, l1=0.005, pc=0.02),
    "strided": ClassBounds(linf=0.02, l1=0.01, pc=0.02, cliff=True),
    "sweep": ClassBounds(linf=0.02, l1=0.01, pc=0.02, cliff=True),
    "chase": ClassBounds(linf=0.02, l1=0.01, pc=0.02),
    "random": ClassBounds(linf=0.10, l1=0.02, pc=0.03),
    "gather": ClassBounds(linf=0.08, l1=0.02, pc=0.03),
    "burst": ClassBounds(linf=0.02, l1=0.01, pc=0.03),
    "mixed": ClassBounds(linf=0.45, l1=0.15, pc=1.0, cliff=True),
    "workload": ClassBounds(linf=0.03, l1=0.01, pc=0.03),
    # Irregular graph-analytics classes, calibrated like the rest at
    # roughly 1.5-2x the worst error measured over the seed-0 corpus
    # (quick and full sizes, rate 1.0); tests/test_validate_calibration.py
    # pins both directions — bounds may neither be exceeded nor drift
    # past 2x the recorded calibration.  CSR edge scans are short
    # sequential runs over a permuted row order (statistical but tame);
    # BFS visitation orders repeat cyclically (step curve → cliff);
    # hash probes have a heavier reuse tail; the indirect interleave
    # inherits its cyclic index walk's step curve (cliff) while the
    # gather half smooths, which is where its large L-inf lives.
    "csr": ClassBounds(linf=0.065, l1=0.01, pc=0.01),
    "bfs": ClassBounds(linf=0.02, l1=0.01, pc=0.01, cliff=True),
    "hash": ClassBounds(linf=0.10, l1=0.018, pc=0.01),
    "indirect": ClassBounds(linf=0.45, l1=0.085, pc=0.01, cliff=True),
    "graph": ClassBounds(linf=0.02, l1=0.01, pc=0.02),
}


@dataclass(frozen=True)
class CorpusTrace:
    """One corpus entry: a labelled trace plus its provenance.

    ``program`` is set for workload-class entries so the invariant
    engine can drive the full analyse→rewrite→re-execute pipeline.
    """

    name: str
    cls: str
    trace: MemoryTrace
    seed: int
    program: Program | None = None

    @property
    def bounds(self) -> ClassBounds:
        return CLASS_BOUNDS[self.cls]


def _single_pc(pc: int, addr: np.ndarray) -> MemoryTrace:
    builder = TraceBuilder()
    builder.append_uniform(pc, addr, MemOp.LOAD)
    return builder.build()


def _multi_pc(segments: list[tuple[int, np.ndarray, MemOp]]) -> MemoryTrace:
    builder = TraceBuilder()
    for pc, addr, op in segments:
        builder.append_uniform(pc, addr, op)
    return builder.build()


def _interleave(columns: list[tuple[int, np.ndarray]]) -> MemoryTrace:
    """Round-robin interleave equal-length address columns (one PC each)."""
    n = min(len(addr) for _, addr in columns)
    addr = np.stack([a[:n] for _, a in columns], axis=1).reshape(-1)
    pcs = np.broadcast_to(
        np.array([pc for pc, _ in columns], dtype=np.int64), (n, len(columns))
    ).reshape(-1)
    return MemoryTrace(pcs.copy(), addr, np.zeros(len(addr), np.uint8))


def build_corpus(seed: int = 0, quick: bool = True) -> list[CorpusTrace]:
    """The seeded conformance corpus (25+ traces across all classes)."""
    n = 6_000 if quick else 24_000
    entries: list[CorpusTrace] = []
    counter = 0

    def add(name: str, cls: str, trace: MemoryTrace, program: Program | None = None):
        nonlocal counter
        entries.append(
            CorpusTrace(
                name=name, cls=cls, trace=trace, seed=seed + counter, program=program
            )
        )
        counter += 1

    def rng() -> np.random.Generator:
        # One child generator per entry, derived from (seed, index) so
        # inserting a corpus entry never reshuffles later ones.
        return np.random.default_rng(np.random.SeedSequence((seed, counter)))

    # -- streaming -----------------------------------------------------
    add("stream-8B", "stream", _single_pc(10, stream_pattern(0, n, elem_bytes=8)))
    add("stream-64B", "stream", _single_pc(11, stream_pattern(1 << 24, n, elem_bytes=64)))
    add(
        "stream-2x",
        "stream",
        _interleave(
            [
                (12, stream_pattern(0, n // 2, elem_bytes=8)),
                (13, stream_pattern(1 << 26, n // 2, elem_bytes=16)),
            ]
        ),
    )

    # -- strided sweeps ------------------------------------------------
    add(
        "strided-64-256k",
        "strided",
        _single_pc(20, strided_pattern(0, n, 64, wrap_bytes=256 * KB)),
    )
    add(
        "strided-16-64k",
        "strided",
        _single_pc(21, strided_pattern(1 << 24, n, 16, wrap_bytes=64 * KB)),
    )
    add(
        "strided-192-512k",
        "strided",
        _single_pc(22, strided_pattern(1 << 25, n, 192, wrap_bytes=512 * KB)),
    )
    add(
        "strided-neg-128k",
        "strided",
        _single_pc(23, (1 << 26) + strided_pattern(256 * KB, n, -64, wrap_bytes=128 * KB)),
    )

    # -- nested sweeps (retention-sensitive reuse) ---------------------
    add(
        "sweep-two-pass",
        "sweep",
        _single_pc(30, sweep_pattern(0, n, (32 * KB, 256 * KB))),
    )
    add(
        "sweep-three-pass",
        "sweep",
        _single_pc(31, sweep_pattern(1 << 24, n, (16 * KB, 64 * KB, 512 * KB))),
    )
    add(
        "sweep-fine",
        "sweep",
        _single_pc(32, sweep_pattern(1 << 25, n, (8 * KB, 24 * KB), stride_bytes=64)),
    )

    # -- pointer chases ------------------------------------------------
    add("chase-512", "chase", _single_pc(40, chase_pattern(rng(), 0, 512, n)))
    add("chase-2k", "chase", _single_pc(41, chase_pattern(rng(), 1 << 24, 2048, n)))
    add("chase-8k", "chase", _single_pc(42, chase_pattern(rng(), 1 << 26, 8192, n)))

    # -- uniform random ------------------------------------------------
    add("random-64k", "random", _single_pc(50, random_pattern(rng(), 0, 64 * KB, n)))
    add(
        "random-512k",
        "random",
        _single_pc(51, random_pattern(rng(), 1 << 24, 512 * KB, n)),
    )
    add(
        "random-align64",
        "random",
        _single_pc(52, random_pattern(rng(), 1 << 25, 128 * KB, n, align=64)),
    )

    # -- indirect gathers ----------------------------------------------
    add(
        "gather-lo",
        "gather",
        _single_pc(60, gather_pattern(rng(), 0, 256 * KB, n, locality=0.2)),
    )
    add(
        "gather-mid",
        "gather",
        _single_pc(61, gather_pattern(rng(), 1 << 24, 256 * KB, n, locality=0.6)),
    )
    add(
        "gather-hi",
        "gather",
        _single_pc(62, gather_pattern(rng(), 1 << 25, 128 * KB, n, locality=0.9)),
    )

    # -- prefetcher-hostile bursts -------------------------------------
    add(
        "burst-short",
        "burst",
        _single_pc(70, burst_strided_pattern(rng(), 0, 512 * KB, n, burst_len=6)),
    )
    add(
        "burst-long",
        "burst",
        _single_pc(
            71, burst_strided_pattern(rng(), 1 << 24, 1024 * KB, n, burst_len=24, stride_bytes=16)
        ),
    )

    # -- mixed phases --------------------------------------------------
    third = n // 3
    add(
        "mixed-phases",
        "mixed",
        _multi_pc(
            [
                (80, strided_pattern(0, third, 64, wrap_bytes=128 * KB), MemOp.LOAD),
                (81, chase_pattern(rng(), 1 << 24, 1024, third), MemOp.LOAD),
                (82, stream_pattern(1 << 26, third, elem_bytes=8), MemOp.LOAD),
            ]
        ),
    )
    add(
        "mixed-interleaved",
        "mixed",
        _interleave(
            [
                (83, strided_pattern(0, n // 2, 64, wrap_bytes=64 * KB)),
                (84, random_pattern(rng(), 1 << 24, 256 * KB, n // 2)),
            ]
        ),
    )
    add(
        "mixed-stores",
        "mixed",
        _multi_pc(
            [
                (85, strided_pattern(0, n // 2, 64, wrap_bytes=128 * KB), MemOp.LOAD),
                (86, strided_pattern(1 << 24, n // 2, 64, wrap_bytes=64 * KB), MemOp.STORE),
            ]
        ),
    )

    # -- whole generated workloads (program-bearing entries) -----------
    trips = max(200, n // 5)
    recipes = [
        ("workload-stream-chase", WorkloadRecipe(
            stream_weight=0.6, chase_weight=0.4, footprint_bytes=2 * 1024 * KB,
            n_instructions=4, trips=trips,
        )),
        ("workload-gather-store", WorkloadRecipe(
            stream_weight=0.3, gather_weight=0.4, store_weight=0.3,
            footprint_bytes=1024 * KB, n_instructions=5, trips=trips,
        )),
        ("workload-burst", WorkloadRecipe(
            stream_weight=0.2, burst_weight=0.8, footprint_bytes=512 * KB,
            n_instructions=4, trips=trips, burst_len=8,
        )),
    ]
    for name, recipe in recipes:
        program = generate_workload(recipe, seed=seed + counter, name=name)
        execution = execute_program(program, seed=seed + counter)
        add(name, "workload", execution.trace, program=program)

    # -- graph-analytics irregulars (the paper's uncovered frontier) ---
    add("csr-4k-deg8", "csr", _single_pc(90, csr_pattern(rng(), 0, 4096, 8, n)))
    add(
        "csr-512-deg32",
        "csr",
        _single_pc(91, csr_pattern(rng(), 1 << 24, 512, 32, n)),
    )
    add(
        "bfs-2k-deg4",
        "bfs",
        _single_pc(92, bfs_frontier_pattern(rng(), 0, 2048, 4, n)),
    )
    add(
        "bfs-1k-deg8",
        "bfs",
        _single_pc(93, bfs_frontier_pattern(rng(), 1 << 24, 1024, 8, n)),
    )
    add("hash-1k", "hash", _single_pc(94, hash_probe_pattern(rng(), 0, 1024, n)))
    add(
        "hash-8k-probe4",
        "hash",
        _single_pc(95, hash_probe_pattern(rng(), 1 << 24, 8192, n, avg_probe=4)),
    )

    # -- index-array indirection: B[i] walk interleaved with A[B[i]] ---
    for pc_pair, base, n_idx, n_slots in ((96, 0, 2048, 4096), (98, 1 << 26, 512, 16384)):
        index_seed = int(rng().integers(0, 2**31 - 1))
        vals = index_array_values(index_seed, n_idx, n_slots)
        half = n // 2
        add(
            f"indirect-{n_idx}x{n_slots}",
            "indirect",
            _interleave(
                [
                    (pc_pair, strided_pattern(base, half, 8, wrap_bytes=n_idx * 8)),
                    (pc_pair + 1, indexed_pattern(base + (1 << 22), half, vals, elem_bytes=64)),
                ]
            ),
        )

    # -- graph workloads (program-bearing: drive the indirect rewrite
    #    and the cross-core prefetcher through the full pipeline) ------
    graph_recipes = [
        ("graph-csr-indirect", WorkloadRecipe(
            stream_weight=0.2, csr_weight=0.4, indirect_weight=0.4,
            footprint_bytes=512 * KB, n_instructions=5, trips=trips,
        )),
        ("graph-bfs-hash", WorkloadRecipe(
            stream_weight=0.2, bfs_weight=0.4, hash_weight=0.4,
            footprint_bytes=512 * KB, n_instructions=5, trips=trips,
        )),
    ]
    for name, recipe in graph_recipes:
        program = generate_workload(recipe, seed=seed + counter, name=name)
        execution = execute_program(program, seed=seed + counter)
        add(name, "graph", execution.trace, program=program)

    return entries
