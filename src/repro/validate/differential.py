"""Oracle differential suite: StatStack vs exact simulation vs backends.

For every corpus trace this engine establishes a three-way agreement:

1. **Oracle vs simulator** — the per-access miss vector of the
   fully-associative :class:`~repro.cachesim.functional.FunctionalCacheSim`
   must be *bit-identical* to the stack-distance oracle
   (:mod:`repro.validate.oracle`) at every probed size.  The two
   implementations share no code, so agreement here certifies the
   simulator's LRU semantics.
2. **Model vs oracle** — the StatStack miss-ratio curve (built from the
   trace's reuse-distance distribution) must track the exact curve
   within the trace class's documented L∞/L1 bounds, and per-PC miss
   ratios within the class's per-PC bound (the paper's Fig. 3 claim).
3. **Backend vs backend** — the dict-based reference backend and the
   array-native fast backend must produce bit-identical miss vectors
   *and* eviction-victim streams on realistic set-associative
   geometries.

Every check failure is recorded per trace; nothing raises, so a run
always yields a complete report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cachesim.functional import FunctionalCacheSim, fully_associative_config
from repro.config import CacheConfig
from repro.sampling.sampler import RuntimeSampler
from repro.statstack.mrc import MissRatioCurve
from repro.statstack.model import StatStackModel
from repro.validate.corpus import CorpusTrace
from repro.validate.oracle import (
    oracle_miss_ratio_curve,
    oracle_miss_vector,
    oracle_per_pc_miss_ratios,
    stack_distances,
)

__all__ = ["DiffSettings", "TraceDiffResult", "size_grid_for", "diff_one", "run_differential"]

LINE_BYTES = 64


@dataclass(frozen=True)
class DiffSettings:
    """Knobs of the differential engine.

    ``sampler_rates`` lists the reuse-sampling rates a model is built
    at: rate 1.0 feeds StatStack the complete distribution (isolating
    *model* error from *sampling* error); sparse rates additionally
    exercise the sampling estimator and get the class's
    ``sampled_slack`` of extra headroom.
    """

    sampler_rates: tuple[float, ...] = (1.0,)
    pc_min_samples: int = 16
    backend_geometries: tuple[tuple[int, int], ...] = ((64, 4), (16, 2))


@dataclass
class TraceDiffResult:
    """Differential outcome for one corpus trace."""

    name: str
    cls: str
    n_events: int
    footprint_lines: int
    linf: float = 0.0
    l1: float = 0.0
    pc_divergence: float = 0.0
    sim_matches_oracle: bool = True
    backends_identical: bool = True
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "class": self.cls,
            "n_events": self.n_events,
            "footprint_lines": self.footprint_lines,
            "linf": self.linf,
            "l1": self.l1,
            "pc_divergence": self.pc_divergence,
            "sim_matches_oracle": self.sim_matches_oracle,
            "backends_identical": self.backends_identical,
            "failures": list(self.failures),
            "passed": self.passed,
        }


def size_grid_for(footprint_lines: int) -> np.ndarray:
    """Cache sizes (bytes) straddling a trace's footprint.

    Geometric ladder from footprint/32 up to 2× footprint: the
    interesting model behaviour — the knee of the curve — always sits
    near the footprint, wherever that lands in absolute terms.
    """
    sizes = []
    for k in range(-5, 2):
        lines = max(8, int(footprint_lines * 2.0**k))
        size = lines * LINE_BYTES
        if size not in sizes:
            sizes.append(size)
    return np.asarray(sorted(sizes), dtype=np.int64)


def _per_pc_divergence(
    model: StatStackModel,
    exact: dict[int, float],
    size_bytes: int,
    min_samples: int,
) -> float:
    worst = 0.0
    for pc, exact_ratio in exact.items():
        if model.pc_sample_count(pc) < min_samples:
            continue
        worst = max(worst, abs(model.pc_miss_ratio(pc, size_bytes) - exact_ratio))
    return worst


def _check_backend_parity(
    entry: CorpusTrace, result: TraceDiffResult, geometries: tuple[tuple[int, int], ...]
) -> None:
    for sets, ways in geometries:
        config = CacheConfig(
            name=f"diff-{sets}x{ways}",
            size_bytes=sets * ways * LINE_BYTES,
            ways=ways,
            line_bytes=LINE_BYTES,
        )
        runs = {}
        for backend in ("reference", "fast"):
            sim = FunctionalCacheSim(config, backend=backend)
            sim.run(entry.trace, collect_victims=True)
            runs[backend] = (sim.last_miss, sim.last_victims)
        miss_ok = np.array_equal(runs["reference"][0], runs["fast"][0])
        victims_ok = np.array_equal(runs["reference"][1], runs["fast"][1])
        if not (miss_ok and victims_ok):
            result.backends_identical = False
            result.failures.append(
                f"backend divergence at {sets}s/{ways}w: "
                f"miss_identical={miss_ok} victims_identical={victims_ok}"
            )


def diff_one(entry: CorpusTrace, settings: DiffSettings) -> TraceDiffResult:
    """Run the full differential comparison for one corpus trace."""
    demand = entry.trace.demand_only()
    lines = demand.line_addr(LINE_BYTES)
    footprint = len(np.unique(lines))
    result = TraceDiffResult(
        name=entry.name,
        cls=entry.cls,
        n_events=len(demand),
        footprint_lines=footprint,
    )
    bounds = entry.bounds
    sizes = size_grid_for(footprint)

    with obs.span("validate.diff.trace", trace=entry.name, events=len(demand)):
        sd = stack_distances(lines)
        exact_curve = oracle_miss_ratio_curve(sd, sizes, LINE_BYTES)

        # 1. simulator vs oracle: bit-identical miss vectors at the two
        #    sizes bracketing the knee.
        for size in (int(sizes[0]), int(sizes[len(sizes) // 2])):
            sim = FunctionalCacheSim(
                fully_associative_config(size, LINE_BYTES), backend="fast"
            )
            sim.run(demand)
            expected = oracle_miss_vector(sd, size // LINE_BYTES)
            if not np.array_equal(sim.last_miss, expected):
                diverging = int(np.count_nonzero(sim.last_miss != expected))
                result.sim_matches_oracle = False
                result.failures.append(
                    f"simulator disagrees with stack oracle at {size}B "
                    f"on {diverging}/{len(expected)} events"
                )

        # 2. model vs oracle, at every configured sampling rate.
        mid_size = int(sizes[len(sizes) // 2])
        exact_pc = oracle_per_pc_miss_ratios(demand, sd, mid_size // LINE_BYTES)
        for rate in settings.sampler_rates:
            sampler = RuntimeSampler(rate=rate, line_bytes=LINE_BYTES, seed=entry.seed)
            sampling = sampler.sample(demand)
            if len(sampling.reuse) == 0:
                result.failures.append(f"rate {rate}: sampler produced no samples")
                continue
            model = StatStackModel(sampling.reuse, line_bytes=LINE_BYTES)
            model_curve = MissRatioCurve(
                sizes, np.array([model.miss_ratio(int(s)) for s in sizes])
            )
            slack = 0.0 if rate >= 1.0 else bounds.sampled_slack
            linf = model_curve.linf_distance(exact_curve)
            l1 = model_curve.l1_distance(exact_curve)
            pc_div = _per_pc_divergence(
                model, exact_pc, mid_size, settings.pc_min_samples
            )
            if rate >= 1.0:
                result.linf, result.l1, result.pc_divergence = linf, l1, pc_div
            # Cliff-shaped curves (cyclic reuse) make pointwise L-inf
            # ill-conditioned under sparse sampling: a hair of knee
            # displacement scores as the full step height.  L1 and the
            # per-PC check still bound those classes at sparse rates.
            check_linf = rate >= 1.0 or not bounds.cliff
            if check_linf and linf > bounds.linf + slack:
                result.failures.append(
                    f"rate {rate}: MRC L-inf error {linf:.4f} exceeds "
                    f"{entry.cls} bound {bounds.linf + slack:.4f}"
                )
            if l1 > bounds.l1 + slack:
                result.failures.append(
                    f"rate {rate}: MRC L1 error {l1:.4f} exceeds "
                    f"{entry.cls} bound {bounds.l1 + slack:.4f}"
                )
            if pc_div > bounds.pc + slack:
                result.failures.append(
                    f"rate {rate}: per-PC divergence {pc_div:.4f} exceeds "
                    f"{entry.cls} bound {bounds.pc + slack:.4f}"
                )

        # 3. reference vs fast backend parity.
        _check_backend_parity(entry, result, settings.backend_geometries)

    if obs.enabled():
        obs.metrics().counter("validate.diff.traces").inc()
        if not result.passed:
            obs.metrics().counter("validate.diff.failures").inc(len(result.failures))
    return result


def run_differential(
    corpus: list[CorpusTrace], settings: DiffSettings | None = None
) -> list[TraceDiffResult]:
    """Differential comparison over the whole corpus."""
    settings = settings or DiffSettings()
    with obs.span("validate.diff", traces=len(corpus)):
        return [diff_one(entry, settings) for entry in corpus]
