"""Machine and cache configuration objects.

The paper evaluates two commodity x86 multicores (paper Table II):

============== ======= ======= ====== ========
CPU             L1$     L2$     LLC    Freq.
============== ======= ======= ====== ========
AMD Phenom II   64 kB   512 kB  6 MB   2.8 GHz
Intel i7-2600K  32 kB   256 kB  8 MB   3.4 GHz
============== ======= ======= ====== ========

:func:`amd_phenom_ii` and :func:`intel_i7_2600k` build these machines with
latencies and bandwidth figures representative of the real parts.  All
simulators, models and analyses in this package take a
:class:`MachineConfig` so new machines can be described in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "amd_phenom_ii",
    "intel_i7_2600k",
    "MACHINES",
    "get_machine",
]

KIB = 1024
MIB = 1024 * 1024


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of a single cache level.

    Parameters
    ----------
    name:
        Human-readable level name (``"L1"``, ``"L2"``, ``"LLC"``).
    size_bytes:
        Total capacity in bytes.  Must be a power of two multiple of
        ``line_bytes * ways``.
    ways:
        Associativity.  ``ways == num_lines`` gives a fully associative
        cache.
    line_bytes:
        Cache line size in bytes (64 on both evaluated machines).
    hit_latency:
        Load-to-use latency in core cycles for a hit in this level.
    backend:
        Simulation backend for simulators driven by this level alone
        (``"reference"`` or ``"fast"``); ``None`` defers to the
        process-wide default (see :mod:`repro.cachesim.options`).
    """

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 4
    backend: str | None = None

    def __post_init__(self) -> None:
        from repro.cachesim.options import validate_backend

        validate_backend(self.backend)
        if self.size_bytes <= 0:
            raise ConfigError(f"{self.name}: size_bytes must be positive")
        if not _is_pow2(self.line_bytes):
            raise ConfigError(f"{self.name}: line_bytes must be a power of two")
        if self.ways <= 0:
            raise ConfigError(f"{self.name}: ways must be positive")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line_bytes*ways ({self.line_bytes}*{self.ways})"
            )
        if not _is_pow2(self.num_sets):
            raise ConfigError(f"{self.name}: number of sets must be a power of two")
        if self.hit_latency < 0:
            raise ConfigError(f"{self.name}: hit_latency must be non-negative")

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (``num_lines / ways``)."""
        return self.num_lines // self.ways

    @property
    def set_index_bits(self) -> int:
        """Number of address bits used to select a set."""
        return int(math.log2(self.num_sets))

    def with_size(self, size_bytes: int) -> "CacheConfig":
        """Return a copy of this level resized to ``size_bytes``.

        Associativity is clamped so the new geometry stays valid; used by
        miss-ratio-curve sweeps that model many hypothetical sizes.
        """
        lines = max(1, size_bytes // self.line_bytes)
        ways = min(self.ways, lines)
        while lines % ways:
            ways -= 1
        return replace(self, size_bytes=lines * self.line_bytes, ways=ways)


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine model: cache hierarchy, core and memory system.

    Attributes
    ----------
    name:
        Machine identifier, e.g. ``"amd-phenom-ii"``.
    l1, l2, llc:
        Per-level :class:`CacheConfig`.  The LLC is shared between all
        ``cores``; L1/L2 are private.
    cores:
        Number of cores (all experiments in the paper use 4).
    freq_ghz:
        Core clock frequency in GHz; converts cycles to seconds for
        bandwidth figures.
    dram_latency:
        Core cycles for an LLC miss serviced from DRAM (unloaded).
    peak_bandwidth_gbs:
        Achievable off-chip bandwidth in GB/s (the paper quotes
        15.6 GB/s for STREAM on the Intel machine).
    prefetch_cost:
        Cycles to execute one software prefetch instruction (paper: α = 1,
        measured with ineffective prefetches).
    cpi_base:
        Cycles per non-memory instruction when no stalls occur.
    cycles_per_memop:
        Δ in the paper — average cycles per memory operation, used to
        estimate loop iteration time ``d = recurrence × Δ``.
    sim_backend:
        Cache-simulation backend for hierarchies built from this
        machine (``"reference"`` or ``"fast"``); ``None`` defers to the
        process-wide default (see :mod:`repro.cachesim.options`).
    """

    name: str
    l1: CacheConfig
    l2: CacheConfig
    llc: CacheConfig
    cores: int = 4
    freq_ghz: float = 3.0
    dram_latency: int = 200
    peak_bandwidth_gbs: float = 12.0
    prefetch_cost: float = 1.0
    cpi_base: float = 0.5
    cycles_per_memop: float = 2.0
    sim_backend: str | None = None

    def __post_init__(self) -> None:
        from repro.cachesim.options import validate_backend

        validate_backend(self.sim_backend)
        if self.cores <= 0:
            raise ConfigError("cores must be positive")
        if self.freq_ghz <= 0:
            raise ConfigError("freq_ghz must be positive")
        if self.peak_bandwidth_gbs <= 0:
            raise ConfigError("peak_bandwidth_gbs must be positive")
        if not (self.l1.line_bytes == self.l2.line_bytes == self.llc.line_bytes):
            raise ConfigError("all cache levels must share one line size")
        if not (self.l1.size_bytes < self.l2.size_bytes < self.llc.size_bytes):
            raise ConfigError("cache sizes must strictly increase with level")

    @property
    def line_bytes(self) -> int:
        """Cache line size shared by every level."""
        return self.l1.line_bytes

    @property
    def levels(self) -> tuple[CacheConfig, CacheConfig, CacheConfig]:
        """The (L1, L2, LLC) tuple in access order."""
        return (self.l1, self.l2, self.llc)

    def miss_latency(self, level: str) -> int:
        """Latency (cycles) of a miss serviced by ``level``.

        ``level`` is the level that *provides* the data: ``"L2"``,
        ``"LLC"`` or ``"DRAM"``.
        """
        table = {
            "L2": self.l2.hit_latency,
            "LLC": self.llc.hit_latency,
            "DRAM": self.dram_latency,
        }
        try:
            return table[level]
        except KeyError:
            raise ConfigError(f"unknown service level {level!r}") from None

    @property
    def avg_memory_latency(self) -> float:
        """Unloaded average latency of an L1 miss, the paper's *l*.

        Used by the cost/benefit analysis and prefetch-distance formula.
        A simple weighted guess that most L1 misses on these machines hit
        in L2/LLC; experiments may override with measured values.
        """
        return 0.45 * self.l2.hit_latency + 0.30 * self.llc.hit_latency + 0.25 * self.dram_latency

    def bytes_per_cycle(self) -> float:
        """Peak off-chip bytes transferred per core cycle."""
        return self.peak_bandwidth_gbs * 1e9 / (self.freq_ghz * 1e9)

    def llc_share(self, active_cores: int) -> int:
        """Naive equal-partition share of the LLC for one of ``active_cores``."""
        if active_cores <= 0:
            raise ConfigError("active_cores must be positive")
        return self.llc.size_bytes // active_cores


def amd_phenom_ii() -> MachineConfig:
    """AMD Phenom II X4 — paper Table II row 1.

    64 kB 2-way L1D, 512 kB 8-way L2, 6 MB 48-way shared L3 at 2.8 GHz.
    The hardware prefetcher on this part is a per-PC stride prefetcher.
    """
    return MachineConfig(
        name="amd-phenom-ii",
        l1=CacheConfig("L1", 64 * KIB, ways=2, hit_latency=3),
        l2=CacheConfig("L2", 512 * KIB, ways=8, hit_latency=15),
        llc=CacheConfig("LLC", 6 * MIB, ways=48, hit_latency=45),
        cores=4,
        freq_ghz=2.8,
        dram_latency=220,
        peak_bandwidth_gbs=11.0,
        prefetch_cost=1.0,
        cpi_base=0.6,
        cycles_per_memop=2.2,
    )


def intel_i7_2600k() -> MachineConfig:
    """Intel i7-2600K (Sandy Bridge) — paper Table II row 2.

    32 kB 8-way L1D, 256 kB 8-way L2, 8 MB 16-way shared LLC at 3.4 GHz.
    The hardware prefetcher is a streamer plus adjacent-line prefetcher.
    STREAM measures 15.6 GB/s on this machine (paper §VII-E).
    """
    return MachineConfig(
        name="intel-i7-2600k",
        l1=CacheConfig("L1", 32 * KIB, ways=8, hit_latency=4),
        l2=CacheConfig("L2", 256 * KIB, ways=8, hit_latency=12),
        llc=CacheConfig("LLC", 8 * MIB, ways=16, hit_latency=38),
        cores=4,
        freq_ghz=3.4,
        dram_latency=190,
        peak_bandwidth_gbs=15.6,
        prefetch_cost=1.0,
        cpi_base=0.45,
        cycles_per_memop=1.8,
    )


MACHINES = {
    "amd-phenom-ii": amd_phenom_ii,
    "intel-i7-2600k": intel_i7_2600k,
}


def get_machine(name: str) -> MachineConfig:
    """Look up one of the paper's machines by name.

    Raises :class:`~repro.errors.ConfigError` for unknown names so typos
    in experiment scripts fail loudly.
    """
    try:
        factory = MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise ConfigError(f"unknown machine {name!r}; known: {known}") from None
    return factory()
