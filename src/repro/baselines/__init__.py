"""Comparison baselines (stride-centric profile-guided prefetching)."""

from repro.baselines.stride_centric import stride_centric_plan

__all__ = ["stride_centric_plan"]
