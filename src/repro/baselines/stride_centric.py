"""Stride-centric software prefetching baseline (paper §VI-D, Table I).

Stand-in for the profile-guided stride prefetching of Luk et al. (ICS'02)
and Wu (PLDI'02), as the paper reimplemented it for comparison: insert a
prefetch for **every** load exhibiting a regular stride — no cache model,
no cost/benefit filter, no bypass analysis — with a fixed lookahead
heuristic instead of the latency/recurrence-derived distance.

Consequences reproduced here:

* loads that rarely miss still get prefetches → ~36 % more prefetch
  instructions executed per covered miss (Table I's OH column);
* the fixed lookahead mistimes slow or tight loops → slightly *lower*
  miss coverage despite inserting more prefetches;
* everything fills the whole hierarchy (no ``PREFETCHNTA``) → more LLC
  pollution and off-chip traffic than the resource-efficient scheme.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.core.report import OptimizationReport, PrefetchDecision
from repro.core.strideanalysis import analyze_stride
from repro.sampling.sampler import SamplingResult

__all__ = ["stride_centric_plan"]

#: Fixed lookahead, in loop iterations, used by the heuristic insertion
#: (the classic "prefetch a handful of iterations ahead" rule).
DEFAULT_LOOKAHEAD_ITERATIONS = 16


def stride_centric_plan(
    sampling: SamplingResult,
    machine: MachineConfig,
    lookahead_iterations: int = DEFAULT_LOOKAHEAD_ITERATIONS,
    dominance_threshold: float = 0.70,
    min_samples: int = 4,
) -> OptimizationReport:
    """Build a prefetch plan covering every regularly-strided load."""
    report = OptimizationReport(machine_name=f"{machine.name} (stride-centric)")
    line = machine.line_bytes
    for pc in sampling.strides.sampled_pcs().tolist():
        info = analyze_stride(
            sampling.strides,
            int(pc),
            line_bytes=line,
            dominance_threshold=dominance_threshold,
            min_samples=min_samples,
        )
        if info is None:
            report.skipped[int(pc)] = "irregular-stride"
            continue
        report.strides[int(pc)] = info
        distance = info.dominant_stride * lookahead_iterations
        if abs(distance) < line:
            distance = line if distance > 0 else -line
        report.decisions.append(
            PrefetchDecision(
                pc=int(pc),
                stride=info.dominant_stride,
                distance_bytes=int(distance),
                nta=False,
            )
        )
    return report
