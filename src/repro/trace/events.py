"""Struct-of-arrays memory trace container.

A :class:`MemoryTrace` is the common currency between the workload models,
the samplers, the cache simulators and the prefetch-insertion machinery.
It holds parallel NumPy arrays (program counter, byte address, operation
kind) rather than an array of objects, so that per-event analyses can be
fully vectorised — the idiom recommended by the scientific-Python
performance guides this project follows.

Operation kinds
---------------
``LOAD`` / ``STORE``
    Demand accesses issued by the program.  These are the "memory
    references" counted by reuse distances and recurrences.
``PREFETCH`` / ``PREFETCH_NTA``
    Software prefetches inserted by the optimiser.  ``PREFETCH_NTA``
    models x86 ``PREFETCHNTA``: it fills the L1 but bypasses (minimally
    disturbs) L2 and the shared LLC.  Prefetches are *not* counted as
    memory references for reuse/recurrence purposes, matching how the
    paper's sampler observes only demand accesses.
``STORE_NT``
    A non-temporal (streaming) store — x86 ``MOVNT*``: the write goes
    straight to DRAM through write-combining buffers, without a
    read-for-ownership fill and without caching the line.  A demand
    reference (the program issues it), produced by the optional
    NT-store transformation (an extension beyond the paper).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterator, Sequence

import numpy as np

from repro.errors import TraceError

__all__ = ["MemOp", "MemoryTrace", "TraceBuilder"]


class MemOp(IntEnum):
    """Operation kind of one trace event."""

    LOAD = 0
    STORE = 1
    PREFETCH = 2
    PREFETCH_NTA = 3
    STORE_NT = 4

    @property
    def is_demand(self) -> bool:
        """True for program loads/stores (the sampler's "memory references")."""
        return self in (MemOp.LOAD, MemOp.STORE, MemOp.STORE_NT)

    @property
    def is_prefetch(self) -> bool:
        """True for either flavour of software prefetch."""
        return self in (MemOp.PREFETCH, MemOp.PREFETCH_NTA)

    @property
    def is_store(self) -> bool:
        """True for either flavour of store."""
        return self in (MemOp.STORE, MemOp.STORE_NT)


class MemoryTrace:
    """An immutable sequence of memory events in program order.

    Parameters
    ----------
    pc:
        Integer instruction identifiers (one per static memory
        instruction).  ``int64``.
    addr:
        Byte addresses accessed.  ``int64``; must be non-negative.
    op:
        Operation kinds, values of :class:`MemOp`.  ``uint8``.

    All three arrays must share one length.  Arrays are copied defensively
    unless they already have the right dtype and are C-contiguous, in
    which case they are referenced and marked read-only.
    """

    __slots__ = ("pc", "addr", "op")

    def __init__(
        self,
        pc: np.ndarray | Sequence[int],
        addr: np.ndarray | Sequence[int],
        op: np.ndarray | Sequence[int],
    ) -> None:
        pc_arr = np.ascontiguousarray(pc, dtype=np.int64)
        addr_arr = np.ascontiguousarray(addr, dtype=np.int64)
        op_arr = np.ascontiguousarray(op, dtype=np.uint8)
        if not (len(pc_arr) == len(addr_arr) == len(op_arr)):
            raise TraceError(
                f"array length mismatch: pc={len(pc_arr)} addr={len(addr_arr)} op={len(op_arr)}"
            )
        if pc_arr.ndim != 1:
            raise TraceError("trace arrays must be one-dimensional")
        if len(addr_arr) and addr_arr.min() < 0:
            raise TraceError("addresses must be non-negative")
        if len(op_arr) and op_arr.max() > max(MemOp):
            raise TraceError("op array contains values outside MemOp")
        for arr in (pc_arr, addr_arr, op_arr):
            arr.flags.writeable = False
        self.pc = pc_arr
        self.addr = addr_arr
        self.op = op_arr

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "MemoryTrace":
        """A zero-length trace."""
        return cls(np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.uint8))

    @classmethod
    def loads(cls, pc: Sequence[int], addr: Sequence[int]) -> "MemoryTrace":
        """Build an all-LOAD trace (convenient in tests)."""
        pc_arr = np.asarray(pc, dtype=np.int64)
        return cls(pc_arr, np.asarray(addr, dtype=np.int64), np.zeros(len(pc_arr), np.uint8))

    @classmethod
    def concat(cls, traces: Sequence["MemoryTrace"]) -> "MemoryTrace":
        """Concatenate traces in order."""
        if not traces:
            return cls.empty()
        return cls(
            np.concatenate([t.pc for t in traces]),
            np.concatenate([t.addr for t in traces]),
            np.concatenate([t.op for t in traces]),
        )

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pc)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryTrace):
            return NotImplemented
        return (
            np.array_equal(self.pc, other.pc)
            and np.array_equal(self.addr, other.addr)
            and np.array_equal(self.op, other.op)
        )

    def __hash__(self) -> int:  # pragma: no cover - traces are not dict keys
        return id(self)

    def __repr__(self) -> str:
        return f"MemoryTrace(n={len(self)}, demand={self.n_demand}, prefetch={self.n_prefetch})"

    def __getitem__(self, index: slice) -> "MemoryTrace":
        if not isinstance(index, slice):
            raise TraceError("MemoryTrace supports slice indexing only")
        return MemoryTrace(self.pc[index], self.addr[index], self.op[index])

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    @property
    def demand_mask(self) -> np.ndarray:
        """Boolean mask selecting demand loads and stores (incl. NT)."""
        return (self.op <= MemOp.STORE) | (self.op == MemOp.STORE_NT)

    @property
    def prefetch_mask(self) -> np.ndarray:
        """Boolean mask selecting software prefetches (both kinds)."""
        return (self.op == MemOp.PREFETCH) | (self.op == MemOp.PREFETCH_NTA)

    @property
    def n_demand(self) -> int:
        """Number of demand references."""
        return int(np.count_nonzero(self.demand_mask))

    @property
    def n_prefetch(self) -> int:
        """Number of software prefetch events."""
        return len(self) - self.n_demand

    def line_addr(self, line_bytes: int) -> np.ndarray:
        """Cache-line numbers of every event (``addr // line_bytes``)."""
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise TraceError("line_bytes must be a positive power of two")
        return self.addr >> int(np.log2(line_bytes))

    def demand_only(self) -> "MemoryTrace":
        """A new trace with prefetch events removed."""
        mask = self.demand_mask
        return MemoryTrace(self.pc[mask], self.addr[mask], self.op[mask])

    def select(self, mask: np.ndarray) -> "MemoryTrace":
        """A new trace with only events where ``mask`` is true."""
        if mask.shape != self.pc.shape:
            raise TraceError("mask shape must match trace length")
        return MemoryTrace(self.pc[mask], self.addr[mask], self.op[mask])

    def unique_pcs(self) -> np.ndarray:
        """Sorted array of static instruction ids appearing in the trace."""
        return np.unique(self.pc)

    def footprint_lines(self, line_bytes: int) -> int:
        """Number of distinct cache lines touched by demand accesses."""
        demand = self.demand_mask
        if not demand.any():
            return 0
        return len(np.unique(self.line_addr(line_bytes)[demand]))

    def iter_chunks(self, chunk: int) -> Iterator["MemoryTrace"]:
        """Yield consecutive sub-traces of at most ``chunk`` events."""
        if chunk <= 0:
            raise TraceError("chunk must be positive")
        for start in range(0, len(self), chunk):
            yield self[start : start + chunk]


class TraceBuilder:
    """Incrementally assemble a :class:`MemoryTrace`.

    Appending per-event would defeat vectorisation, so the builder accepts
    whole *blocks* of events (NumPy arrays) and concatenates once at
    :meth:`build` time.
    """

    def __init__(self) -> None:
        self._pc: list[np.ndarray] = []
        self._addr: list[np.ndarray] = []
        self._op: list[np.ndarray] = []

    def append_block(self, pc: np.ndarray, addr: np.ndarray, op: np.ndarray) -> None:
        """Append a block of events (arrays of equal length)."""
        if not (len(pc) == len(addr) == len(op)):
            raise TraceError("block arrays must have equal length")
        self._pc.append(np.asarray(pc, dtype=np.int64))
        self._addr.append(np.asarray(addr, dtype=np.int64))
        self._op.append(np.asarray(op, dtype=np.uint8))

    def append_uniform(self, pc: int, addr: np.ndarray, op: MemOp) -> None:
        """Append a block of events sharing one pc and op."""
        n = len(addr)
        self.append_block(
            np.full(n, pc, dtype=np.int64),
            addr,
            np.full(n, int(op), dtype=np.uint8),
        )

    def append_trace(self, trace: MemoryTrace) -> None:
        """Append an existing trace."""
        self.append_block(trace.pc, trace.addr, trace.op)

    def __len__(self) -> int:
        return sum(len(block) for block in self._pc)

    def build(self) -> MemoryTrace:
        """Materialise the assembled trace."""
        if not self._pc:
            return MemoryTrace.empty()
        return MemoryTrace(
            np.concatenate(self._pc),
            np.concatenate(self._addr),
            np.concatenate(self._op),
        )
