"""Dependency-free array utilities shared by trace and sampling code."""

from __future__ import annotations

import numpy as np

__all__ = ["next_same_value_index"]


def next_same_value_index(values: np.ndarray) -> np.ndarray:
    """For each position, the index of the next equal value (or -1).

    Used with line numbers (reuse sampling, characterisation) and with
    PCs (stride sampling).  Runs in O(n log n) via a stable sort
    grouping equal values in position order.
    """
    n = len(values)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    order = np.lexsort((np.arange(n), values))
    ordered_vals = values[order]
    same_as_next = ordered_vals[:-1] == ordered_vals[1:]
    out[order[:-1][same_as_next]] = order[1:][same_as_next]
    return out
