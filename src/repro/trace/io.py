"""Trace persistence.

Traces are the expensive artefact of a profiling session; saving them
lets the analysis be re-run (different machines, thresholds, ablations)
without re-executing the workload.  The format is a plain NumPy ``.npz``
with the three event arrays plus a format tag — loadable anywhere
without this package.

For *small* traces that must be human-auditable — the shrunk fuzz
repros the conformance harness commits as regression fixtures —
:func:`trace_to_dict` / :func:`trace_from_dict` provide a plain-JSON
codec of the same three arrays.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.trace.events import MemoryTrace

__all__ = ["save_trace", "load_trace", "trace_to_dict", "trace_from_dict"]

_FORMAT = "repro-trace-v1"
_JSON_FORMAT = "repro-trace-json-v1"


def trace_to_dict(trace: MemoryTrace) -> dict:
    """Convert a trace to JSON-serialisable primitives.

    Intended for small fixture traces (every event becomes three JSON
    numbers); use :func:`save_trace` for anything profiling-sized.
    """
    return {
        "format": _JSON_FORMAT,
        "pc": trace.pc.tolist(),
        "addr": trace.addr.tolist(),
        "op": trace.op.tolist(),
    }


def trace_from_dict(data: dict) -> MemoryTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    if data.get("format") != _JSON_FORMAT:
        raise TraceError(f"unsupported trace format {data.get('format')!r}")
    return MemoryTrace(
        np.asarray(data["pc"], dtype=np.int64),
        np.asarray(data["addr"], dtype=np.int64),
        np.asarray(data["op"], dtype=np.uint8),
    )


def save_trace(trace: MemoryTrace, path: str | Path) -> None:
    """Write a trace to ``path`` (compressed ``.npz``)."""
    np.savez_compressed(
        Path(path),
        format=np.array(_FORMAT),
        pc=trace.pc,
        addr=trace.addr,
        op=trace.op,
    )


def load_trace(path: str | Path) -> MemoryTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path) as data:
        try:
            fmt = str(data["format"])
            pc = data["pc"]
            addr = data["addr"]
            op = data["op"]
        except KeyError as exc:
            raise TraceError(f"{path} is not a repro trace file ({exc})") from None
    if fmt != _FORMAT:
        raise TraceError(f"unsupported trace format {fmt!r} in {path}")
    return MemoryTrace(pc, addr, op)
