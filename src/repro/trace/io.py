"""Trace persistence.

Traces are the expensive artefact of a profiling session; saving them
lets the analysis be re-run (different machines, thresholds, ablations)
without re-executing the workload.  The format is a plain NumPy ``.npz``
with the three event arrays plus a format tag — loadable anywhere
without this package.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.trace.events import MemoryTrace

__all__ = ["save_trace", "load_trace"]

_FORMAT = "repro-trace-v1"


def save_trace(trace: MemoryTrace, path: str | Path) -> None:
    """Write a trace to ``path`` (compressed ``.npz``)."""
    np.savez_compressed(
        Path(path),
        format=np.array(_FORMAT),
        pc=trace.pc,
        addr=trace.addr,
        op=trace.op,
    )


def load_trace(path: str | Path) -> MemoryTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path) as data:
        try:
            fmt = str(data["format"])
            pc = data["pc"]
            addr = data["addr"]
            op = data["op"]
        except KeyError as exc:
            raise TraceError(f"{path} is not a repro trace file ({exc})") from None
    if fmt != _FORMAT:
        raise TraceError(f"unsupported trace format {fmt!r} in {path}")
    return MemoryTrace(pc, addr, op)
