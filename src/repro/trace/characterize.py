"""Trace characterisation: the "what is this workload doing" report.

Summarises a memory trace the way a performance engineer would want to
see it before deciding on prefetching: footprint, read/write mix, per-PC
stride regularity, and the reuse-distance distribution that drives all
cache behaviour.  Backed by the same vectorised primitives as the
samplers, so it is cheap even for multi-million-event traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.util import next_same_value_index
from repro.trace.events import MemOp, MemoryTrace

__all__ = ["PCCharacter", "TraceCharacter", "characterize_trace"]


@dataclass(frozen=True)
class PCCharacter:
    """One static instruction's access character."""

    pc: int
    refs: int
    is_store: bool
    footprint_lines: int
    dominant_stride: int
    dominance: float

    @property
    def is_regular(self) -> bool:
        """True when one line-sized stride group dominates (70 % rule)."""
        return self.dominance >= 0.7 and self.dominant_stride != 0


@dataclass(frozen=True)
class TraceCharacter:
    """Whole-trace summary."""

    n_refs: int
    n_prefetches: int
    store_fraction: float
    footprint_bytes: int
    reuse_percentiles: dict[int, float]
    per_pc: list[PCCharacter]

    def regular_fraction(self) -> float:
        """Share of demand references issued by regularly-strided PCs."""
        if self.n_refs == 0:
            return 0.0
        regular = sum(p.refs for p in self.per_pc if p.is_regular)
        return regular / self.n_refs

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"references: {self.n_refs} ({self.store_fraction:.0%} stores, "
            f"{self.n_prefetches} prefetch events)",
            f"footprint: {self.footprint_bytes / (1 << 20):.1f} MiB",
            f"regularly-strided references: {self.regular_fraction():.0%}",
            "reuse distance percentiles (refs): "
            + ", ".join(
                f"p{p}={v:.0f}" if np.isfinite(v) else f"p{p}=inf"
                for p, v in sorted(self.reuse_percentiles.items())
            ),
            "per-instruction:",
        ]
        for p in sorted(self.per_pc, key=lambda x: -x.refs):
            kind = "store" if p.is_store else "load"
            stride = (
                f"stride {p.dominant_stride:+d} ({p.dominance:.0%})"
                if p.dominant_stride
                else "irregular"
            )
            lines.append(
                f"  pc {p.pc:4d} {kind:5s} {p.refs:8d} refs "
                f"{p.footprint_lines:8d} lines  {stride}"
            )
        return "\n".join(lines)


def characterize_trace(
    trace: MemoryTrace,
    line_bytes: int = 64,
    percentiles: tuple[int, ...] = (50, 90, 99),
) -> TraceCharacter:
    """Compute the full characterisation of one trace."""
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise TraceError("line_bytes must be a positive power of two")
    demand = trace.demand_only()
    n = len(demand)
    if n == 0:
        return TraceCharacter(0, trace.n_prefetch, 0.0, 0, {p: float("nan") for p in percentiles}, [])

    lines = demand.line_addr(line_bytes)
    store_mask = (demand.op == MemOp.STORE) | (demand.op == MemOp.STORE_NT)

    # --- reuse distance distribution (exact, vectorised) ---------------
    nxt = next_same_value_index(lines)
    finite = nxt >= 0
    reuse = (nxt[finite] - np.flatnonzero(finite) - 1).astype(np.float64)
    reuse_percentiles = {}
    for p in percentiles:
        if len(reuse) and np.count_nonzero(finite) / n > p / 100.0:
            reuse_percentiles[p] = float(np.percentile(reuse, p))
        else:
            reuse_percentiles[p] = float("inf")

    # --- per-PC character ----------------------------------------------
    per_pc: list[PCCharacter] = []
    order = np.argsort(demand.pc, kind="stable")
    sorted_pc = demand.pc[order]
    bounds = np.flatnonzero(np.diff(sorted_pc)) + 1
    for idx_chunk in np.split(order, bounds):
        pc = int(demand.pc[idx_chunk[0]])
        addrs = demand.addr[np.sort(idx_chunk)]
        pc_lines = addrs >> int(np.log2(line_bytes))
        strides = np.diff(addrs)
        if len(strides):
            groups = np.floor_divide(strides, line_bytes)
            uniq, counts = np.unique(groups, return_counts=True)
            best = int(np.argmax(counts))
            dominance = counts[best] / len(strides)
            in_group = groups == uniq[best]
            vals, val_counts = np.unique(strides[in_group], return_counts=True)
            dominant = int(vals[np.argmax(val_counts)])
        else:
            dominance, dominant = 0.0, 0
        per_pc.append(
            PCCharacter(
                pc=pc,
                refs=len(idx_chunk),
                is_store=bool(store_mask[idx_chunk[0]]),
                footprint_lines=len(np.unique(pc_lines)),
                dominant_stride=dominant,
                dominance=float(dominance),
            )
        )

    return TraceCharacter(
        n_refs=n,
        n_prefetches=trace.n_prefetch,
        store_fraction=float(np.mean(store_mask)),
        footprint_bytes=len(np.unique(lines)) * line_bytes,
        reuse_percentiles=reuse_percentiles,
        per_pc=per_pc,
    )
