"""Memory-trace containers and synthetic access-pattern generators."""

from repro.trace.characterize import PCCharacter, TraceCharacter, characterize_trace
from repro.trace.events import MemOp, MemoryTrace, TraceBuilder
from repro.trace.interleave import interleave_round_robin, interleave_weighted
from repro.trace.io import load_trace, save_trace
from repro.trace.synthesis import (
    burst_strided_pattern,
    chase_pattern,
    gather_pattern,
    random_pattern,
    stream_pattern,
    strided_pattern,
    sweep_pattern,
)

__all__ = [
    "MemOp",
    "MemoryTrace",
    "TraceBuilder",
    "stream_pattern",
    "strided_pattern",
    "chase_pattern",
    "random_pattern",
    "gather_pattern",
    "burst_strided_pattern",
    "sweep_pattern",
    "interleave_round_robin",
    "interleave_weighted",
    "save_trace",
    "load_trace",
    "characterize_trace",
    "TraceCharacter",
    "PCCharacter",
]
