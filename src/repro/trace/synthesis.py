"""Vectorised synthetic address-pattern generators.

These are the primitive building blocks the workload models compose into
benchmark-like memory behaviour.  Every generator returns a 1-D ``int64``
array of byte addresses computed without Python-level per-event loops.

Patterns
--------
``stream_pattern``
    Pure sequential streaming (libquantum-, lbm-like inner loops).
``strided_pattern``
    Constant-stride access with optional wrap-around, covering both unit
    and large strides (leslie3d, GemsFDTD, milc array sweeps).
``chase_pattern``
    Pointer chasing along a random permutation cycle — irregular,
    stride-free traffic (omnetpp, xalan, mcf's list walks).
``random_pattern``
    Uniform random accesses inside a region.
``gather_pattern``
    Indirect gather with tunable locality via a bounded random walk.
``burst_strided_pattern``
    Many short strided bursts at random bases — the access shape that
    "tricks" hardware stride prefetchers on cigar (paper §VII-A).
``csr_pattern``
    CSR edge-array traversal: variable-length sequential runs at
    scattered row offsets (sparse matrix / adjacency sweeps).
``bfs_frontier_pattern``
    Breadth-first visitation order over a seeded random graph.
``hash_probe_pattern``
    Uniform-hashed bucket starts with short linear-probe runs.
``index_array_values`` / ``indexed_pattern``
    The ``A[B[i]]`` pair: a seeded index array (program *input data*,
    reconstructible from its seed alone) and the gather it drives.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import TraceError

__all__ = [
    "stream_pattern",
    "strided_pattern",
    "chase_pattern",
    "random_pattern",
    "gather_pattern",
    "burst_strided_pattern",
    "csr_pattern",
    "bfs_frontier_pattern",
    "hash_probe_pattern",
    "index_array_values",
    "indexed_pattern",
]


def _check_count(n: int) -> None:
    if n < 0:
        raise TraceError("pattern length must be non-negative")


def stream_pattern(base: int, n: int, elem_bytes: int = 8) -> np.ndarray:
    """Sequential addresses ``base, base+e, base+2e, ...``."""
    _check_count(n)
    if elem_bytes <= 0:
        raise TraceError("elem_bytes must be positive")
    return base + elem_bytes * np.arange(n, dtype=np.int64)


def strided_pattern(
    base: int,
    n: int,
    stride_bytes: int,
    wrap_bytes: int | None = None,
) -> np.ndarray:
    """Constant-stride addresses, optionally wrapping inside a region.

    ``wrap_bytes`` bounds the touched region: offsets are taken modulo
    ``wrap_bytes`` so long runs re-sweep the same array, creating reuse at
    region granularity (how dense numeric kernels revisit their data).
    """
    _check_count(n)
    if stride_bytes == 0:
        raise TraceError("stride_bytes must be non-zero")
    offsets = stride_bytes * np.arange(n, dtype=np.int64)
    if wrap_bytes is not None:
        if wrap_bytes <= 0:
            raise TraceError("wrap_bytes must be positive")
        offsets %= wrap_bytes
    return base + offsets


def chase_pattern(
    rng: np.random.Generator,
    base: int,
    n_nodes: int,
    n: int,
    node_bytes: int = 64,
) -> np.ndarray:
    """Pointer-chase addresses along one random permutation cycle.

    A random visiting order over ``n_nodes`` nodes is fixed once, then
    followed (wrapping) for ``n`` steps — exactly the address stream of a
    linked-list traversal whose nodes were shuffled in memory.  The
    resulting stride distribution has no dominant group, so stride
    prefetching cannot cover it.
    """
    _check_count(n)
    if n_nodes <= 0:
        raise TraceError("n_nodes must be positive")
    if node_bytes <= 0:
        raise TraceError("node_bytes must be positive")
    order = rng.permutation(n_nodes).astype(np.int64)
    idx = order[np.arange(n, dtype=np.int64) % n_nodes]
    return base + idx * node_bytes


def random_pattern(
    rng: np.random.Generator,
    base: int,
    region_bytes: int,
    n: int,
    align: int = 8,
) -> np.ndarray:
    """Uniform random addresses inside ``[base, base+region_bytes)``."""
    _check_count(n)
    if region_bytes <= 0:
        raise TraceError("region_bytes must be positive")
    if align <= 0:
        raise TraceError("align must be positive")
    slots = max(1, region_bytes // align)
    idx = rng.integers(0, slots, size=n, dtype=np.int64)
    return base + idx * align


def gather_pattern(
    rng: np.random.Generator,
    base: int,
    region_bytes: int,
    n: int,
    locality: float = 0.0,
    elem_bytes: int = 8,
) -> np.ndarray:
    """Indirect gather with tunable spatial locality.

    ``locality`` in ``[0, 1)`` blends a bounded random walk (local) with
    uniform jumps (global): 0 is fully random, values near 1 mostly step
    to nearby elements.  Models index-array driven accesses (soplex's
    sparse matrices, astar's grid neighbourhoods).
    """
    _check_count(n)
    if not 0.0 <= locality < 1.0:
        raise TraceError("locality must be in [0, 1)")
    if region_bytes <= 0 or elem_bytes <= 0:
        raise TraceError("region_bytes and elem_bytes must be positive")
    slots = max(1, region_bytes // elem_bytes)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    jumps = rng.integers(0, slots, size=n, dtype=np.int64)
    steps = rng.integers(-4, 5, size=n, dtype=np.int64)
    local_mask = rng.random(n) < locality
    # A vectorised blend: positions follow the cumulative local walk but
    # are re-anchored at every global jump.  Computing "last jump before
    # i" with maximum.accumulate keeps this loop-free.
    event_idx = np.arange(n, dtype=np.int64)
    jump_idx = np.where(~local_mask, event_idx, -1)
    np.maximum.accumulate(jump_idx, out=jump_idx)
    first = jump_idx < 0
    jump_idx[first] = 0
    walk = np.cumsum(np.where(local_mask, steps, 0), dtype=np.int64)
    anchor_val = jumps[jump_idx]
    anchor_val[first] = jumps[0]
    rel_walk = walk - walk[jump_idx]
    pos = (anchor_val + rel_walk) % slots
    return base + pos * elem_bytes


def sweep_pattern(
    base: int,
    n: int,
    pass_bytes: tuple[int, ...],
    stride_bytes: int = 64,
) -> np.ndarray:
    """Nested re-sweeps of cycling lengths over one region.

    Pass *j* strides over ``[base, base + pass_bytes[j mod k])``; passes
    share the region's start, so short passes re-touch data long passes
    covered.  The resulting reuse-distance distribution has one mode per
    pass length — choosing lengths that straddle the LLC size creates
    data that is evicted by co-resident pollution but retained when the
    polluting streams bypass the cache, the retention mechanism behind
    the paper's below-baseline traffic results (Fig. 5).
    """
    _check_count(n)
    if not pass_bytes:
        raise TraceError("pass_bytes must be non-empty")
    if stride_bytes <= 0:
        raise TraceError("stride_bytes must be positive")
    if any(p < stride_bytes for p in pass_bytes):
        raise TraceError("every pass must cover at least one stride")
    lengths = [p // stride_bytes for p in pass_bytes]
    chunks: list[np.ndarray] = []
    total = 0
    j = 0
    while total < n:
        length = lengths[j % len(lengths)]
        chunks.append(np.arange(length, dtype=np.int64))
        total += length
        j += 1
    offsets = np.concatenate(chunks)[:n]
    return base + offsets * stride_bytes


def burst_strided_pattern(
    rng: np.random.Generator,
    base: int,
    region_bytes: int,
    n: int,
    burst_len: int,
    stride_bytes: int = 8,
) -> np.ndarray:
    """Short strided bursts at random bases.

    Each burst of ``burst_len`` accesses walks with a constant stride from
    a random start, then jumps.  Bursts are long enough to *train* a
    hardware stride prefetcher yet end before its prefetches become
    useful, which is why the AMD prefetcher slows cigar down by >11 %
    (paper §VII-A).  Software prefetching with a correct, short distance
    still covers the intra-burst misses.
    """
    _check_count(n)
    if burst_len <= 0:
        raise TraceError("burst_len must be positive")
    if region_bytes <= burst_len * abs(stride_bytes):
        raise TraceError("region_bytes too small for burst extent")
    n_bursts = -(-n // burst_len)
    span = region_bytes - burst_len * abs(stride_bytes)
    starts = rng.integers(0, max(1, span), size=n_bursts, dtype=np.int64)
    within = stride_bytes * np.arange(burst_len, dtype=np.int64)
    addrs = (starts[:, None] + within[None, :]).reshape(-1)[:n]
    return base + addrs


def _expand_runs(starts: np.ndarray, lengths: np.ndarray, n: int) -> np.ndarray:
    """Element positions of variable-length sequential runs, truncated.

    Run *k* contributes ``starts[k], starts[k]+1, ...`` for ``lengths[k]``
    elements; runs are concatenated (cycling if they cover fewer than
    ``n`` elements) and the first ``n`` positions returned — all without
    per-element Python loops.
    """
    total = int(lengths.sum())
    if total <= 0:
        raise TraceError("runs must cover at least one element")
    reps = -(-n // total)
    if reps > 1:
        starts = np.tile(starts, reps)
        lengths = np.tile(lengths, reps)
    ends = np.cumsum(lengths)
    run_id = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
    offsets = np.arange(len(run_id), dtype=np.int64) - (ends - lengths)[run_id]
    return (starts[run_id] + offsets)[:n]


def csr_pattern(
    rng: np.random.Generator,
    base: int,
    n_nodes: int,
    avg_degree: int,
    n: int,
    elem_bytes: int = 8,
) -> np.ndarray:
    """CSR edge-array traversal in a shuffled node order.

    A compressed-sparse-row graph is fixed once: node degrees are drawn
    geometrically (mean ``avg_degree``) and row pointers are their prefix
    sums.  Nodes are then visited in a random permutation, each visit
    scanning its edge run sequentially — short sequential runs (the
    degree) at irregular row offsets, the signature shape of sparse
    matvec and adjacency sweeps.  Stride prefetchers train on the runs
    but overshoot every row boundary.
    """
    _check_count(n)
    if n_nodes <= 0 or avg_degree <= 0:
        raise TraceError("n_nodes and avg_degree must be positive")
    if elem_bytes <= 0:
        raise TraceError("elem_bytes must be positive")
    degrees = rng.geometric(1.0 / avg_degree, size=n_nodes).astype(np.int64)
    row_ptr = np.concatenate(([0], np.cumsum(degrees)))
    order = rng.permutation(n_nodes).astype(np.int64)
    pos = _expand_runs(row_ptr[order], degrees[order], n)
    return base + pos * elem_bytes


def bfs_frontier_pattern(
    rng: np.random.Generator,
    base: int,
    n_nodes: int,
    avg_degree: int,
    n: int,
    node_bytes: int = 64,
) -> np.ndarray:
    """Node-data addresses in breadth-first visitation order.

    A random directed graph (``avg_degree`` out-edges per node) is fixed
    once; a BFS from node 0 — restarting at the lowest unvisited node for
    disconnected components — yields the frontier-expansion visit order,
    which is then followed (wrapping) for ``n`` accesses.  Early levels
    visit hub-adjacent nodes in near-random order, so the stream has no
    dominant stride yet strong graph-structured reuse.
    """
    _check_count(n)
    if n_nodes <= 0 or avg_degree <= 0:
        raise TraceError("n_nodes and avg_degree must be positive")
    if node_bytes <= 0:
        raise TraceError("node_bytes must be positive")
    nbrs = rng.integers(0, n_nodes, size=(n_nodes, avg_degree), dtype=np.int64)
    visited = np.zeros(n_nodes, dtype=bool)
    order = np.empty(n_nodes, dtype=np.int64)
    out = 0
    next_root = 0
    queue: deque[int] = deque()
    while out < n_nodes:
        while next_root < n_nodes and visited[next_root]:
            next_root += 1
        visited[next_root] = True
        queue.append(next_root)
        while queue:
            u = queue.popleft()
            order[out] = u
            out += 1
            for v in nbrs[u]:
                if not visited[v]:
                    visited[v] = True
                    queue.append(int(v))
    idx = order[np.arange(n, dtype=np.int64) % n_nodes]
    return base + idx * node_bytes


def hash_probe_pattern(
    rng: np.random.Generator,
    base: int,
    n_buckets: int,
    n: int,
    avg_probe: int = 2,
    bucket_bytes: int = 64,
) -> np.ndarray:
    """Open-addressing hash probes: random bucket, short linear run.

    Each probe hashes to a uniform bucket and walks ``~avg_probe``
    consecutive buckets (geometric run lengths, wrapping modulo the
    table) — the hash-join / hash-aggregation access shape: random at
    table granularity, sequential within a probe.
    """
    _check_count(n)
    if n_buckets <= 0 or avg_probe <= 0:
        raise TraceError("n_buckets and avg_probe must be positive")
    if bucket_bytes <= 0:
        raise TraceError("bucket_bytes must be positive")
    n_probes = max(1, -(-n // avg_probe))
    starts = rng.integers(0, n_buckets, size=n_probes, dtype=np.int64)
    lengths = rng.geometric(1.0 / avg_probe, size=n_probes).astype(np.int64)
    pos = _expand_runs(starts, lengths, n) % n_buckets
    return base + pos * bucket_bytes


def index_array_values(
    index_seed: int, n_indices: int, n_slots: int
) -> np.ndarray:
    """The contents of a seeded ``B`` index array for ``A[B[i]]``.

    The index array is program *input data*: it is a pure function of
    ``index_seed``, independent of any execution seed, so every consumer
    — the interpreter generating the demand stream, and a hardware
    observer modelling reads of filled ``B`` lines — reconstructs the
    identical values.
    """
    if n_indices <= 0:
        raise TraceError("n_indices must be positive")
    if n_slots <= 0:
        raise TraceError("n_slots must be positive")
    rng = np.random.default_rng(np.random.SeedSequence(index_seed))
    return rng.integers(0, n_slots, size=n_indices, dtype=np.int64)


def indexed_pattern(
    base: int,
    n: int,
    values: np.ndarray,
    elem_bytes: int = 8,
) -> np.ndarray:
    """Gather addresses ``base + values[i mod len] * elem_bytes``.

    The data-dependent half of the ``A[B[i]]`` pair; ``values`` comes
    from :func:`index_array_values` and is cycled when the trip count
    exceeds the index array length.
    """
    _check_count(n)
    if len(values) == 0:
        raise TraceError("values must be non-empty")
    if elem_bytes <= 0:
        raise TraceError("elem_bytes must be positive")
    idx = np.asarray(values, dtype=np.int64)[np.arange(n, dtype=np.int64) % len(values)]
    return base + idx * elem_bytes
