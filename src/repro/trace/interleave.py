"""Interleaving of per-core traces into one multicore event stream.

The direct multicore simulator consumes a single stream of
``(core, event)`` pairs.  Round-robin interleaving models cores that
issue memory operations at the same rate; weighted interleaving models
cores with different memory intensities (a core whose program performs
memory operations twice as often gets twice the slots).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.events import MemoryTrace

__all__ = ["interleave_round_robin", "interleave_weighted"]


def interleave_round_robin(
    traces: Sequence[MemoryTrace],
) -> tuple[MemoryTrace, np.ndarray]:
    """Merge traces one event per core per round.

    Cores that exhaust their trace simply drop out of later rounds (short
    programs finish early, as in the paper's mixes where long-running
    benchmarks see less contention).  Returns the merged trace and the
    per-event core index.
    """
    return interleave_weighted(traces, [1.0] * len(traces))


def interleave_weighted(
    traces: Sequence[MemoryTrace],
    weights: Sequence[float],
) -> tuple[MemoryTrace, np.ndarray]:
    """Merge traces proportionally to ``weights``.

    Each core's events are assigned virtual timestamps ``i / weight`` and
    the merged stream is the stable sort by timestamp, giving a
    deterministic proportional-share interleaving without a Python-level
    merge loop.
    """
    if not traces:
        return MemoryTrace.empty(), np.empty(0, dtype=np.int64)
    if len(weights) != len(traces):
        raise TraceError("one weight per trace required")
    if any(w <= 0 for w in weights):
        raise TraceError("weights must be positive")

    times = []
    cores = []
    for core, (trace, weight) in enumerate(zip(traces, weights)):
        n = len(trace)
        times.append(np.arange(n, dtype=np.float64) / float(weight))
        cores.append(np.full(n, core, dtype=np.int64))
    all_times = np.concatenate(times)
    all_cores = np.concatenate(cores)
    order = np.argsort(all_times, kind="stable")

    merged = MemoryTrace(
        np.concatenate([t.pc for t in traces])[order],
        np.concatenate([t.addr for t in traces])[order],
        np.concatenate([t.op for t in traces])[order],
    )
    return merged, all_cores[order]
