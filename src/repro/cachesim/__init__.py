"""Cache simulation substrate: LRU caches, hierarchies, bandwidth model."""

from repro.cachesim.backend import (
    BACKENDS,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.cachesim.bandwidth import BandwidthModel
from repro.cachesim.fastlru import FastLRUCache
from repro.cachesim.functional import FunctionalCacheSim, simulate_miss_ratios
from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.lru import (
    FLAG_DIRTY,
    FLAG_HW_PREFETCH,
    FLAG_NTA,
    FLAG_REFERENCED,
    FLAG_SW_PREFETCH,
    LRUCache,
)
from repro.cachesim.options import (
    SimOptions,
    get_default_options,
    resolve_options,
    set_default_options,
)
from repro.cachesim.stats import LevelStats, PCStats, RunStats

__all__ = [
    "BACKENDS",
    "BandwidthModel",
    "CacheHierarchy",
    "FastLRUCache",
    "FunctionalCacheSim",
    "simulate_miss_ratios",
    "LRUCache",
    "LevelStats",
    "PCStats",
    "RunStats",
    "SimOptions",
    "get_default_backend",
    "get_default_options",
    "resolve_backend",
    "resolve_options",
    "set_default_backend",
    "set_default_options",
    "FLAG_DIRTY",
    "FLAG_HW_PREFETCH",
    "FLAG_NTA",
    "FLAG_REFERENCED",
    "FLAG_SW_PREFETCH",
]
