"""Cache simulation substrate: LRU caches, hierarchies, bandwidth model."""

from repro.cachesim.bandwidth import BandwidthModel
from repro.cachesim.fastlru import FastLRUCache
from repro.cachesim.functional import FunctionalCacheSim, simulate_miss_ratios
from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.lru import (
    FLAG_DIRTY,
    FLAG_HW_PREFETCH,
    FLAG_NTA,
    FLAG_REFERENCED,
    FLAG_SW_PREFETCH,
    LRUCache,
)
from repro.cachesim.options import (
    BACKENDS,
    SimOptions,
    get_default_options,
    resolve_options,
    set_default_options,
)
from repro.cachesim.stats import LevelStats, PCStats, RunStats

__all__ = [
    "BACKENDS",
    "BandwidthModel",
    "CacheHierarchy",
    "FastLRUCache",
    "FunctionalCacheSim",
    "simulate_miss_ratios",
    "LRUCache",
    "LevelStats",
    "PCStats",
    "RunStats",
    "SimOptions",
    "get_default_options",
    "resolve_options",
    "set_default_options",
    "FLAG_DIRTY",
    "FLAG_HW_PREFETCH",
    "FLAG_NTA",
    "FLAG_REFERENCED",
    "FLAG_SW_PREFETCH",
]


#: The repro.cachesim.backend shim module finished its deprecation
#: cycle (the SimOptions migration); its helpers now raise with a
#: pointer at the replacement instead of silently missing.
_REMOVED = {
    "get_default_backend": "get_default_options().backend",
    "set_default_backend": "set_default_options(SimOptions(backend=...))",
    "resolve_backend": "resolve_options(backend).backend",
}


def __getattr__(name: str):
    if name in _REMOVED:
        from repro.errors import ExperimentError

        raise ExperimentError(
            f"cachesim.{name} was removed with the repro.cachesim.backend "
            f"shim; use repro.cachesim.options.{_REMOVED[name]} (or "
            "configure(sim_options=SimOptions(...)) via repro.api) instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
