"""Simulation backend selection (legacy shim).

Two interchangeable cache-simulation backends exist (see
``docs/performance.md``):

* ``"reference"`` — the original dict-based per-event simulators
  (:class:`~repro.cachesim.lru.LRUCache` driven one access at a time).
  Slow, simple, and the oracle the fast backend is verified against.
* ``"fast"`` — the array-native backend
  (:class:`~repro.cachesim.fastlru.FastLRUCache` batch kernels for the
  functional simulator and the batched / chunked demand paths of
  :class:`~repro.cachesim.hierarchy.CacheHierarchy`).  Bit-identical
  statistics, several times faster.

The single source of truth for the selection — including the documented
precedence (explicit arg > spec > process default) — now lives in
:mod:`repro.cachesim.options` as :class:`~repro.cachesim.options.SimOptions`.
The helpers below are kept as thin compatibility wrappers over that
module; new code should prefer ``SimOptions`` via ``repro.api``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cachesim import options as _options
from repro.cachesim.options import BACKENDS, validate_backend

__all__ = [
    "BACKENDS",
    "validate_backend",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
]


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one.

    Legacy wrapper over :func:`repro.cachesim.options.set_default_options`;
    other default options are preserved.
    """
    if name not in BACKENDS:
        from repro.errors import ConfigError

        raise ConfigError(f"unknown sim backend {name!r}; valid: {BACKENDS}")
    current = _options.get_default_options()
    previous = _options.set_default_options(replace(current, backend=name))
    return previous.backend or "reference"


def get_default_backend() -> str:
    """The process-wide default backend name."""
    return _options.get_default_options().backend or "reference"


def resolve_backend(explicit: str | None = None) -> str:
    """Resolve an optional explicit/config choice against the default."""
    validate_backend(explicit)
    if explicit is None:
        return get_default_backend()
    return explicit
