"""Simulation backend selection.

Two interchangeable cache-simulation backends exist (see
``docs/performance.md``):

* ``"reference"`` — the original dict-based per-event simulators
  (:class:`~repro.cachesim.lru.LRUCache` driven one access at a time).
  Slow, simple, and the oracle the fast backend is verified against.
* ``"fast"`` — the array-native backend
  (:class:`~repro.cachesim.fastlru.FastLRUCache` batch kernel for the
  functional simulator, plus the chunked demand path of
  :class:`~repro.cachesim.hierarchy.CacheHierarchy`).  Bit-identical
  statistics, several times faster.

The choice is resolved per simulator from, in priority order:

1. an explicit argument (``FunctionalCacheSim(cfg, backend="fast")``);
2. the config object (``CacheConfig.backend`` /
   ``MachineConfig.sim_backend``) when not ``None``;
3. the process-wide default set by :func:`set_default_backend` — wired
   to ``repro.api.configure(sim_backend=...)`` and the CLI's
   ``--sim-backend`` flag, and shipped to engine worker processes.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = [
    "BACKENDS",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
]

#: Valid backend names.
BACKENDS = ("reference", "fast")

_DEFAULT: str = "reference"


def validate_backend(name: str | None) -> None:
    """Raise :class:`~repro.errors.ConfigError` for unknown backend names.

    ``None`` is accepted and means "defer to the process default".
    """
    if name is not None and name not in BACKENDS:
        raise ConfigError(f"unknown sim backend {name!r}; valid: {BACKENDS}")


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _DEFAULT
    if name not in BACKENDS:
        raise ConfigError(f"unknown sim backend {name!r}; valid: {BACKENDS}")
    previous = _DEFAULT
    _DEFAULT = name
    return previous


def get_default_backend() -> str:
    """The process-wide default backend name."""
    return _DEFAULT


def resolve_backend(explicit: str | None = None) -> str:
    """Resolve an optional explicit/config choice against the default."""
    if explicit is None:
        return _DEFAULT
    if explicit not in BACKENDS:
        raise ConfigError(f"unknown sim backend {explicit!r}; valid: {BACKENDS}")
    return explicit
