"""Single-core three-level cache hierarchy with timing.

This is the workhorse simulator behind the single-benchmark experiments
(paper Figs. 4–6).  It models:

* L1/L2/LLC set-associative LRU caches (mostly-inclusive fill policy);
* demand access timing — ``Δ`` cycles per memory operation plus the
  service latency of the level that provides the data, divided by a
  memory-level-parallelism factor (dependent pointer chases expose the
  full latency, streaming code overlaps several misses);
* software prefetches with *in-flight tracking*: a prefetch issued too
  close to its demand access only hides part of the latency (late
  prefetch), which is how the paper's prefetch-distance formula is
  exercised end to end;
* ``PREFETCHNTA`` semantics: the line is installed in L1 only and is
  dropped on eviction, never occupying L2/LLC — the cache-bypassing
  mechanism of paper §VI-B;
* a hardware prefetcher model observing the L1 miss stream and filling
  L2/LLC speculatively;
* off-chip traffic and bandwidth-dependent DRAM latency through
  :class:`~repro.cachesim.bandwidth.BandwidthModel`.

The per-event loop is deliberately written with localised variables and
O(1) dict-based cache operations; simulating a 500k-event trace through
all three levels takes on the order of a second.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cachesim.bandwidth import BandwidthModel
from repro.cachesim.fastlru import (
    OP_DEMAND,
    OP_FILL,
    OP_PROBE,
    OP_TOUCH,
    FastLRUCache,
)
from repro.cachesim.lru import (
    FLAG_DIRTY,
    FLAG_HW_PREFETCH,
    FLAG_NTA,
    FLAG_REFERENCED,
    FLAG_SW_PREFETCH,
    LRUCache,
)
from repro.cachesim.options import SimOptions, resolve_options
from repro.cachesim.stats import RunStats
from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.hwpref.base import HardwarePrefetcher, NullPrefetcher
from repro.trace.events import MemOp, MemoryTrace

__all__ = ["CacheHierarchy"]

#: Demand runs shorter than this are replayed through the scalar event
#: handlers: the batched pipeline's fixed per-call cost (a dozen array
#: allocations and sorts) outweighs its throughput below this length.
MIN_BATCH_RUN = 48

#: Stream minor key of the demand access itself; hardware-prefetch
#: requests use their per-event issue index (< this) so they sort first,
#: and the L1-victim touch sorts after the demand at ``+ 1``.
_MINOR_DA = 1 << 20

#: Timing-op sequence key of the demand access within one event.
_SEQ_DA = 1 << 22


class CacheHierarchy:
    """One core's private L1/L2 plus an (optionally shared) LLC.

    Parameters
    ----------
    machine:
        Machine description (geometry, latencies, Δ, α).
    prefetcher:
        Hardware prefetcher model; defaults to disabled
        (:class:`~repro.hwpref.base.NullPrefetcher`), the paper's baseline.
    bandwidth:
        Shared memory-controller model.  Supply one instance to several
        hierarchies to model cores contending for off-chip bandwidth; by
        default a private model is created.
    llc:
        Pass a pre-built LLC to share it between hierarchies (multicore
        mode); by default a private LLC is created.
    options:
        :class:`~repro.cachesim.options.SimOptions` (or a bare backend
        name) overriding ``machine.sim_backend`` and the process
        default.  Precedence: explicit arg > spec > process default.
    """

    def __init__(
        self,
        machine: MachineConfig,
        prefetcher: HardwarePrefetcher | None = None,
        bandwidth: BandwidthModel | None = None,
        llc: LRUCache | None = None,
        options: SimOptions | str | None = None,
    ) -> None:
        self.machine = machine
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
        self._explicit_options = options
        opts = resolve_options(options, machine.sim_backend)
        # The batched whole-hierarchy path needs array-backed levels; it
        # is only worth building them when the attached prefetcher can be
        # observed in batch (throttled prefetchers cannot — they sample
        # time-varying bandwidth utilisation per access) and the LLC is
        # private (a shared LLC interleaves accesses from other cores).
        batch_capable = (
            opts.backend == "fast"
            and opts.batch_hierarchy
            and llc is None
            and self.prefetcher.batch_safe
        )
        cache_cls = FastLRUCache if batch_capable else LRUCache
        self.l1 = cache_cls(machine.l1)
        self.l2 = cache_cls(machine.l2)
        self.llc = llc if llc is not None else cache_cls(machine.llc)
        self.bandwidth = (
            bandwidth if bandwidth is not None else BandwidthModel(machine.bytes_per_cycle())
        )
        self.now: float = 0.0
        self.last_run_path: str | None = None
        self._inflight: dict[int, float] = {}
        self._line_shift = machine.line_bytes.bit_length() - 1
        # write-combining buffer for non-temporal stores (4 entries,
        # like x86 WC buffers): consecutive NT writes to the same line
        # merge into one off-chip transfer.
        self._wc_buffer: list[int] = []

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def run(
        self,
        trace: MemoryTrace,
        work_per_memop: float = 2.0,
        mlp: float = 2.0,
        stats: RunStats | None = None,
    ) -> RunStats:
        """Simulate ``trace`` to completion and return statistics.

        Parameters
        ----------
        trace:
            Events in program order.
        work_per_memop:
            Average non-memory instructions executed per memory
            operation; charged at the machine's base CPI.
        mlp:
            Memory-level parallelism — how many outstanding misses the
            core overlaps.  Miss stalls are divided by this factor.
        stats:
            Accumulate into an existing :class:`RunStats` (used when a
            run is split into chunks); a fresh one is created otherwise.
        """
        if mlp < 1.0:
            raise SimulationError("mlp must be >= 1")
        if work_per_memop < 0.0:
            raise SimulationError("work_per_memop must be non-negative")
        if stats is None:
            stats = RunStats(line_bytes=self.machine.line_bytes)
        opts = resolve_options(self._explicit_options, self.machine.sim_backend)
        backend = opts.backend
        if backend == "fast":
            if (
                opts.batch_hierarchy
                and isinstance(self.l1, FastLRUCache)
                and self.prefetcher.batch_safe
            ):
                path = "batch"
            elif isinstance(self.l1, LRUCache):
                path = "chunked"
            else:
                # Array-backed caches but a prefetcher that turned
                # batch-unsafe after construction: fall back to the
                # scalar loop (correct on either cache class).
                path = "scalar"
        else:
            path = "scalar"
        self.last_run_path = path
        with obs.span(
            "cachesim.run",
            machine=self.machine.name,
            events=len(trace),
            backend=backend,
            path=path,
        ) as run_span:
            if path == "batch":
                self._run_events_batch(trace, work_per_memop, mlp, stats)
            elif path == "chunked":
                self._run_events_fast(trace, work_per_memop, mlp, stats)
            else:
                self._run_events(trace, work_per_memop, mlp, stats)
            if obs.enabled():
                metrics = obs.metrics()
                metrics.counter(f"sim.hierarchy.events.{backend}").inc(len(trace))
                metrics.counter(f"sim.hierarchy.path.{path}").inc()
            run_span.set(cycles=stats.cycles)
        return stats

    def _run_events(
        self,
        trace: MemoryTrace,
        work_per_memop: float,
        mlp: float,
        stats: RunStats,
    ) -> None:
        shift = self._line_shift
        demand_cost = (
            self.machine.cycles_per_memop + self.machine.cpi_base * work_per_memop
        )
        pcs = trace.pc
        addrs = trace.addr
        ops = trace.op
        store_op = int(MemOp.STORE)
        nta_op = int(MemOp.PREFETCH_NTA)
        store_nt_op = int(MemOp.STORE_NT)

        n_demand = 0
        n_prefetch = 0
        for i in range(len(trace)):
            op = ops[i]
            addr = int(addrs[i])
            line = addr >> shift
            if op <= store_op:
                n_demand += 1
                self._demand_access(int(pcs[i]), addr, line, op == store_op, demand_cost, mlp, stats)
            elif op == store_nt_op:
                n_demand += 1
                self._nt_store(int(pcs[i]), line, demand_cost, stats)
            else:
                n_prefetch += 1
                self._sw_prefetch(line, op == nta_op, stats)

        stats.instructions += int(n_demand * (1.0 + work_per_memop)) + n_prefetch
        stats.cycles = self.now

    def _run_events_fast(
        self,
        trace: MemoryTrace,
        work_per_memop: float,
        mlp: float,
        stats: RunStats,
    ) -> None:
        """Chunked fast event loop (``sim_backend="fast"``).

        The trace is staged chunk by chunk into plain Python lists (one
        vectorised line-number conversion, no per-event NumPy scalar
        extraction) and the dominant L1 demand path is inlined against
        the set dicts with every attribute hoisted into locals.  Only
        the rare events — L1 misses, software prefetches, NT stores and
        hardware-prefetcher observation — fall back to the exact same
        methods the reference loop uses, with ``self.now`` synced around
        the call, so timing and statistics stay bit-identical (enforced
        by ``tests/test_sim_backend_diff.py``).
        """
        shift = self._line_shift
        demand_cost = (
            self.machine.cycles_per_memop + self.machine.cpi_base * work_per_memop
        )
        store_op = int(MemOp.STORE)
        nta_op = int(MemOp.PREFETCH_NTA)
        store_nt_op = int(MemOp.STORE_NT)
        lines_arr = trace.addr >> shift

        l1_sets = self.l1._sets
        l1_mask = self.l1._set_mask
        inflight = self._inflight
        null_pf = isinstance(self.prefetcher, NullPrefetcher)
        hw_observe = self._hw_observe
        demand_miss = self._demand_miss
        pc_acc = stats.pc_l1.accesses
        pc_miss = stats.pc_l1.misses
        ref_flag = FLAG_REFERENCED
        dirty_flag = FLAG_DIRTY
        sw_flag = FLAG_SW_PREFETCH

        n_demand = 0
        n_prefetch = 0
        l1_accesses = 0
        l1_misses = 0
        sw_useful = 0
        sw_late = 0
        now = self.now
        chunk = 1 << 16
        for start in range(0, len(trace), chunk):
            end = start + chunk
            ops_c = trace.op[start:end].tolist()
            pcs_c = trace.pc[start:end].tolist()
            lines_c = lines_arr[start:end].tolist()
            addrs_c = trace.addr[start:end].tolist() if not null_pf else None
            for j, op in enumerate(ops_c):
                line = lines_c[j]
                if op <= store_op:
                    n_demand += 1
                    now += demand_cost
                    l1_accesses += 1
                    pc = pcs_c[j]
                    write_flag = dirty_flag if op == store_op else 0
                    s = l1_sets[line & l1_mask]
                    flags = s.pop(line, None)
                    if flags is not None:
                        if inflight:
                            completion = inflight.pop(line, None)
                            if completion is not None and completion > now:
                                now += (completion - now) / mlp
                                sw_late += 1
                        if flags & sw_flag and not flags & ref_flag:
                            sw_useful += 1
                        s[line] = flags | ref_flag | write_flag
                        pc_acc[pc] = pc_acc.get(pc, 0) + 1
                        if not null_pf:
                            self.now = now
                            hw_observe(pc, addrs_c[j], line, True, stats)
                    else:
                        l1_misses += 1
                        pc_acc[pc] = pc_acc.get(pc, 0) + 1
                        pc_miss[pc] = pc_miss.get(pc, 0) + 1
                        self.now = now
                        if not null_pf:
                            hw_observe(pc, addrs_c[j], line, False, stats)
                        demand_miss(line, write_flag, mlp, stats)
                        now = self.now
                elif op == store_nt_op:
                    n_demand += 1
                    self.now = now
                    self._nt_store(pcs_c[j], line, demand_cost, stats)
                    now = self.now
                else:
                    n_prefetch += 1
                    self.now = now
                    self._sw_prefetch(line, op == nta_op, stats)
                    now = self.now

        self.now = now
        stats.l1.accesses += l1_accesses
        stats.l1.misses += l1_misses
        stats.sw_useful += sw_useful
        stats.sw_late += sw_late
        stats.instructions += int(n_demand * (1.0 + work_per_memop)) + n_prefetch
        stats.cycles = self.now

    def _run_events_batch(
        self,
        trace: MemoryTrace,
        work_per_memop: float,
        mlp: float,
        stats: RunStats,
    ) -> None:
        """Batched whole-hierarchy event loop (the ``batch`` path).

        The trace is split into maximal *demand runs* (consecutive
        loads/stores); software prefetches and NT stores between runs go
        through the exact scalar handlers.  Each long run is replayed as
        five array passes — L1 wavefront, batched prefetcher
        observation, an ordered L2 op stream, an ordered LLC op stream,
        and a merged timing stream — constructed so that every cache
        probe, install, writeback and bandwidth reservation happens in
        precisely the order the scalar loop would produce it.  Timing is
        then accumulated over *interesting* events only (misses,
        prefetch fills, in-flight-line hits); the hit gaps between them
        are pure ``+= demand_cost`` sequences.  Bit-identity with the
        reference loop is enforced by ``tests/test_sim_backend_diff.py``.
        """
        shift = self._line_shift
        demand_cost = (
            self.machine.cycles_per_memop + self.machine.cpi_base * work_per_memop
        )
        store_op = int(MemOp.STORE)
        nta_op = int(MemOp.PREFETCH_NTA)
        store_nt_op = int(MemOp.STORE_NT)
        ops = trace.op
        pcs = trace.pc
        lines_arr = trace.addr >> shift
        n = len(trace)

        n_demand = 0
        n_prefetch = 0
        seg_start = 0
        for p in np.nonzero(ops > store_op)[0].tolist():
            if p > seg_start:
                self._batch_demand_run(
                    trace, lines_arr, seg_start, p, demand_cost, mlp, stats
                )
                n_demand += p - seg_start
            op = int(ops[p])
            if op == store_nt_op:
                n_demand += 1
                self._nt_store(int(pcs[p]), int(lines_arr[p]), demand_cost, stats)
            else:
                n_prefetch += 1
                self._sw_prefetch(int(lines_arr[p]), op == nta_op, stats)
            seg_start = p + 1
        if n > seg_start:
            self._batch_demand_run(
                trace, lines_arr, seg_start, n, demand_cost, mlp, stats
            )
            n_demand += n - seg_start

        stats.instructions += int(n_demand * (1.0 + work_per_memop)) + n_prefetch
        stats.cycles = self.now

    def _batch_demand_run(
        self,
        trace: MemoryTrace,
        lines_arr: np.ndarray,
        a: int,
        b: int,
        demand_cost: float,
        mlp: float,
        stats: RunStats,
    ) -> None:
        """Replay demand events ``[a, b)`` through the array pipeline."""
        n_run = b - a
        store_op = int(MemOp.STORE)
        if n_run < MIN_BATCH_RUN:
            pcs_l = trace.pc[a:b].tolist()
            addrs_l = trace.addr[a:b].tolist()
            lines_l = lines_arr[a:b].tolist()
            ops_l = trace.op[a:b].tolist()
            for j in range(n_run):
                self._demand_access(
                    pcs_l[j],
                    addrs_l[j],
                    lines_l[j],
                    ops_l[j] == store_op,
                    demand_cost,
                    mlp,
                    stats,
                )
            return

        machine = self.machine
        pcs = trace.pc[a:b]
        addrs = trace.addr[a:b]
        lines = lines_arr[a:b]
        is_store = trace.op[a:b] == store_op
        oflags_da = np.where(
            is_store, FLAG_REFERENCED | FLAG_DIRTY, FLAG_REFERENCED
        ).astype(np.int64)

        # ---- pass 1: L1 demand wavefront --------------------------------
        hit1, prior1, v1i, v1l, v1f = self.l1.ops_batch(
            lines, np.zeros(n_run, dtype=np.uint8), oflags_da
        )
        miss1 = ~hit1
        mp = np.nonzero(miss1)[0]
        stats.l1.accesses += n_run
        stats.l1.misses += len(mp)
        stats.pc_l1.record_bulk(pcs, miss1)
        stats.sw_useful += int(
            np.count_nonzero(
                hit1
                & ((prior1 & FLAG_SW_PREFETCH) != 0)
                & ((prior1 & FLAG_REFERENCED) == 0)
            )
        )
        stats.sw_useless += int(
            np.count_nonzero(
                ((v1f & FLAG_SW_PREFETCH) != 0) & ((v1f & FLAG_REFERENCED) == 0)
            )
        )
        v1_nta = (v1f & FLAG_NTA) != 0
        v1_dirty = (v1f & FLAG_DIRTY) != 0

        # ---- pass 2: batched prefetcher observation ---------------------
        if isinstance(self.prefetcher, NullPrefetcher):
            h_ev = np.empty(0, dtype=np.int64)
            h_line = np.empty(0, dtype=np.int64)
            h_fill = np.empty(0, dtype=bool)
        else:
            h_ev, h_line, h_fill = self.prefetcher.observe_batch(
                pcs, addrs, lines, hit1
            )
        m_h = len(h_ev)
        if m_h:
            # Per-event issue index j of each request: requests sort
            # before the demand access (minor j < _MINOR_DA) and encode
            # their within-event timing slots as (j + 1) * 8.
            hm_idx = np.arange(m_h)
            new_grp = np.empty(m_h, dtype=bool)
            new_grp[0] = True
            new_grp[1:] = h_ev[1:] != h_ev[:-1]
            h_j = hm_idx - np.maximum.accumulate(np.where(new_grp, hm_idx, 0))
        else:
            h_j = np.empty(0, dtype=np.int64)

        # ---- pass 3: ordered L2 op stream -------------------------------
        # Per event, in scalar order: prefetch requests (fill or probe,
        # by issue index), then the demand access, then the L1 victim's
        # dirty touch.  OP_FILL reproduces _hw_observe's contains-then-
        # install; OP_TOUCH reproduces touch_flags.
        td1 = (~v1_nta) & v1_dirty
        n_td1 = int(np.count_nonzero(td1))
        l2_pos = np.concatenate((h_ev, mp, v1i[td1]))
        l2_minor = np.concatenate(
            (
                h_j,
                np.full(len(mp), _MINOR_DA, dtype=np.int64),
                np.full(n_td1, _MINOR_DA + 1, dtype=np.int64),
            )
        )
        l2_line = np.concatenate((h_line, lines[mp], v1l[td1]))
        l2_kind = np.concatenate(
            (
                np.where(h_fill, OP_FILL, OP_PROBE).astype(np.uint8),
                np.full(len(mp), OP_DEMAND, dtype=np.uint8),
                np.full(n_td1, OP_TOUCH, dtype=np.uint8),
            )
        )
        l2_of = np.concatenate(
            (
                np.full(m_h, FLAG_HW_PREFETCH, dtype=np.int64),
                oflags_da[mp],
                np.full(n_td1, FLAG_DIRTY, dtype=np.int64),
            )
        )
        o2 = np.lexsort((l2_minor, l2_pos))
        sp2 = l2_pos[o2]
        sm2 = l2_minor[o2]
        sl2 = l2_line[o2]
        so2 = l2_of[o2]
        hit2, prior2, v2i, v2l, v2f = self.l2.ops_batch(sl2, l2_kind[o2], so2)

        is_h2 = sm2 < _MINOR_DA
        is_da2 = sm2 == _MINOR_DA
        is_td2 = sm2 > _MINOR_DA
        da2_hit = hit2[is_da2]
        n_l2_miss = int(np.count_nonzero(~da2_hit))
        stats.l2.accesses += len(mp)
        stats.l2.misses += n_l2_miss
        stats.llc.accesses += n_l2_miss
        stats.hw_prefetches += int(np.count_nonzero(is_h2 & ~hit2))
        da2_prior = prior2[is_da2]
        stats.hw_useful += int(
            np.count_nonzero(
                da2_hit
                & ((da2_prior & FLAG_HW_PREFETCH) != 0)
                & ((da2_prior & FLAG_REFERENCED) == 0)
            )
        )
        v2_dirty = (v2f & FLAG_DIRTY) != 0
        v2d = np.nonzero(v2_dirty)[0]
        v2_evpos = sp2[v2i[v2d]]
        v2_evminor = sm2[v2i[v2d]]

        # ---- pass 4: ordered LLC op stream ------------------------------
        # Sub-key 1 places each L2 victim's dirty touch right after the
        # install that evicted it, exactly where the scalar chain runs.
        h2m = is_h2 & ~hit2
        d2m = is_da2 & ~hit2
        t2m = is_td2 & ~hit2
        n_h2m = int(np.count_nonzero(h2m))
        n_t2m = int(np.count_nonzero(t2m))
        llc_pos = np.concatenate((sp2[h2m], sp2[d2m], sp2[t2m], v2_evpos))
        llc_minor = np.concatenate((sm2[h2m], sm2[d2m], sm2[t2m], v2_evminor))
        llc_sub = np.concatenate(
            (
                np.zeros(n_h2m + n_l2_miss + n_t2m, dtype=np.int64),
                np.ones(len(v2d), dtype=np.int64),
            )
        )
        llc_line = np.concatenate((sl2[h2m], sl2[d2m], sl2[t2m], v2l[v2d]))
        llc_kind = np.concatenate(
            (
                np.full(n_h2m, OP_FILL, dtype=np.uint8),
                np.full(n_l2_miss, OP_DEMAND, dtype=np.uint8),
                np.full(n_t2m + len(v2d), OP_TOUCH, dtype=np.uint8),
            )
        )
        llc_of = np.concatenate(
            (
                np.full(n_h2m, FLAG_HW_PREFETCH, dtype=np.int64),
                so2[d2m],
                np.full(n_t2m + len(v2d), FLAG_DIRTY, dtype=np.int64),
            )
        )
        o3 = np.lexsort((llc_sub, llc_minor, llc_pos))
        sp3 = llc_pos[o3]
        sm3 = llc_minor[o3]
        sb3 = llc_sub[o3]
        sl3 = llc_line[o3]
        hit3, prior3, v3i, v3l, v3f = self.llc.ops_batch(sl3, llc_kind[o3], llc_of[o3])

        is_h3 = (sm3 < _MINOR_DA) & (sb3 == 0)
        is_da3 = (sm3 == _MINOR_DA) & (sb3 == 0)
        is_t1_3 = (sm3 > _MINOR_DA) & (sb3 == 0)
        is_t2_3 = sb3 == 1
        da3_hit = hit3[is_da3]
        stats.llc.misses += int(np.count_nonzero(~da3_hit))
        da3_prior = prior3[is_da3]
        stats.hw_useful += int(
            np.count_nonzero(
                da3_hit
                & ((da3_prior & FLAG_HW_PREFETCH) != 0)
                & ((da3_prior & FLAG_REFERENCED) == 0)
            )
        )
        stats.hw_useless += int(
            np.count_nonzero(
                ((v3f & FLAG_HW_PREFETCH) != 0) & ((v3f & FLAG_REFERENCED) == 0)
            )
        )
        h3m = is_h3 & ~hit3
        stats.dram_fills += int(np.count_nonzero(~da3_hit)) + int(
            np.count_nonzero(h3m)
        )

        # ---- pass 5: merged timing stream -------------------------------
        # Codes: 0 prefetch DRAM fill, 1 writeback, 2/3/4 demand served
        # from L2/LLC/DRAM, 5 L1-victim in-flight drop, 6 in-flight check
        # on an L1 hit.  Sequence keys replicate the scalar within-event
        # order (requests, demand, victim chain).
        if self._inflight or m_h:
            if self._inflight:
                keys = np.fromiter(
                    self._inflight.keys(), dtype=np.int64, count=len(self._inflight)
                )
                cand = np.concatenate((keys, h_line)) if m_h else keys
            else:
                cand = h_line
            # Sorted-membership helper: lines outside this candidate set
            # can never be in flight (only prefetches create entries),
            # so their events skip the dict probes entirely.
            cand = np.sort(cand)

            def in_cand(arr: np.ndarray) -> np.ndarray:
                pos = np.searchsorted(cand, arr).clip(0, len(cand) - 1)
                return cand[pos] == arr

            hp = np.nonzero(hit1)[0]
            inf_ev = hp[in_cand(lines[hp])]
            # L1 victims drop their in-flight entry (code 5); only lines
            # that were ever prefetched can carry one, so the rest of
            # the victims need no timing event at all.
            v5 = in_cand(v1l)
            v5i = v1i[v5]
            v5l = v1l[v5]
            da_inf = in_cand(lines[mp])
        else:
            inf_ev = np.empty(0, dtype=np.int64)
            v5i = np.empty(0, dtype=np.int64)
            v5l = np.empty(0, dtype=np.int64)
            da_inf = np.zeros(len(mp), dtype=bool)

        ev_h = sp3[h3m]
        seq_h = (sm3[h3m] + 1) * 8
        arg_h = sl3[h3m]

        # Demand codes: 2/3 check the in-flight map before charging the
        # L2/LLC hit latency; the 7/8 variants are the common case where
        # the line cannot be in flight and the charge is unconditional.
        da_code = np.where(da_inf, 2, 7)
        da_code[~da2_hit] = np.where(
            da3_hit, np.where(da_inf[~da2_hit], 3, 8), 4
        )

        v3_dirty = (v3f & FLAG_DIRTY) != 0
        v3d = np.nonzero(v3_dirty)[0]
        wb1_ev = sp3[v3i[v3d]]
        ev1m = sm3[v3i[v3d]]
        wb1_seq = np.where(ev1m < _MINOR_DA, (ev1m + 1) * 8 + 1, _SEQ_DA + 1)
        w2 = is_t2_3 & ~hit3
        wb2_ev = sp3[w2]
        ev2m = sm3[w2]
        wb2_seq = np.where(ev2m < _MINOR_DA, (ev2m + 1) * 8 + 2, _SEQ_DA + 2)
        w3 = is_t1_3 & ~hit3
        wb3_ev = sp3[w3]
        w4 = v1_nta & v1_dirty
        wb4_ev = v1i[w4]
        n_wb = len(wb1_ev) + len(wb2_ev) + len(wb3_ev) + len(wb4_ev)

        ev_t = np.concatenate(
            (inf_ev, ev_h, mp, wb1_ev, wb2_ev, wb3_ev, wb4_ev, v5i)
        )
        seq_t = np.concatenate(
            (
                np.zeros(len(inf_ev), dtype=np.int64),
                seq_h,
                np.full(len(mp), _SEQ_DA, dtype=np.int64),
                wb1_seq,
                wb2_seq,
                np.full(len(wb3_ev) + len(wb4_ev), _SEQ_DA + 4, dtype=np.int64),
                np.full(len(v5i), _SEQ_DA + 3, dtype=np.int64),
            )
        )
        code_t = np.concatenate(
            (
                np.full(len(inf_ev), 6, dtype=np.int64),
                np.zeros(len(ev_h), dtype=np.int64),
                da_code,
                np.ones(n_wb, dtype=np.int64),
                np.full(len(v5i), 5, dtype=np.int64),
            )
        )
        arg_t = np.concatenate(
            (
                lines[inf_ev],
                arg_h,
                lines[mp],
                np.zeros(n_wb, dtype=np.int64),
                v5l,
            )
        )
        t_order = np.lexsort((seq_t, ev_t))
        ev_s = ev_t[t_order]
        code_s = code_t[t_order]
        arg_s = arg_t[t_order]

        # Liveness pass: a pop can only find an in-flight entry when the
        # immediately preceding inflight-relevant event on the same line
        # (in processing order) was a prefetch fill, or the line entered
        # the run already in flight.  Pops that provably find nothing
        # become unconditional-latency codes (2 -> 7, 3 -> 8) or vanish
        # (5, 6), keeping the serial loop to the events that matter.
        infl_rel = (code_s == 0) | ((code_s >= 2) & (code_s != 4) & (code_s <= 6))
        ri = np.nonzero(infl_rel)[0]
        if len(ri):
            gsel = arg_s[ri]
            csel = code_s[ri]
            go = np.argsort(gsel, kind="stable")
            gg = gsel[go]
            cg = csel[go]
            first = np.empty(len(go), dtype=bool)
            first[0] = True
            first[1:] = gg[1:] != gg[:-1]
            live_g = np.zeros(len(go), dtype=bool)
            live_g[1:] = ~first[1:] & (cg[:-1] == 0)
            if self._inflight:
                keys0 = np.sort(
                    np.fromiter(
                        self._inflight.keys(),
                        dtype=np.int64,
                        count=len(self._inflight),
                    )
                )
                pos0 = np.searchsorted(keys0, gg).clip(0, len(keys0) - 1)
                live_g |= first & (keys0[pos0] == gg)
            dead = np.empty(len(ri), dtype=bool)
            dead[go] = ~live_g
            code_s[ri[dead & (csel == 2)]] = 7
            code_s[ri[dead & (csel == 3)]] = 8
            drop = dead & ((csel == 5) | (csel == 6))
            if drop.any():
                keep = np.ones(len(ev_s), dtype=bool)
                keep[ri[drop]] = False
                ev_s = ev_s[keep]
                code_s = code_s[keep]
                arg_s = arg_s[keep]
        ev_l = ev_s.tolist()
        code_l = code_s.tolist()
        arg_l = arg_s.tolist()

        bw = self.bandwidth
        window = bw.window
        free = bw._free_time
        ewma = bw._ewma_bpc
        last = bw._last_time
        totb = bw.total_bytes
        tott = bw.total_transfers
        line_bytes = machine.line_bytes
        dur = line_bytes / bw.peak
        bpw = line_bytes / window
        dram_latency = machine.dram_latency
        l2_lat = machine.l2.hit_latency / mlp
        llc_lat = machine.llc.hit_latency / mlp
        dram_term = (dur + dram_latency) / mlp
        inflight = self._inflight
        now = self.now
        sw_late = 0
        wb_count = 0
        prev = -1
        for e, c, g in zip(ev_l, code_l, arg_l):
            # Hit-gap events and the interesting event itself each charge
            # demand_cost; the repeated addition keeps float identity
            # with the scalar loop.
            if e != prev:
                for _ in range(e - prev):
                    now += demand_cost
                prev = e
            if c == 7:
                now += l2_lat
            elif c == 8:
                now += llc_lat
            elif c == 4:
                start = now if now > free else free
                free = start + dur
                totb += line_bytes
                tott += 1
                t = now if now > last else last
                dt = t - last
                if dt > 0:
                    ewma *= 1.0 - min(dt / window, 1.0)
                    last = t
                ewma += bpw
                now = start + dram_term
            elif c == 2:
                completion = inflight.pop(g, None)
                if completion is not None and completion > now:
                    now += (completion - now) / mlp
                else:
                    now += l2_lat
            elif c == 3:
                completion = inflight.pop(g, None)
                if completion is not None and completion > now:
                    now += (completion - now) / mlp
                else:
                    now += llc_lat
            elif c == 6:
                completion = inflight.pop(g, None)
                if completion is not None and completion > now:
                    now += (completion - now) / mlp
                    sw_late += 1
            elif c == 0:
                start = now if now > free else free
                free = start + dur
                totb += line_bytes
                tott += 1
                t = now if now > last else last
                dt = t - last
                if dt > 0:
                    ewma *= 1.0 - min(dt / window, 1.0)
                    last = t
                ewma += bpw
                inflight[g] = start + dur + dram_latency
            elif c == 5:
                inflight.pop(g, None)
            else:  # c == 1: writeback
                start = now if now > free else free
                free = start + dur
                totb += line_bytes
                tott += 1
                t = now if now > last else last
                dt = t - last
                if dt > 0:
                    ewma *= 1.0 - min(dt / window, 1.0)
                    last = t
                ewma += bpw
                wb_count += 1
        for _ in range(n_run - 1 - prev):
            now += demand_cost

        self.now = now
        bw._free_time = free
        bw._ewma_bpc = ewma
        bw._last_time = last
        bw.total_bytes = totb
        bw.total_transfers = tott
        stats.sw_late += sw_late
        stats.dram_writebacks += wb_count

    def drain_writebacks(self, stats: RunStats) -> int:
        """Account writebacks of dirty lines still resident at run end.

        Without this, a configuration that parks dirty data in the LLC
        looks cheaper than one (e.g. NTA) that wrote it back eagerly —
        the bytes must reach DRAM either way.  Returns the number of
        lines drained.
        """
        dirty: set[int] = set()
        for cache in (self.l1, self.l2, self.llc):
            for line in cache.resident_lines():
                flags = cache.peek_flags(line)
                if flags is not None and flags & FLAG_DIRTY:
                    dirty.add(line)
        self.bandwidth.charge_batch(self.now, self.machine.line_bytes, len(dirty))
        stats.dram_writebacks += len(dirty)
        return len(dirty)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _demand_access(
        self,
        pc: int,
        addr: int,
        line: int,
        is_write: bool,
        demand_cost: float,
        mlp: float,
        stats: RunStats,
    ) -> None:
        self.now += demand_cost
        write_flag = FLAG_DIRTY if is_write else 0
        stats.l1.accesses += 1

        l1_flags = self.l1.peek_flags(line)
        l1_hit = l1_flags is not None
        if l1_hit:
            # A hit on an in-flight prefetched line stalls for the
            # remaining fetch time (late prefetch).
            completion = self._inflight.pop(line, None)
            if completion is not None and completion > self.now:
                # Late prefetch: the remaining fetch time stalls the
                # core, overlapped with other outstanding misses.
                self.now += (completion - self.now) / mlp
                stats.sw_late += 1
            if l1_flags & FLAG_SW_PREFETCH and not l1_flags & FLAG_REFERENCED:
                stats.sw_useful += 1
            self.l1.lookup(line, FLAG_REFERENCED | write_flag)
            stats.pc_l1.record(pc, False)
            self._hw_observe(pc, addr, line, True, stats)
            return

        stats.l1.misses += 1
        stats.pc_l1.record(pc, True)
        self._hw_observe(pc, addr, line, False, stats)
        self._demand_miss(line, write_flag, mlp, stats)

    def _demand_miss(
        self,
        line: int,
        write_flag: int,
        mlp: float,
        stats: RunStats,
    ) -> None:
        """Service an L1 miss from L2, the LLC or DRAM.

        Shared by both backends: the fast event loop inlines only the
        L1 probe and delegates every miss here, so the two paths cannot
        drift apart below the L1.
        """
        stats.l2.accesses += 1
        l2_flags = self.l2.peek_flags(line)
        if l2_flags is not None:
            if l2_flags & FLAG_HW_PREFETCH and not l2_flags & FLAG_REFERENCED:
                stats.hw_useful += 1
            self.l2.lookup(line, FLAG_REFERENCED | write_flag)
            completion = self._inflight.pop(line, None)
            if completion is not None and completion > self.now:
                self.now += (completion - self.now) / mlp
            else:
                self.now += self.machine.l2.hit_latency / mlp
            self._install_l1(line, FLAG_REFERENCED | write_flag, stats)
            return

        stats.l2.misses += 1
        stats.llc.accesses += 1
        llc_flags = self.llc.peek_flags(line)
        if llc_flags is not None:
            if llc_flags & FLAG_HW_PREFETCH and not llc_flags & FLAG_REFERENCED:
                stats.hw_useful += 1
            self.llc.lookup(line, FLAG_REFERENCED | write_flag)
            completion = self._inflight.pop(line, None)
            if completion is not None and completion > self.now:
                self.now += (completion - self.now) / mlp
            else:
                self.now += self.machine.llc.hit_latency / mlp
            self._install_l2(line, FLAG_REFERENCED | write_flag, stats)
            self._install_l1(line, FLAG_REFERENCED | write_flag, stats)
            return

        stats.llc.misses += 1
        start, duration = self.bandwidth.transfer(self.now, self.machine.line_bytes)
        stats.dram_fills += 1
        # Queueing behind earlier transfers (start - now) is a
        # throughput limit that parallelism cannot hide and is paid in
        # full; the pipelined transfer + access latency overlaps across
        # the core's outstanding misses.
        self.now = start + (duration + self.machine.dram_latency) / mlp
        self._install_llc(line, FLAG_REFERENCED | write_flag, stats)
        self._install_l2(line, FLAG_REFERENCED | write_flag, stats)
        self._install_l1(line, FLAG_REFERENCED | write_flag, stats)

    def _nt_store(self, pc: int, line: int, demand_cost: float, stats: RunStats) -> None:
        """Non-temporal store: write-combine straight to DRAM.

        No read-for-ownership fill, no caching; any cached copy is
        invalidated (superseded by the full-line write).  The write is
        posted — it occupies a controller slot but does not stall the
        core.
        """
        self.now += demand_cost
        stats.l1.accesses += 1
        stats.pc_l1.record(pc, False)
        for cache in (self.l1, self.l2, self.llc):
            cache.invalidate(line)
        self._inflight.pop(line, None)
        if line in self._wc_buffer:
            return  # merged into an open write-combining entry
        self._wc_buffer.append(line)
        if len(self._wc_buffer) > 4:
            self._wc_buffer.pop(0)
        self.bandwidth.transfer(self.now, self.machine.line_bytes)
        stats.nt_store_writes += 1

    def _sw_prefetch(self, line: int, nta: bool, stats: RunStats) -> None:
        self.now += self.machine.prefetch_cost
        stats.sw_prefetches += 1
        if self.l1.contains(line):
            return
        # Fetch from the nearest level that has the line.
        if self.l2.lookup(line):
            completion = self.now + self.machine.l2.hit_latency
        elif self.llc.lookup(line):
            completion = self.now + self.machine.llc.hit_latency
        else:
            start, duration = self.bandwidth.transfer(self.now, self.machine.line_bytes)
            stats.dram_fills += 1
            if nta:
                stats.nta_fills += 1
            completion = start + duration + self.machine.dram_latency
            if not nta:
                # An ordinary prefetch from DRAM installs through the
                # hierarchy; NTA bypasses L2/LLC entirely.
                self._install_llc(line, FLAG_SW_PREFETCH, stats)
                self._install_l2(line, FLAG_SW_PREFETCH, stats)
        flags = FLAG_SW_PREFETCH | (FLAG_NTA if nta else 0)
        self._install_l1(line, flags, stats)
        self._inflight[line] = completion

    def _hw_observe(self, pc: int, addr: int, line: int, l1_hit: bool, stats: RunStats) -> None:
        requests = self.prefetcher.observe(pc, addr, line, l1_hit)
        for req in requests:
            target = req.line
            if self.l2.contains(target):
                continue
            stats.hw_prefetches += 1
            if self.llc.contains(target):
                # Promote into L2 only; no off-chip traffic.
                if req.fill_l2:
                    self._install_l2(target, FLAG_HW_PREFETCH, stats)
                continue
            start, duration = self.bandwidth.transfer(self.now, self.machine.line_bytes)
            stats.dram_fills += 1
            self._inflight[target] = start + duration + self.machine.dram_latency
            if not req.llc_bypass:
                # A coordinator-retargeted (NTA) fill skips the shared
                # LLC, conserving neighbours' space like PREFETCHNTA.
                self._install_llc(target, FLAG_HW_PREFETCH, stats)
            if req.fill_l2:
                self._install_l2(target, FLAG_HW_PREFETCH, stats)

    # ------------------------------------------------------------------
    # fills and evictions
    # ------------------------------------------------------------------

    def _install_l1(self, line: int, flags: int, stats: RunStats) -> None:
        victim = self.l1.install(line, flags)
        if victim is None:
            return
        v_line, v_flags = victim
        self._inflight.pop(v_line, None)
        if v_flags & FLAG_SW_PREFETCH and not v_flags & FLAG_REFERENCED:
            stats.sw_useless += 1
        if v_flags & FLAG_NTA:
            # NTA lines bypass the outer levels: dirty ones go straight
            # to DRAM, clean ones are simply dropped.
            if v_flags & FLAG_DIRTY:
                stats.dram_writebacks += 1
                self.bandwidth.transfer(self.now, self.machine.line_bytes)
            return
        if v_flags & FLAG_DIRTY:
            if not self.l2.touch_flags(v_line, FLAG_DIRTY):
                if not self.llc.touch_flags(v_line, FLAG_DIRTY):
                    stats.dram_writebacks += 1
                    self.bandwidth.transfer(self.now, self.machine.line_bytes)

    def _install_l2(self, line: int, flags: int, stats: RunStats) -> None:
        victim = self.l2.install(line, flags)
        if victim is None:
            return
        v_line, v_flags = victim
        if v_flags & FLAG_DIRTY:
            if not self.llc.touch_flags(v_line, FLAG_DIRTY):
                stats.dram_writebacks += 1
                self.bandwidth.transfer(self.now, self.machine.line_bytes)

    def _install_llc(self, line: int, flags: int, stats: RunStats) -> None:
        victim = self.llc.install(line, flags)
        if victim is None:
            return
        v_line, v_flags = victim
        if v_flags & FLAG_HW_PREFETCH and not v_flags & FLAG_REFERENCED:
            stats.hw_useless += 1
        if v_flags & FLAG_DIRTY:
            stats.dram_writebacks += 1
            self.bandwidth.transfer(self.now, self.machine.line_bytes)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Flush all caches and clear prefetcher/bandwidth state."""
        self.l1.flush()
        self.l2.flush()
        self.llc.flush()
        self._inflight.clear()
        self._wc_buffer.clear()
        self.prefetcher.reset()
        self.bandwidth.reset()
        self.now = 0.0
