"""Single-core three-level cache hierarchy with timing.

This is the workhorse simulator behind the single-benchmark experiments
(paper Figs. 4–6).  It models:

* L1/L2/LLC set-associative LRU caches (mostly-inclusive fill policy);
* demand access timing — ``Δ`` cycles per memory operation plus the
  service latency of the level that provides the data, divided by a
  memory-level-parallelism factor (dependent pointer chases expose the
  full latency, streaming code overlaps several misses);
* software prefetches with *in-flight tracking*: a prefetch issued too
  close to its demand access only hides part of the latency (late
  prefetch), which is how the paper's prefetch-distance formula is
  exercised end to end;
* ``PREFETCHNTA`` semantics: the line is installed in L1 only and is
  dropped on eviction, never occupying L2/LLC — the cache-bypassing
  mechanism of paper §VI-B;
* a hardware prefetcher model observing the L1 miss stream and filling
  L2/LLC speculatively;
* off-chip traffic and bandwidth-dependent DRAM latency through
  :class:`~repro.cachesim.bandwidth.BandwidthModel`.

The per-event loop is deliberately written with localised variables and
O(1) dict-based cache operations; simulating a 500k-event trace through
all three levels takes on the order of a second.
"""

from __future__ import annotations

from repro import obs
from repro.cachesim.backend import resolve_backend
from repro.cachesim.bandwidth import BandwidthModel
from repro.cachesim.lru import (
    FLAG_DIRTY,
    FLAG_HW_PREFETCH,
    FLAG_NTA,
    FLAG_REFERENCED,
    FLAG_SW_PREFETCH,
    LRUCache,
)
from repro.cachesim.stats import RunStats
from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.hwpref.base import HardwarePrefetcher, NullPrefetcher
from repro.trace.events import MemOp, MemoryTrace

__all__ = ["CacheHierarchy"]


class CacheHierarchy:
    """One core's private L1/L2 plus an (optionally shared) LLC.

    Parameters
    ----------
    machine:
        Machine description (geometry, latencies, Δ, α).
    prefetcher:
        Hardware prefetcher model; defaults to disabled
        (:class:`~repro.hwpref.base.NullPrefetcher`), the paper's baseline.
    bandwidth:
        Shared memory-controller model.  Supply one instance to several
        hierarchies to model cores contending for off-chip bandwidth; by
        default a private model is created.
    llc:
        Pass a pre-built LLC to share it between hierarchies (multicore
        mode); by default a private LLC is created.
    """

    def __init__(
        self,
        machine: MachineConfig,
        prefetcher: HardwarePrefetcher | None = None,
        bandwidth: BandwidthModel | None = None,
        llc: LRUCache | None = None,
    ) -> None:
        self.machine = machine
        self.l1 = LRUCache(machine.l1)
        self.l2 = LRUCache(machine.l2)
        self.llc = llc if llc is not None else LRUCache(machine.llc)
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
        self.bandwidth = (
            bandwidth if bandwidth is not None else BandwidthModel(machine.bytes_per_cycle())
        )
        self.now: float = 0.0
        self._inflight: dict[int, float] = {}
        self._line_shift = machine.line_bytes.bit_length() - 1
        # write-combining buffer for non-temporal stores (4 entries,
        # like x86 WC buffers): consecutive NT writes to the same line
        # merge into one off-chip transfer.
        self._wc_buffer: list[int] = []

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def run(
        self,
        trace: MemoryTrace,
        work_per_memop: float = 2.0,
        mlp: float = 2.0,
        stats: RunStats | None = None,
    ) -> RunStats:
        """Simulate ``trace`` to completion and return statistics.

        Parameters
        ----------
        trace:
            Events in program order.
        work_per_memop:
            Average non-memory instructions executed per memory
            operation; charged at the machine's base CPI.
        mlp:
            Memory-level parallelism — how many outstanding misses the
            core overlaps.  Miss stalls are divided by this factor.
        stats:
            Accumulate into an existing :class:`RunStats` (used when a
            run is split into chunks); a fresh one is created otherwise.
        """
        if mlp < 1.0:
            raise SimulationError("mlp must be >= 1")
        if work_per_memop < 0.0:
            raise SimulationError("work_per_memop must be non-negative")
        if stats is None:
            stats = RunStats(line_bytes=self.machine.line_bytes)
        backend = resolve_backend(self.machine.sim_backend)
        with obs.span(
            "cachesim.run",
            machine=self.machine.name,
            events=len(trace),
            backend=backend,
        ) as run_span:
            if backend == "fast":
                self._run_events_fast(trace, work_per_memop, mlp, stats)
            else:
                self._run_events(trace, work_per_memop, mlp, stats)
            if obs.enabled():
                obs.metrics().counter(f"sim.hierarchy.events.{backend}").inc(
                    len(trace)
                )
            run_span.set(cycles=stats.cycles)
        return stats

    def _run_events(
        self,
        trace: MemoryTrace,
        work_per_memop: float,
        mlp: float,
        stats: RunStats,
    ) -> None:
        shift = self._line_shift
        demand_cost = (
            self.machine.cycles_per_memop + self.machine.cpi_base * work_per_memop
        )
        pcs = trace.pc
        addrs = trace.addr
        ops = trace.op
        store_op = int(MemOp.STORE)
        nta_op = int(MemOp.PREFETCH_NTA)
        store_nt_op = int(MemOp.STORE_NT)

        n_demand = 0
        n_prefetch = 0
        for i in range(len(trace)):
            op = ops[i]
            addr = int(addrs[i])
            line = addr >> shift
            if op <= store_op:
                n_demand += 1
                self._demand_access(int(pcs[i]), addr, line, op == store_op, demand_cost, mlp, stats)
            elif op == store_nt_op:
                n_demand += 1
                self._nt_store(int(pcs[i]), line, demand_cost, stats)
            else:
                n_prefetch += 1
                self._sw_prefetch(line, op == nta_op, stats)

        stats.instructions += int(n_demand * (1.0 + work_per_memop)) + n_prefetch
        stats.cycles = self.now

    def _run_events_fast(
        self,
        trace: MemoryTrace,
        work_per_memop: float,
        mlp: float,
        stats: RunStats,
    ) -> None:
        """Chunked fast event loop (``sim_backend="fast"``).

        The trace is staged chunk by chunk into plain Python lists (one
        vectorised line-number conversion, no per-event NumPy scalar
        extraction) and the dominant L1 demand path is inlined against
        the set dicts with every attribute hoisted into locals.  Only
        the rare events — L1 misses, software prefetches, NT stores and
        hardware-prefetcher observation — fall back to the exact same
        methods the reference loop uses, with ``self.now`` synced around
        the call, so timing and statistics stay bit-identical (enforced
        by ``tests/test_sim_backend_diff.py``).
        """
        shift = self._line_shift
        demand_cost = (
            self.machine.cycles_per_memop + self.machine.cpi_base * work_per_memop
        )
        store_op = int(MemOp.STORE)
        nta_op = int(MemOp.PREFETCH_NTA)
        store_nt_op = int(MemOp.STORE_NT)
        lines_arr = trace.addr >> shift

        l1_sets = self.l1._sets
        l1_mask = self.l1._set_mask
        inflight = self._inflight
        null_pf = isinstance(self.prefetcher, NullPrefetcher)
        hw_observe = self._hw_observe
        demand_miss = self._demand_miss
        pc_acc = stats.pc_l1.accesses
        pc_miss = stats.pc_l1.misses
        ref_flag = FLAG_REFERENCED
        dirty_flag = FLAG_DIRTY
        sw_flag = FLAG_SW_PREFETCH

        n_demand = 0
        n_prefetch = 0
        l1_accesses = 0
        l1_misses = 0
        sw_useful = 0
        sw_late = 0
        now = self.now
        chunk = 1 << 16
        for start in range(0, len(trace), chunk):
            end = start + chunk
            ops_c = trace.op[start:end].tolist()
            pcs_c = trace.pc[start:end].tolist()
            lines_c = lines_arr[start:end].tolist()
            addrs_c = trace.addr[start:end].tolist() if not null_pf else None
            for j, op in enumerate(ops_c):
                line = lines_c[j]
                if op <= store_op:
                    n_demand += 1
                    now += demand_cost
                    l1_accesses += 1
                    pc = pcs_c[j]
                    write_flag = dirty_flag if op == store_op else 0
                    s = l1_sets[line & l1_mask]
                    flags = s.pop(line, None)
                    if flags is not None:
                        if inflight:
                            completion = inflight.pop(line, None)
                            if completion is not None and completion > now:
                                now += (completion - now) / mlp
                                sw_late += 1
                        if flags & sw_flag and not flags & ref_flag:
                            sw_useful += 1
                        s[line] = flags | ref_flag | write_flag
                        pc_acc[pc] = pc_acc.get(pc, 0) + 1
                        if not null_pf:
                            self.now = now
                            hw_observe(pc, addrs_c[j], line, True, stats)
                    else:
                        l1_misses += 1
                        pc_acc[pc] = pc_acc.get(pc, 0) + 1
                        pc_miss[pc] = pc_miss.get(pc, 0) + 1
                        self.now = now
                        if not null_pf:
                            hw_observe(pc, addrs_c[j], line, False, stats)
                        demand_miss(line, write_flag, mlp, stats)
                        now = self.now
                elif op == store_nt_op:
                    n_demand += 1
                    self.now = now
                    self._nt_store(pcs_c[j], line, demand_cost, stats)
                    now = self.now
                else:
                    n_prefetch += 1
                    self.now = now
                    self._sw_prefetch(line, op == nta_op, stats)
                    now = self.now

        self.now = now
        stats.l1.accesses += l1_accesses
        stats.l1.misses += l1_misses
        stats.sw_useful += sw_useful
        stats.sw_late += sw_late
        stats.instructions += int(n_demand * (1.0 + work_per_memop)) + n_prefetch
        stats.cycles = self.now

    def drain_writebacks(self, stats: RunStats) -> int:
        """Account writebacks of dirty lines still resident at run end.

        Without this, a configuration that parks dirty data in the LLC
        looks cheaper than one (e.g. NTA) that wrote it back eagerly —
        the bytes must reach DRAM either way.  Returns the number of
        lines drained.
        """
        dirty: set[int] = set()
        for cache in (self.l1, self.l2, self.llc):
            for line in cache.resident_lines():
                flags = cache.peek_flags(line)
                if flags is not None and flags & FLAG_DIRTY:
                    dirty.add(line)
        for _ in dirty:
            self.bandwidth.transfer(self.now, self.machine.line_bytes)
        stats.dram_writebacks += len(dirty)
        return len(dirty)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _demand_access(
        self,
        pc: int,
        addr: int,
        line: int,
        is_write: bool,
        demand_cost: float,
        mlp: float,
        stats: RunStats,
    ) -> None:
        self.now += demand_cost
        write_flag = FLAG_DIRTY if is_write else 0
        stats.l1.accesses += 1

        l1_flags = self.l1.peek_flags(line)
        l1_hit = l1_flags is not None
        if l1_hit:
            # A hit on an in-flight prefetched line stalls for the
            # remaining fetch time (late prefetch).
            completion = self._inflight.pop(line, None)
            if completion is not None and completion > self.now:
                # Late prefetch: the remaining fetch time stalls the
                # core, overlapped with other outstanding misses.
                self.now += (completion - self.now) / mlp
                stats.sw_late += 1
            if l1_flags & FLAG_SW_PREFETCH and not l1_flags & FLAG_REFERENCED:
                stats.sw_useful += 1
            self.l1.lookup(line, FLAG_REFERENCED | write_flag)
            stats.pc_l1.record(pc, False)
            self._hw_observe(pc, addr, line, True, stats)
            return

        stats.l1.misses += 1
        stats.pc_l1.record(pc, True)
        self._hw_observe(pc, addr, line, False, stats)
        self._demand_miss(line, write_flag, mlp, stats)

    def _demand_miss(
        self,
        line: int,
        write_flag: int,
        mlp: float,
        stats: RunStats,
    ) -> None:
        """Service an L1 miss from L2, the LLC or DRAM.

        Shared by both backends: the fast event loop inlines only the
        L1 probe and delegates every miss here, so the two paths cannot
        drift apart below the L1.
        """
        stats.l2.accesses += 1
        l2_flags = self.l2.peek_flags(line)
        if l2_flags is not None:
            if l2_flags & FLAG_HW_PREFETCH and not l2_flags & FLAG_REFERENCED:
                stats.hw_useful += 1
            self.l2.lookup(line, FLAG_REFERENCED | write_flag)
            completion = self._inflight.pop(line, None)
            if completion is not None and completion > self.now:
                self.now += (completion - self.now) / mlp
            else:
                self.now += self.machine.l2.hit_latency / mlp
            self._install_l1(line, FLAG_REFERENCED | write_flag, stats)
            return

        stats.l2.misses += 1
        stats.llc.accesses += 1
        llc_flags = self.llc.peek_flags(line)
        if llc_flags is not None:
            if llc_flags & FLAG_HW_PREFETCH and not llc_flags & FLAG_REFERENCED:
                stats.hw_useful += 1
            self.llc.lookup(line, FLAG_REFERENCED | write_flag)
            completion = self._inflight.pop(line, None)
            if completion is not None and completion > self.now:
                self.now += (completion - self.now) / mlp
            else:
                self.now += self.machine.llc.hit_latency / mlp
            self._install_l2(line, FLAG_REFERENCED | write_flag, stats)
            self._install_l1(line, FLAG_REFERENCED | write_flag, stats)
            return

        stats.llc.misses += 1
        start, duration = self.bandwidth.transfer(self.now, self.machine.line_bytes)
        stats.dram_fills += 1
        # Queueing behind earlier transfers (start - now) is a
        # throughput limit that parallelism cannot hide and is paid in
        # full; the pipelined transfer + access latency overlaps across
        # the core's outstanding misses.
        self.now = start + (duration + self.machine.dram_latency) / mlp
        self._install_llc(line, FLAG_REFERENCED | write_flag, stats)
        self._install_l2(line, FLAG_REFERENCED | write_flag, stats)
        self._install_l1(line, FLAG_REFERENCED | write_flag, stats)

    def _nt_store(self, pc: int, line: int, demand_cost: float, stats: RunStats) -> None:
        """Non-temporal store: write-combine straight to DRAM.

        No read-for-ownership fill, no caching; any cached copy is
        invalidated (superseded by the full-line write).  The write is
        posted — it occupies a controller slot but does not stall the
        core.
        """
        self.now += demand_cost
        stats.l1.accesses += 1
        stats.pc_l1.record(pc, False)
        for cache in (self.l1, self.l2, self.llc):
            cache.invalidate(line)
        self._inflight.pop(line, None)
        if line in self._wc_buffer:
            return  # merged into an open write-combining entry
        self._wc_buffer.append(line)
        if len(self._wc_buffer) > 4:
            self._wc_buffer.pop(0)
        self.bandwidth.transfer(self.now, self.machine.line_bytes)
        stats.nt_store_writes += 1

    def _sw_prefetch(self, line: int, nta: bool, stats: RunStats) -> None:
        self.now += self.machine.prefetch_cost
        stats.sw_prefetches += 1
        if self.l1.contains(line):
            return
        # Fetch from the nearest level that has the line.
        if self.l2.lookup(line):
            completion = self.now + self.machine.l2.hit_latency
        elif self.llc.lookup(line):
            completion = self.now + self.machine.llc.hit_latency
        else:
            start, duration = self.bandwidth.transfer(self.now, self.machine.line_bytes)
            stats.dram_fills += 1
            if nta:
                stats.nta_fills += 1
            completion = start + duration + self.machine.dram_latency
            if not nta:
                # An ordinary prefetch from DRAM installs through the
                # hierarchy; NTA bypasses L2/LLC entirely.
                self._install_llc(line, FLAG_SW_PREFETCH, stats)
                self._install_l2(line, FLAG_SW_PREFETCH, stats)
        flags = FLAG_SW_PREFETCH | (FLAG_NTA if nta else 0)
        self._install_l1(line, flags, stats)
        self._inflight[line] = completion

    def _hw_observe(self, pc: int, addr: int, line: int, l1_hit: bool, stats: RunStats) -> None:
        requests = self.prefetcher.observe(pc, addr, line, l1_hit)
        for req in requests:
            target = req.line
            if self.l2.contains(target):
                continue
            stats.hw_prefetches += 1
            if self.llc.contains(target):
                # Promote into L2 only; no off-chip traffic.
                if req.fill_l2:
                    self._install_l2(target, FLAG_HW_PREFETCH, stats)
                continue
            start, duration = self.bandwidth.transfer(self.now, self.machine.line_bytes)
            stats.dram_fills += 1
            self._inflight[target] = start + duration + self.machine.dram_latency
            self._install_llc(target, FLAG_HW_PREFETCH, stats)
            if req.fill_l2:
                self._install_l2(target, FLAG_HW_PREFETCH, stats)

    # ------------------------------------------------------------------
    # fills and evictions
    # ------------------------------------------------------------------

    def _install_l1(self, line: int, flags: int, stats: RunStats) -> None:
        victim = self.l1.install(line, flags)
        if victim is None:
            return
        v_line, v_flags = victim
        self._inflight.pop(v_line, None)
        if v_flags & FLAG_SW_PREFETCH and not v_flags & FLAG_REFERENCED:
            stats.sw_useless += 1
        if v_flags & FLAG_NTA:
            # NTA lines bypass the outer levels: dirty ones go straight
            # to DRAM, clean ones are simply dropped.
            if v_flags & FLAG_DIRTY:
                stats.dram_writebacks += 1
                self.bandwidth.transfer(self.now, self.machine.line_bytes)
            return
        if v_flags & FLAG_DIRTY:
            if not self.l2.touch_flags(v_line, FLAG_DIRTY):
                if not self.llc.touch_flags(v_line, FLAG_DIRTY):
                    stats.dram_writebacks += 1
                    self.bandwidth.transfer(self.now, self.machine.line_bytes)

    def _install_l2(self, line: int, flags: int, stats: RunStats) -> None:
        victim = self.l2.install(line, flags)
        if victim is None:
            return
        v_line, v_flags = victim
        if v_flags & FLAG_DIRTY:
            if not self.llc.touch_flags(v_line, FLAG_DIRTY):
                stats.dram_writebacks += 1
                self.bandwidth.transfer(self.now, self.machine.line_bytes)

    def _install_llc(self, line: int, flags: int, stats: RunStats) -> None:
        victim = self.llc.install(line, flags)
        if victim is None:
            return
        v_line, v_flags = victim
        if v_flags & FLAG_HW_PREFETCH and not v_flags & FLAG_REFERENCED:
            stats.hw_useless += 1
        if v_flags & FLAG_DIRTY:
            stats.dram_writebacks += 1
            self.bandwidth.transfer(self.now, self.machine.line_bytes)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Flush all caches and clear prefetcher/bandwidth state."""
        self.l1.flush()
        self.l2.flush()
        self.llc.flush()
        self._inflight.clear()
        self._wc_buffer.clear()
        self.prefetcher.reset()
        self.bandwidth.reset()
        self.now = 0.0
