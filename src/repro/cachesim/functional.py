"""Functional (timing-free) cache simulation.

Plays the role of the Pin-based functional simulator the paper uses as
ground truth (paper §IV): it simulates one cache level over the *demand*
accesses of a trace and reports exact per-instruction miss counts.  Both
Table I (prefetch coverage) and the StatStack validation experiment
compare model output against this simulator.
"""

from __future__ import annotations

import numpy as np

from repro.cachesim.lru import LRUCache
from repro.cachesim.stats import PCStats
from repro.config import CacheConfig
from repro.trace.events import MemoryTrace

__all__ = ["FunctionalCacheSim", "simulate_miss_ratios"]


class FunctionalCacheSim:
    """Exact per-PC hit/miss simulation of a single cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.cache = LRUCache(config)
        self.stats = PCStats()

    def run(self, trace: MemoryTrace, honor_prefetches: bool = False) -> PCStats:
        """Simulate ``trace``; returns per-PC demand stats.

        With ``honor_prefetches=False`` (default) software prefetch
        events are ignored — the ground-truth simulator observes the
        original, unoptimised program, exactly like the paper's Pin
        tool.  With ``honor_prefetches=True`` prefetch events install
        their line (timing-free), which measures how many demand misses
        a prefetch plan *removes* — the paper's coverage metric.
        """
        view = trace if honor_prefetches else trace.demand_only()
        lines = view.line_addr(self.config.line_bytes)
        pcs = view.pc
        is_demand = view.demand_mask
        cache = self.cache
        miss = np.zeros(len(view), dtype=bool)
        for i in range(len(view)):
            line = int(lines[i])
            if is_demand[i]:
                if not cache.lookup(line):
                    miss[i] = True
                    cache.install(line)
            elif not cache.contains(line):
                cache.install(line)
        self.stats.record_bulk(pcs[is_demand], miss[is_demand])
        return self.stats

    def miss_ratio(self) -> float:
        """Overall demand miss ratio observed so far."""
        return self.stats.overall_miss_ratio()


def simulate_miss_ratios(
    trace: MemoryTrace,
    config: CacheConfig,
) -> tuple[float, dict[int, float], PCStats]:
    """Convenience wrapper: run a functional simulation of one level.

    Returns ``(overall_miss_ratio, per_pc_miss_ratio, raw_stats)``.
    """
    sim = FunctionalCacheSim(config)
    stats = sim.run(trace)
    per_pc = {int(pc): stats.miss_ratio(int(pc)) for pc in stats.accesses}
    return stats.overall_miss_ratio(), per_pc, stats
