"""Functional (timing-free) cache simulation.

Plays the role of the Pin-based functional simulator the paper uses as
ground truth (paper §IV): it simulates one cache level over the *demand*
accesses of a trace and reports exact per-instruction miss counts.  Both
Table I (prefetch coverage) and the StatStack validation experiment
compare model output against this simulator.

Two interchangeable backends implement the simulation (see
``docs/performance.md``):

* ``"reference"`` — the original per-event loop over the dict-based
  :class:`~repro.cachesim.lru.LRUCache`;
* ``"fast"`` — the batched :meth:`FastLRUCache.access_batch
  <repro.cachesim.fastlru.FastLRUCache.access_batch>` kernel, which
  processes the whole trace as arrays and is bit-identical by
  construction *and* by test (``tests/test_sim_backend_diff.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import obs
from repro.cachesim.fastlru import FastLRUCache
from repro.cachesim.lru import LRUCache
from repro.cachesim.options import resolve_options
from repro.cachesim.stats import PCStats
from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.trace.events import MemoryTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.statstack.mrc import MissRatioCurve

__all__ = [
    "FunctionalCacheSim",
    "simulate_miss_ratios",
    "fully_associative_config",
    "simulate_miss_ratio_curve",
]


class FunctionalCacheSim:
    """Exact per-PC hit/miss simulation of a single cache level.

    Parameters
    ----------
    config:
        Cache geometry.  ``config.backend`` (when set) selects the
        simulation backend for this level.
    backend:
        Explicit backend override: ``"reference"`` or ``"fast"``; by
        default the config's choice, falling back to the process-wide
        default (:func:`repro.cachesim.options.set_default_options` —
        precedence explicit > spec > default).
    """

    def __init__(self, config: CacheConfig, backend: str | None = None) -> None:
        self.config = config
        self.backend = resolve_options(
            backend, getattr(config, "backend", None)
        ).backend
        self.cache = (
            FastLRUCache(config) if self.backend == "fast" else LRUCache(config)
        )
        self.stats = PCStats()
        #: Per-event miss vector of the most recent :meth:`run` (over the
        #: simulated view: demand-only unless ``honor_prefetches``).
        self.last_miss: np.ndarray = np.zeros(0, dtype=bool)
        #: Eviction victims of the most recent :meth:`run` in program
        #: order (populated only with ``collect_victims=True``).
        self.last_victims: np.ndarray = np.empty(0, dtype=np.int64)

    def run(
        self,
        trace: MemoryTrace,
        honor_prefetches: bool = False,
        collect_victims: bool = False,
    ) -> PCStats:
        """Simulate ``trace``; returns per-PC demand stats.

        With ``honor_prefetches=False`` (default) software prefetch
        events are ignored — the ground-truth simulator observes the
        original, unoptimised program, exactly like the paper's Pin
        tool.  With ``honor_prefetches=True`` prefetch events install
        their line (timing-free) and, like a real prefetch hitting in
        the cache, *refresh the LRU recency* of an already-resident
        line — which measures how many demand misses a prefetch plan
        removes, the paper's coverage metric.

        ``collect_victims`` additionally records evicted line numbers in
        program order on :attr:`last_victims` (differential testing).
        """
        view = trace if honor_prefetches else trace.demand_only()
        lines = view.line_addr(self.config.line_bytes)
        pcs = view.pc
        is_demand = view.demand_mask
        with obs.span(
            "cachesim.functional",
            backend=self.backend,
            level=self.config.name,
            events=len(view),
        ):
            if self.backend == "fast":
                miss, victims = self.cache.access_batch(
                    lines, collect_victims=collect_victims
                )
            else:
                miss, victims = self._run_reference(
                    lines, is_demand, collect_victims
                )
            if obs.enabled():
                obs.metrics().counter(f"sim.functional.events.{self.backend}").inc(
                    len(view)
                )
        self.last_miss = miss
        self.last_victims = victims
        self.stats.record_bulk(pcs[is_demand], miss[is_demand])
        return self.stats

    def _run_reference(
        self, lines: np.ndarray, is_demand: np.ndarray, collect_victims: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-event oracle loop over the dict-based LRU cache.

        Demand and prefetch events have identical cache-state effects —
        a recency-refreshing probe, install on miss (a prefetch that
        hits a resident line promotes it to MRU, like real hardware) —
        they differ only in which rows feed the per-PC stats, which the
        caller filters.  Kept in the original one-event-at-a-time form
        on purpose: this is the oracle the fast backend is checked
        against, so clarity beats speed here.
        """
        cache = self.cache
        miss = np.zeros(len(lines), dtype=bool)
        victims: list[int] = []
        for i in range(len(lines)):
            line = int(lines[i])
            if is_demand[i]:
                if not cache.lookup(line):
                    miss[i] = True
                    victim = cache.install(line)
                    if collect_victims and victim is not None:
                        victims.append(victim[0])
            elif not cache.lookup(line):
                # Prefetch miss: fetch and install the line (timing-free).
                miss[i] = True
                victim = cache.install(line)
                if collect_victims and victim is not None:
                    victims.append(victim[0])
        return miss, np.asarray(victims, dtype=np.int64)

    def miss_ratio(self) -> float:
        """Overall demand miss ratio observed so far."""
        return self.stats.overall_miss_ratio()


def fully_associative_config(
    size_bytes: int,
    line_bytes: int = 64,
    name: str = "FA",
    backend: str | None = None,
) -> CacheConfig:
    """A fully associative cache of ``size_bytes`` (``ways == num_lines``).

    This is the geometry StatStack models — one LRU stack, no set
    conflicts — so the conformance harness simulates it when comparing
    model output against exact simulation.
    """
    if size_bytes <= 0 or size_bytes % line_bytes:
        raise SimulationError(
            f"size_bytes must be a positive multiple of line_bytes, got {size_bytes}"
        )
    return CacheConfig(
        name=name,
        size_bytes=size_bytes,
        ways=size_bytes // line_bytes,
        line_bytes=line_bytes,
        backend=backend,
    )


def simulate_miss_ratio_curve(
    trace: MemoryTrace,
    sizes_bytes: Sequence[int] | np.ndarray,
    line_bytes: int = 64,
    backend: str | None = None,
) -> "MissRatioCurve":
    """Exact fully-associative LRU miss-ratio curve of ``trace``.

    One fresh :class:`FunctionalCacheSim` per size — the simulated
    ground truth the StatStack curves are validated against (paper
    Fig. 3 / §IV).  Returns a
    :class:`~repro.statstack.mrc.MissRatioCurve` over ``sizes_bytes``.
    """
    from repro.statstack.mrc import MissRatioCurve

    demand = trace.demand_only()
    ratios = []
    with obs.span("cachesim.mrc", sizes=len(sizes_bytes), events=len(demand)):
        for size in sizes_bytes:
            sim = FunctionalCacheSim(
                fully_associative_config(int(size), line_bytes), backend=backend
            )
            stats = sim.run(demand)
            ratios.append(stats.overall_miss_ratio())
    return MissRatioCurve(np.asarray(sizes_bytes, dtype=np.int64), np.array(ratios))


def simulate_miss_ratios(
    trace: MemoryTrace,
    config: CacheConfig,
) -> tuple[float, dict[int, float], PCStats]:
    """Convenience wrapper: run a functional simulation of one level.

    Returns ``(overall_miss_ratio, per_pc_miss_ratio, raw_stats)``.
    """
    sim = FunctionalCacheSim(config)
    stats = sim.run(trace)
    per_pc = {int(pc): stats.miss_ratio(int(pc)) for pc in stats.accesses}
    return stats.overall_miss_ratio(), per_pc, stats
