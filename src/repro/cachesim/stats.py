"""Statistics containers for cache and timing simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PCStats", "LevelStats", "RunStats"]


class PCStats:
    """Per static-instruction (PC) access and miss counters.

    Backed by plain dicts because PC populations are small (tens to a few
    hundred static memory instructions per workload model) while access
    counts are large; the hot path is two dict updates per event.
    """

    __slots__ = ("accesses", "misses")

    def __init__(self) -> None:
        self.accesses: dict[int, int] = {}
        self.misses: dict[int, int] = {}

    def record(self, pc: int, miss: bool) -> None:
        """Count one access (and optionally one miss) for ``pc``."""
        self.accesses[pc] = self.accesses.get(pc, 0) + 1
        if miss:
            self.misses[pc] = self.misses.get(pc, 0) + 1

    def record_bulk(self, pc: np.ndarray, miss: np.ndarray) -> None:
        """Vectorised accumulation from parallel pc / miss arrays."""
        pcs, counts = np.unique(pc, return_counts=True)
        for p, c in zip(pcs.tolist(), counts.tolist()):
            self.accesses[p] = self.accesses.get(p, 0) + c
        if miss.any():
            pcs_m, counts_m = np.unique(pc[miss], return_counts=True)
            for p, c in zip(pcs_m.tolist(), counts_m.tolist()):
                self.misses[p] = self.misses.get(p, 0) + c

    def miss_ratio(self, pc: int) -> float:
        """Miss ratio of one PC (0.0 if never seen)."""
        acc = self.accesses.get(pc, 0)
        if not acc:
            return 0.0
        return self.misses.get(pc, 0) / acc

    def total_accesses(self) -> int:
        return sum(self.accesses.values())

    def total_misses(self) -> int:
        return sum(self.misses.values())

    def overall_miss_ratio(self) -> float:
        acc = self.total_accesses()
        return self.total_misses() / acc if acc else 0.0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (pcs, accesses, misses) as aligned sorted arrays."""
        pcs = np.array(sorted(self.accesses), dtype=np.int64)
        acc = np.array([self.accesses[p] for p in pcs], dtype=np.int64)
        mis = np.array([self.misses.get(int(p), 0) for p in pcs], dtype=np.int64)
        return pcs, acc, mis


@dataclass
class LevelStats:
    """Demand hit/miss counters for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class RunStats:
    """Aggregate result of one single-core simulated run.

    Attributes
    ----------
    cycles:
        Total simulated core cycles, including stalls.
    instructions:
        Retired instructions (memory + non-memory); supplied by the
        workload model, used for CPI-style reporting.
    l1, l2, llc:
        Demand-access hit/miss counters per level.
    pc_l1:
        Per-PC L1 demand accesses/misses (coverage evaluation).
    sw_prefetches:
        Software prefetch instructions executed.
    sw_useful / sw_useless / sw_late:
        Prefetched lines that saw a demand hit before eviction; were
        evicted untouched; or were still in flight when demanded.
    hw_prefetches:
        Fills initiated by the hardware prefetcher model.
    hw_useful / hw_useless:
        As above, for hardware-prefetched lines.
    dram_fills:
        Cache lines fetched from DRAM (demand + all prefetch kinds).
    nta_fills:
        The subset of ``dram_fills`` brought in by ``PREFETCHNTA`` —
        lines that never occupy L2/LLC (needed by the shared-LLC
        contention model to compute pollution rates).
    dram_writebacks:
        Dirty lines written back to DRAM.
    nt_store_writes:
        Lines written by non-temporal stores (write-combined, no fill).
    line_bytes:
        Line size used to convert fills to bytes.
    """

    cycles: float = 0.0
    instructions: int = 0
    l1: LevelStats = field(default_factory=LevelStats)
    l2: LevelStats = field(default_factory=LevelStats)
    llc: LevelStats = field(default_factory=LevelStats)
    pc_l1: PCStats = field(default_factory=PCStats)
    sw_prefetches: int = 0
    sw_useful: int = 0
    sw_useless: int = 0
    sw_late: int = 0
    hw_prefetches: int = 0
    hw_useful: int = 0
    hw_useless: int = 0
    dram_fills: int = 0
    nta_fills: int = 0
    dram_writebacks: int = 0
    nt_store_writes: int = 0
    line_bytes: int = 64

    @property
    def dram_bytes(self) -> int:
        """Total off-chip traffic in bytes (fills + writebacks + NT writes)."""
        return (
            self.dram_fills + self.dram_writebacks + self.nt_store_writes
        ) * self.line_bytes

    def bandwidth_gbs(self, freq_ghz: float) -> float:
        """Average off-chip bandwidth over the run in GB/s."""
        if self.cycles <= 0:
            return 0.0
        seconds = self.cycles / (freq_ghz * 1e9)
        return self.dram_bytes / seconds / 1e9

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def llc_insertions(self) -> int:
        """DRAM fills that were installed in the LLC (pollution rate)."""
        return self.dram_fills - self.nta_fills

    def prefetch_accuracy(self) -> float:
        """Fraction of completed software prefetches that proved useful."""
        done = self.sw_useful + self.sw_useless
        return self.sw_useful / done if done else 0.0
