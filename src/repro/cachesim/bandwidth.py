"""Off-chip bandwidth / memory-controller contention model.

A real memory controller moves a bounded number of bytes per cycle.
:class:`BandwidthModel` enforces that bound with a single-server
occupancy queue: every off-chip transfer reserves a slot of
``n_bytes / peak_bytes_per_cycle`` cycles that starts no earlier than the
previous transfer finished.  When offered load approaches the peak, slots
queue up and *everyone* sharing the controller waits longer — the
mechanism behind the paper's multicore results, where an inaccurate
prefetcher that fetches twice the bytes taxes its neighbours.

The model also keeps an exponentially weighted moving average of
bytes-per-cycle so hardware prefetchers can observe utilisation and
throttle (paper §I notes commodity parts do this, yet still waste
traffic).
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["BandwidthModel"]


class BandwidthModel:
    """Shared memory-controller queue and utilisation tracker.

    Parameters
    ----------
    peak_bytes_per_cycle:
        Achievable off-chip bytes per core cycle (from
        :meth:`repro.config.MachineConfig.bytes_per_cycle`).
    window_cycles:
        Time constant of the utilisation EWMA.  Shorter windows react to
        bursts; the default (20k cycles) smooths over loop iterations.
    """

    __slots__ = ("peak", "window", "_free_time", "_ewma_bpc", "_last_time", "total_bytes", "total_transfers")

    def __init__(
        self,
        peak_bytes_per_cycle: float,
        window_cycles: float = 20_000.0,
    ) -> None:
        if peak_bytes_per_cycle <= 0:
            raise ConfigError("peak_bytes_per_cycle must be positive")
        if window_cycles <= 0:
            raise ConfigError("window_cycles must be positive")
        self.peak = peak_bytes_per_cycle
        self.window = window_cycles
        self._free_time = 0.0
        self._ewma_bpc = 0.0
        self._last_time = 0.0
        self.total_bytes = 0
        self.total_transfers = 0

    # ------------------------------------------------------------------
    # queue
    # ------------------------------------------------------------------

    def transfer(self, now: float, n_bytes: int) -> tuple[float, float]:
        """Reserve a controller slot for ``n_bytes`` requested at ``now``.

        Returns ``(start_time, duration)``: the transfer occupies the
        controller during ``[start_time, start_time + duration)``, with
        ``start_time >= now`` delayed behind earlier transfers.  Callers
        add their DRAM access latency on top to get data arrival.
        """
        if n_bytes < 0:
            raise ConfigError("n_bytes must be non-negative")
        start = now if now > self._free_time else self._free_time
        duration = n_bytes / self.peak
        self._free_time = start + duration
        self.total_bytes += n_bytes
        self.total_transfers += 1
        self._update_ewma(now, n_bytes)
        return start, duration

    def charge_batch(
        self, now: float, n_bytes: int, count: int
    ) -> list[tuple[float, float]]:
        """Reserve ``count`` consecutive slots of ``n_bytes`` at ``now``.

        Batch counterpart of :meth:`transfer` for callers that issue a
        burst of same-size transfers at one instant (writeback drains,
        batched fill accounting).  Exactly equivalent to calling
        :meth:`transfer` ``count`` times — same slots, same totals, same
        EWMA trajectory — so it can replace scalar loops without
        perturbing bit-identical statistics.
        """
        if count < 0:
            raise ConfigError("count must be non-negative")
        return [self.transfer(now, n_bytes) for _ in range(count)]

    def queue_delay(self, now: float) -> float:
        """Cycles a transfer requested at ``now`` would wait for a slot."""
        return max(0.0, self._free_time - now)

    # ------------------------------------------------------------------
    # utilisation
    # ------------------------------------------------------------------

    def _update_ewma(self, now: float, n_bytes: int) -> None:
        now = max(now, self._last_time)
        dt = now - self._last_time
        if dt > 0:
            decay = 1.0 - min(dt / self.window, 1.0)
            self._ewma_bpc *= decay
            self._last_time = now
        self._ewma_bpc += n_bytes / self.window

    def utilisation(self) -> float:
        """Smoothed utilisation ``rho`` in [0, 1] for throttling decisions."""
        return min(self._ewma_bpc / self.peak, 1.0)

    def achieved_gbs(self, cycles: float, freq_ghz: float) -> float:
        """Average achieved bandwidth over ``cycles`` in GB/s."""
        if cycles <= 0:
            return 0.0
        seconds = cycles / (freq_ghz * 1e9)
        return self.total_bytes / seconds / 1e9

    def reset(self) -> None:
        """Clear all state (between independent runs)."""
        self._free_time = 0.0
        self._ewma_bpc = 0.0
        self._last_time = 0.0
        self.total_bytes = 0
        self.total_transfers = 0
