"""Consolidated simulation options (:class:`SimOptions`).

Before this module, backend selection was scattered over four knobs —
``CacheConfig.backend``, ``MachineConfig.sim_backend``, the CLI's
``--sim-backend`` flag and :func:`repro.cachesim.backend.set_default_backend`
— each with its own plumbing.  :class:`SimOptions` is the single frozen
carrier for all of them, resolved with one documented precedence:

1. **explicit argument** — ``SimOptions`` (or a bare backend string)
   passed to a simulator constructor;
2. **spec** — the config object's field (``CacheConfig.backend`` /
   ``MachineConfig.sim_backend``) when not ``None``;
3. **process default** — :func:`set_default_options`, wired to
   ``repro.api.configure(sim_options=...)`` and the CLI, and shipped to
   engine worker processes.

The migration is complete: the legacy :mod:`repro.cachesim.backend`
shim module and the ``repro.api.configure(sim_backend=...)`` kwarg are
gone, and the removed names raise :class:`~repro.errors.ExperimentError`
with a pointer here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = [
    "BACKENDS",
    "SimOptions",
    "validate_backend",
    "get_default_options",
    "set_default_options",
    "resolve_options",
]

#: Valid backend names.
BACKENDS = ("reference", "fast")


def validate_backend(name: str | None) -> None:
    """Raise :class:`~repro.errors.ConfigError` for unknown backend names.

    ``None`` is accepted and means "defer to the next precedence level".
    """
    if name is not None and name not in BACKENDS:
        raise ConfigError(f"unknown sim backend {name!r}; valid: {BACKENDS}")


@dataclass(frozen=True)
class SimOptions:
    """Frozen bundle of simulation-execution options.

    Parameters
    ----------
    backend:
        Cache-simulation backend: ``"reference"`` (dict-based oracle),
        ``"fast"`` (array-native, bit-identical), or ``None`` to defer
        to the spec / process default.
    batch_hierarchy:
        Allow :class:`~repro.cachesim.hierarchy.CacheHierarchy` to use
        the batched whole-hierarchy fast path when the backend is
        ``"fast"`` and the attached prefetcher supports batch
        observation.  Disable to force the chunked per-event fast loop
        (debugging aid; results are bit-identical either way).
    """

    backend: str | None = None
    batch_hierarchy: bool = True

    def __post_init__(self) -> None:
        validate_backend(self.backend)

    def resolved_backend(self, spec_backend: str | None = None) -> str:
        """Resolve the backend by precedence (explicit > spec > default)."""
        validate_backend(spec_backend)
        if self.backend is not None:
            return self.backend
        if spec_backend is not None:
            return spec_backend
        return _DEFAULT.backend or "reference"


#: Process-wide default options (precedence level 3).
_DEFAULT = SimOptions(backend="reference")


def get_default_options() -> SimOptions:
    """The process-wide default :class:`SimOptions`."""
    return _DEFAULT


def set_default_options(options: SimOptions) -> SimOptions:
    """Install process-wide default options; returns the previous ones.

    A ``None`` backend in ``options`` is pinned to ``"reference"`` so
    the default is always fully resolved.
    """
    global _DEFAULT
    if not isinstance(options, SimOptions):
        raise ConfigError(f"expected SimOptions, got {type(options).__name__}")
    previous = _DEFAULT
    if options.backend is None:
        options = replace(options, backend="reference")
    _DEFAULT = options
    return previous


def resolve_options(
    explicit: "SimOptions | str | None",
    spec_backend: str | None = None,
) -> SimOptions:
    """Resolve an explicit argument against spec and process default.

    ``explicit`` may be a full :class:`SimOptions`, a bare backend name
    (the classic ``backend="fast"`` constructor argument), or ``None``.
    The result always carries a concrete backend name.
    """
    if explicit is None:
        validate_backend(spec_backend)
        if spec_backend is not None:
            return replace(_DEFAULT, backend=spec_backend)
        return replace(_DEFAULT, backend=_DEFAULT.backend or "reference")
    if isinstance(explicit, str):
        validate_backend(explicit)
        return replace(_DEFAULT, backend=explicit)
    if not isinstance(explicit, SimOptions):
        raise ConfigError(
            f"expected SimOptions, backend name or None, got {type(explicit).__name__}"
        )
    return replace(explicit, backend=explicit.resolved_backend(spec_backend))
