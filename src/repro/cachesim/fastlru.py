"""Array-native exact set-associative LRU cache (the "fast" backend).

:class:`FastLRUCache` keeps the whole cache state in three NumPy
matrices of shape ``(num_sets, ways)``:

* ``tags``  — resident line number per way (``-1`` = empty);
* ``stamp`` — monotone access timestamp per way (``-1`` = empty), so the
  LRU victim of a set is simply ``argmin(stamp)`` over the row and
  empty ways are filled before anything is evicted;
* ``flags`` — the same per-line metadata bits as
  :class:`~repro.cachesim.lru.LRUCache`.

The scalar API (``lookup`` / ``install`` / ``invalidate`` …) mirrors the
dict-based reference cache operation for operation, which is what the
differential tests exercise.  The speed comes from
:meth:`access_batch`: it simulates a whole *array* of accesses under the
uniform "probe-and-promote, install on miss" semantics of the
functional simulator in one call.

Batch algorithm — set-wavefront
-------------------------------

Accesses to different sets are independent, and LRU order within a set
depends only on the *relative* order of that set's accesses.  So the
batch kernel groups the access stream by set (one stable ``argsort``)
and then processes *rounds*: round ``r`` handles the ``r``-th access of
every set simultaneously with a handful of vectorised operations
(an equality matrix against the gathered tag rows for hit detection, a
batched ``argmin`` over the stamp rows for eviction).  Timestamps are
the original trace positions, which preserves per-set access order, so
the result is bit-identical to the reference simulator — the
differential suite (``tests/test_sim_backend_diff.py``) enforces this.

A trace of ``n`` events over ``S`` populated sets costs ``O(n/S)``
rounds of ``O(S·W)`` array work.  When too few sets remain active for
array work to pay off (skewed traces, tiny test caches), the kernel
finishes the tail with an optimised per-set dict loop and writes the
state back — exactness is never traded for speed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config import CacheConfig
from repro.errors import SimulationError

__all__ = ["FastLRUCache"]

#: Tag value marking an empty way.
EMPTY = -1

#: Minimum number of concurrently active sets for a wavefront round to
#: beat the scalar dict loop; below this the batch kernel switches to
#: the per-set scalar tail.
MIN_WAVEFRONT_SETS = 24


class FastLRUCache:
    """Exact set-associative LRU over NumPy state matrices.

    Drop-in behavioural replacement for
    :class:`~repro.cachesim.lru.LRUCache` (same hit/miss decisions, same
    eviction victims, same flag semantics), plus the vectorised
    :meth:`access_batch` used by the functional simulator's fast
    backend.
    """

    __slots__ = ("config", "ways", "tags", "stamp", "flags", "_set_mask", "_clock")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.ways = config.ways
        n_sets = config.num_sets
        self.tags = np.full((n_sets, config.ways), EMPTY, dtype=np.int64)
        self.stamp = np.full((n_sets, config.ways), EMPTY, dtype=np.int64)
        self.flags = np.zeros((n_sets, config.ways), dtype=np.int64)
        self._set_mask = n_sets - 1
        self._clock = 0

    # ------------------------------------------------------------------
    # scalar operations (reference-compatible)
    # ------------------------------------------------------------------

    def _find(self, line: int) -> tuple[int, int]:
        """(set index, way index) of a resident line; way is -1 on miss."""
        s = line & self._set_mask
        hit = np.nonzero(self.tags[s] == line)[0]
        return (s, int(hit[0])) if hit.size else (s, -1)

    def lookup(self, line: int, set_flags: int = 0) -> bool:
        """Probe for ``line``; on hit, refresh LRU and OR in ``set_flags``."""
        s, w = self._find(line)
        if w < 0:
            return False
        self.stamp[s, w] = self._clock
        self._clock += 1
        if set_flags:
            self.flags[s, w] |= set_flags
        return True

    def touch_flags(self, line: int, set_flags: int) -> bool:
        """OR flags into a resident line *without* refreshing LRU order."""
        s, w = self._find(line)
        if w < 0:
            return False
        self.flags[s, w] |= set_flags
        return True

    def install(self, line: int, flags: int = 0) -> tuple[int, int] | None:
        """Insert ``line`` as most-recently-used.

        Same contract as the reference cache: a resident line has its
        flags OR-merged and LRU refreshed; otherwise the least recently
        stamped way is (re)used and the evicted ``(line, flags)`` pair
        is returned when a valid line was displaced.
        """
        s, w = self._find(line)
        if w >= 0:
            self.flags[s, w] |= flags
            self.stamp[s, w] = self._clock
            self._clock += 1
            return None
        w = int(self.stamp[s].argmin())
        victim = None
        if self.tags[s, w] != EMPTY:
            victim = (int(self.tags[s, w]), int(self.flags[s, w]))
        self.tags[s, w] = line
        self.flags[s, w] = flags
        self.stamp[s, w] = self._clock
        self._clock += 1
        return victim

    def contains(self, line: int) -> bool:
        """Non-updating residency probe."""
        return self._find(line)[1] >= 0

    def peek_flags(self, line: int) -> int | None:
        """Flags of a resident line, or None (no LRU update)."""
        s, w = self._find(line)
        return int(self.flags[s, w]) if w >= 0 else None

    def invalidate(self, line: int) -> int | None:
        """Remove ``line``; returns its flags if it was resident."""
        s, w = self._find(line)
        if w < 0:
            return None
        flags = int(self.flags[s, w])
        self.tags[s, w] = EMPTY
        self.stamp[s, w] = EMPTY
        self.flags[s, w] = 0
        return flags

    # ------------------------------------------------------------------
    # batch kernel
    # ------------------------------------------------------------------

    def access_batch(
        self, lines: np.ndarray, collect_victims: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate an ordered stream of accesses in one call.

        Every access probes its set; a hit promotes the line to MRU, a
        miss installs it (evicting the LRU way of a full set).  This is
        the access semantics of the functional simulator for both
        demand and (post prefetch-recency fix) prefetch events.

        Returns ``(miss, victims)``: a boolean per-access miss vector
        and, when ``collect_victims``, the evicted line numbers in
        program order (empty array otherwise).
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = len(lines)
        miss = np.zeros(n, dtype=bool)
        if n == 0:
            return miss, np.empty(0, dtype=np.int64)
        sets = lines & self._set_mask
        if self.ways == 1:
            return self._access_batch_direct(lines, sets, miss, collect_victims)
        if self.ways == 2:
            return self._access_batch_2way(lines, sets, miss, collect_victims)
        # Set indices fit in 16 bits for every realistic geometry; the
        # narrower key radix-sorts in half the passes.
        key = sets.astype(np.uint16) if self._set_mask < (1 << 16) else sets
        order = np.argsort(key, kind="stable")
        sorted_sets = sets[order]
        uniq, start, counts = np.unique(
            sorted_sets, return_index=True, return_counts=True
        )
        clock = self._clock
        vic_pos: list[np.ndarray] = []
        vic_line: list[np.ndarray] = []

        # Touched sets become *columns*, ordered by access count
        # descending, so the sets still active at round ``r`` are always
        # a prefix — every per-round operand is a contiguous slice.
        n_groups = len(uniq)
        gorder = np.argsort(-counts, kind="stable")
        uniq_d = uniq[gorder]
        start_d = start[gorder]
        counts_d = counts[gorder]
        max_rounds = int(counts_d[0])
        # Active-column count per round: counts_d > r, prefix length.
        ks = np.searchsorted(-counts_d, -np.arange(1, max_rounds + 1), side="right")
        # Per-event round number and column, in sorted-by-set order.
        ranks = np.arange(n) - np.repeat(start, counts)
        inv = np.empty(n_groups, dtype=np.int64)
        inv[gorder] = np.arange(n_groups)
        col_sorted = np.repeat(inv, counts)

        # Working copy of the touched sets' state, in column order, so
        # round bodies index it directly instead of gathering rows.
        wtags = self.tags[uniq_d]
        wstamp = self.stamp[uniq_d]

        r_stop = 0
        band = 256
        while r_stop < max_rounds:
            k0 = int(ks[r_stop])
            if k0 < MIN_WAVEFRONT_SETS:
                break
            depth = min(band, max_rounds - r_stop)
            in_band = (ranks >= r_stop) & (ranks < r_stop + depth)
            rows = ranks[in_band] - r_stop
            cols = col_sorted[in_band]
            pos_band = order[in_band]
            posm = np.full((depth, k0), -1, dtype=np.int64)
            linesm = np.empty((depth, k0), dtype=np.int64)
            hitm = np.zeros((depth, k0), dtype=bool)
            posm[rows, cols] = pos_band
            linesm[rows, cols] = lines[pos_band]
            stampm = posm + clock
            ar = np.arange(k0)
            for r, k in enumerate(ks[r_stop:r_stop + depth].tolist()):
                line_r = linesm[r, :k]
                eq = wtags[:k] == line_r[:, None]
                way = eq.argmax(axis=1)
                hit = eq[ar[:k], way]
                vway = wstamp[:k].argmin(axis=1)
                fway = np.where(hit, way, vway)
                if collect_victims:
                    displaced = wtags[ar[:k], fway]
                    evict = ~hit & (displaced != EMPTY)
                    if evict.any():
                        vic_pos.append(posm[r, :k][evict])
                        vic_line.append(displaced[evict])
                # On a hit the selected way already holds the line, so
                # the tag write is an unconditional no-op there.
                wtags[ar[:k], fway] = line_r
                wstamp[ar[:k], fway] = stampm[r, :k]
                hitm[r, :k] = hit
            miss[pos_band] = ~hitm[rows, cols]
            r_stop += depth

        self.tags[uniq_d] = wtags
        self.stamp[uniq_d] = wstamp
        if r_stop < max_rounds:
            self._scalar_tail(
                lines, order, uniq_d, start_d, counts_d, r_stop, clock, miss,
                vic_pos if collect_victims else None, vic_line,
            )

        self._clock = clock + n
        if not collect_victims or not vic_pos:
            return miss, np.empty(0, dtype=np.int64)
        pos_all = np.concatenate(vic_pos)
        line_all = np.concatenate(vic_line)
        return miss, line_all[np.argsort(pos_all, kind="stable")]

    def _access_batch_direct(
        self,
        lines: np.ndarray,
        sets: np.ndarray,
        miss: np.ndarray,
        collect_victims: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Round-free batch path for direct-mapped caches (``ways == 1``).

        With one way per set an access hits iff the previous access to
        its set (or the pre-batch resident, for the first one) carried
        the same line, so the whole batch reduces to a grouped
        shift-and-compare with no sequential rounds at all.
        """
        n = len(lines)
        key = sets.astype(np.uint16) if self._set_mask < (1 << 16) else sets
        order = np.argsort(key, kind="stable")
        ss = sets[order]
        ls = lines[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(ss[1:], ss[:-1], out=first[1:])
        prev_line = np.empty(n, dtype=np.int64)
        prev_line[1:] = ls[:-1]
        prev_line[first] = self.tags[ss[first], 0]
        hit = ls == prev_line
        miss[order] = ~hit
        victims = np.empty(0, dtype=np.int64)
        if collect_victims:
            evict = ~hit & (prev_line != EMPTY)
            vpos = order[evict]
            victims = prev_line[evict][np.argsort(vpos, kind="stable")]
        last = np.empty(n, dtype=bool)
        last[:-1] = first[1:]
        last[-1] = True
        self.tags[ss[last], 0] = ls[last]
        self.stamp[ss[last], 0] = self._clock + order[last]
        self._clock += n
        return miss, victims

    def _access_batch_2way(
        self,
        lines: np.ndarray,
        sets: np.ndarray,
        miss: np.ndarray,
        collect_victims: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Round-free batch path for 2-way caches (the AMD L1 geometry).

        With two ways and promote-on-hit LRU, the state of a set before
        access ``i`` of its subsequence is fully determined by the line
        stream: the MRU line is the previous access's line, and the LRU
        line is the most recent *differing* line (or the pre-batch
        residents near the front of the subsequence).  Run boundaries
        (``maximum.accumulate`` over change points) give the "most
        recent differing line" for every access at once, so the whole
        batch collapses to ~30 O(n) vector passes — no rounds.
        """
        n = len(lines)
        key = sets.astype(np.uint16) if self._set_mask < (1 << 16) else sets
        order = np.argsort(key, kind="stable")
        ss = sets[order]
        ls = lines[order]
        idx = np.arange(n)
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(ss[1:], ss[:-1], out=first[1:])
        ls_prev = np.empty(n, dtype=np.int64)
        ls_prev[0] = EMPTY
        ls_prev[1:] = ls[:-1]
        # Group starts and line-run starts, per sorted position.
        gs = np.maximum.accumulate(np.where(first, idx, 0))
        change = first | (ls != ls_prev)
        rs = np.maximum.accumulate(np.where(change, idx, 0))

        # Pre-batch (MRU, LRU) residents of every touched set, spread to
        # per-access arrays through the group-start index.
        sets_f = ss[first]
        t0 = self.tags[sets_f, 0]
        t1 = self.tags[sets_f, 1]
        s0 = self.stamp[sets_f, 0]
        s1 = self.stamp[sets_f, 1]
        one_is_mru = s1 > s0
        mru0 = np.where(one_is_mru, t1, t0)
        lru0 = np.where(one_is_mru, t0, t1)
        # LRU resident after the group's *first* access: a hit on the
        # old MRU leaves the old LRU in place; anything else (hit on the
        # old LRU, or a miss evicting / filling past it) demotes the old
        # MRU.
        l0 = ls[first]
        pre_lru = np.where(l0 == mru0, lru0, mru0)
        spread = np.empty(n, dtype=np.int64)
        spread[first] = pre_lru
        pre_lru_acc = spread[gs]

        # State before access i: MRU = previous access's line, LRU = the
        # line of the run preceding i-1's run (i.e. the most recent line
        # that differs from the MRU), falling back to the pre-batch
        # residents when the whole group prefix is one run.
        rs_prev = np.empty(n, dtype=np.int64)
        rs_prev[0] = 0
        rs_prev[1:] = rs[:-1]
        has_diff = rs_prev > gs
        last_diff = ls[np.maximum(rs_prev - 1, 0)]
        mru_b = ls_prev.copy()
        mru_b[first] = mru0
        lru_b = np.where(has_diff, last_diff, pre_lru_acc)
        lru_b[first] = lru0
        hit = (ls == mru_b) | (ls == lru_b)
        miss[order] = ~hit
        victims = np.empty(0, dtype=np.int64)
        if collect_victims:
            # A miss evicts the LRU resident (when the set is full): for
            # a full 2-way set that is exactly ``lru_b``.
            evict = ~hit & (lru_b != EMPTY) & (mru_b != EMPTY)
            vpos = order[evict]
            victims = lru_b[evict][np.argsort(vpos, kind="stable")]

        # Write back the final state of every touched set.
        last = np.empty(n, dtype=bool)
        last[:-1] = first[1:]
        last[-1] = True
        e = idx[last]
        sets_l = ss[last]
        mru_f = ls[last]
        rs_l = rs[last]
        has_diff_f = rs_l > gs[last]
        q_e = np.maximum(rs_l - 1, 0)
        lru_f = np.where(has_diff_f, ls[q_e], pre_lru)
        old_lru_stamp = np.where(l0 == mru0, np.minimum(s0, s1), np.maximum(s0, s1))
        clock = self._clock
        lru_f_stamp = np.where(has_diff_f, clock + order[q_e], old_lru_stamp)
        self.tags[sets_l, 0] = mru_f
        self.stamp[sets_l, 0] = clock + order[e]
        self.tags[sets_l, 1] = lru_f
        self.stamp[sets_l, 1] = lru_f_stamp
        self._clock = clock + n
        return miss, victims

    def _scalar_tail(
        self,
        lines: np.ndarray,
        order: np.ndarray,
        uniq: np.ndarray,
        start: np.ndarray,
        counts: np.ndarray,
        r: int,
        clock: int,
        miss: np.ndarray,
        vic_pos: list[np.ndarray] | None,
        vic_line: list[np.ndarray],
    ) -> None:
        """Finish a batch set by set with dict-based LRU.

        Used when fewer than :data:`MIN_WAVEFRONT_SETS` sets are still
        active: each remaining set's state is lifted into an
        insertion-ordered dict (LRU → MRU), its remaining accesses are
        replayed with O(1) dict operations, and the result is written
        back into the state matrices.
        """
        ways = self.ways
        tags, stamp = self.tags, self.stamp
        for gi in np.nonzero(counts > r)[0].tolist():
            s = int(uniq[gi])
            row_tags = tags[s]
            row_stamp = stamp[s]
            resident: dict[int, int] = {}
            for w in np.argsort(row_stamp, kind="stable").tolist():
                if row_tags[w] != EMPTY:
                    resident[int(row_tags[w])] = int(row_stamp[w])
            positions = order[start[gi] + r : start[gi] + counts[gi]].tolist()
            t_pos: list[int] = []
            t_line: list[int] = []
            for p in positions:
                line = int(lines[p])
                if line in resident:
                    del resident[line]
                else:
                    miss[p] = True
                    if len(resident) >= ways:
                        victim = next(iter(resident))
                        del resident[victim]
                        if vic_pos is not None:
                            t_pos.append(p)
                            t_line.append(victim)
                resident[line] = clock + p
            row_tags[:] = EMPTY
            row_stamp[:] = EMPTY
            for w, (line, st) in enumerate(resident.items()):
                row_tags[w] = line
                row_stamp[w] = st
            if vic_pos is not None and t_pos:
                vic_pos.append(np.asarray(t_pos, dtype=np.int64))
                vic_line.append(np.asarray(t_line, dtype=np.int64))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(np.count_nonzero(self.tags != EMPTY))

    def resident_lines(self) -> Iterator[int]:
        """Iterate all resident line numbers (LRU→MRU within each set)."""
        for s in range(self.tags.shape[0]):
            row_tags = self.tags[s]
            for w in np.argsort(self.stamp[s], kind="stable").tolist():
                if row_tags[w] != EMPTY:
                    yield int(row_tags[w])

    def occupancy(self) -> float:
        """Fraction of capacity currently filled."""
        return len(self) / self.config.num_lines

    def flush(self) -> int:
        """Empty the cache; returns the number of lines dropped."""
        dropped = len(self)
        self.tags.fill(EMPTY)
        self.stamp.fill(EMPTY)
        self.flags.fill(0)
        self._clock = 0
        return dropped

    def check_invariants(self) -> None:
        """Verify structural invariants (test helper)."""
        for s in range(self.tags.shape[0]):
            row = self.tags[s]
            valid = row != EMPTY
            if (self.stamp[s][valid] < 0).any() or (
                self.stamp[s][~valid] != EMPTY
            ).any():
                raise SimulationError(f"set {s} has inconsistent stamps")
            resident = row[valid]
            if len(np.unique(resident)) != len(resident):
                raise SimulationError(f"set {s} holds a duplicate line")
            if ((resident & self._set_mask) != s).any():
                raise SimulationError(f"set {s} holds a line of another set")
            stamps = self.stamp[s][valid]
            if len(np.unique(stamps)) != len(stamps):
                raise SimulationError(f"set {s} has duplicate LRU stamps")
