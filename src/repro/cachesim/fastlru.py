"""Array-native exact set-associative LRU cache (the "fast" backend).

:class:`FastLRUCache` keeps the whole cache state in three NumPy
matrices of shape ``(num_sets, ways)``:

* ``tags``  — resident line number per way (``-1`` = empty);
* ``stamp`` — monotone access timestamp per way (``-1`` = empty), so the
  LRU victim of a set is simply ``argmin(stamp)`` over the row and
  empty ways are filled before anything is evicted;
* ``flags`` — the same per-line metadata bits as
  :class:`~repro.cachesim.lru.LRUCache`.

The scalar API (``lookup`` / ``install`` / ``invalidate`` …) mirrors the
dict-based reference cache operation for operation, which is what the
differential tests exercise.  The speed comes from
:meth:`access_batch`: it simulates a whole *array* of accesses under the
uniform "probe-and-promote, install on miss" semantics of the
functional simulator in one call.

Batch algorithm — set-wavefront
-------------------------------

Accesses to different sets are independent, and LRU order within a set
depends only on the *relative* order of that set's accesses.  So the
batch kernel groups the access stream by set (one stable ``argsort``)
and then processes *rounds*: round ``r`` handles the ``r``-th access of
every set simultaneously with a handful of vectorised operations
(an equality matrix against the gathered tag rows for hit detection, a
batched ``argmin`` over the stamp rows for eviction).  Timestamps are
the original trace positions, which preserves per-set access order, so
the result is bit-identical to the reference simulator — the
differential suite (``tests/test_sim_backend_diff.py``) enforces this.

A trace of ``n`` events over ``S`` populated sets costs ``O(n/S)``
rounds of ``O(S·W)`` array work.  When too few sets remain active for
array work to pay off (skewed traces, tiny test caches), the kernel
finishes the tail with an optimised per-set dict loop and writes the
state back — exactness is never traded for speed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config import CacheConfig
from repro.errors import SimulationError

__all__ = [
    "FastLRUCache",
    "OP_DEMAND",
    "OP_FILL",
    "OP_PROBE",
    "OP_TOUCH",
]

#: Tag value marking an empty way.
EMPTY = -1

#: Heterogeneous-op kinds for :meth:`FastLRUCache.ops_batch`.  Each op
#: reproduces one scalar access pattern of the cache hierarchy:
#:
#: * ``OP_DEMAND`` — probe; on hit promote to MRU and OR the op's flags
#:   in (``lookup``); on miss install with the op's flags, evicting the
#:   LRU way (``install``).  The demand path of every level.
#: * ``OP_FILL``   — probe; on hit do nothing (``contains``); on miss
#:   install with the op's flags.  Hardware-prefetch fills.
#: * ``OP_PROBE``  — pure residency probe, no state change.
#: * ``OP_TOUCH``  — on hit OR the op's flags in without refreshing LRU
#:   (``touch_flags``); on miss do nothing.  Dirty-victim write-back
#:   absorption.
OP_DEMAND, OP_FILL, OP_PROBE, OP_TOUCH = 0, 1, 2, 3

#: Minimum number of concurrently active sets for a wavefront round to
#: beat the scalar dict loop; below this the batch kernel switches to
#: the per-set scalar tail.  A round costs a roughly fixed ~25 numpy
#: dispatches regardless of width, so it only amortises when it retires
#: at least ~100 ops; skewed workloads (a few hot sets absorbing most
#: accesses) otherwise drag the wavefront through thousands of narrow
#: rounds that the dict replay handles at ~1 µs/op.
MIN_WAVEFRONT_SETS = 128


class FastLRUCache:
    """Exact set-associative LRU over NumPy state matrices.

    Drop-in behavioural replacement for
    :class:`~repro.cachesim.lru.LRUCache` (same hit/miss decisions, same
    eviction victims, same flag semantics), plus the vectorised
    :meth:`access_batch` used by the functional simulator's fast
    backend.
    """

    __slots__ = ("config", "ways", "tags", "stamp", "flags", "_set_mask", "_clock")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.ways = config.ways
        n_sets = config.num_sets
        self.tags = np.full((n_sets, config.ways), EMPTY, dtype=np.int64)
        self.stamp = np.full((n_sets, config.ways), EMPTY, dtype=np.int64)
        self.flags = np.zeros((n_sets, config.ways), dtype=np.int64)
        self._set_mask = n_sets - 1
        self._clock = 0

    # ------------------------------------------------------------------
    # scalar operations (reference-compatible)
    # ------------------------------------------------------------------

    def _find(self, line: int) -> tuple[int, int]:
        """(set index, way index) of a resident line; way is -1 on miss."""
        s = line & self._set_mask
        hit = np.nonzero(self.tags[s] == line)[0]
        return (s, int(hit[0])) if hit.size else (s, -1)

    def lookup(self, line: int, set_flags: int = 0) -> bool:
        """Probe for ``line``; on hit, refresh LRU and OR in ``set_flags``."""
        s, w = self._find(line)
        if w < 0:
            return False
        self.stamp[s, w] = self._clock
        self._clock += 1
        if set_flags:
            self.flags[s, w] |= set_flags
        return True

    def touch_flags(self, line: int, set_flags: int) -> bool:
        """OR flags into a resident line *without* refreshing LRU order."""
        s, w = self._find(line)
        if w < 0:
            return False
        self.flags[s, w] |= set_flags
        return True

    def install(self, line: int, flags: int = 0) -> tuple[int, int] | None:
        """Insert ``line`` as most-recently-used.

        Same contract as the reference cache: a resident line has its
        flags OR-merged and LRU refreshed; otherwise the least recently
        stamped way is (re)used and the evicted ``(line, flags)`` pair
        is returned when a valid line was displaced.
        """
        s, w = self._find(line)
        if w >= 0:
            self.flags[s, w] |= flags
            self.stamp[s, w] = self._clock
            self._clock += 1
            return None
        w = int(self.stamp[s].argmin())
        victim = None
        if self.tags[s, w] != EMPTY:
            victim = (int(self.tags[s, w]), int(self.flags[s, w]))
        self.tags[s, w] = line
        self.flags[s, w] = flags
        self.stamp[s, w] = self._clock
        self._clock += 1
        return victim

    def contains(self, line: int) -> bool:
        """Non-updating residency probe."""
        return self._find(line)[1] >= 0

    def peek_flags(self, line: int) -> int | None:
        """Flags of a resident line, or None (no LRU update)."""
        s, w = self._find(line)
        return int(self.flags[s, w]) if w >= 0 else None

    def invalidate(self, line: int) -> int | None:
        """Remove ``line``; returns its flags if it was resident."""
        s, w = self._find(line)
        if w < 0:
            return None
        flags = int(self.flags[s, w])
        self.tags[s, w] = EMPTY
        self.stamp[s, w] = EMPTY
        self.flags[s, w] = 0
        return flags

    # ------------------------------------------------------------------
    # batch kernel
    # ------------------------------------------------------------------

    def access_batch(
        self, lines: np.ndarray, collect_victims: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate an ordered stream of accesses in one call.

        Every access probes its set; a hit promotes the line to MRU, a
        miss installs it (evicting the LRU way of a full set).  This is
        the access semantics of the functional simulator for both
        demand and (post prefetch-recency fix) prefetch events.

        Returns ``(miss, victims)``: a boolean per-access miss vector
        and, when ``collect_victims``, the evicted line numbers in
        program order (empty array otherwise).
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = len(lines)
        miss = np.zeros(n, dtype=bool)
        if n == 0:
            return miss, np.empty(0, dtype=np.int64)
        sets = lines & self._set_mask
        if self.ways == 1:
            return self._access_batch_direct(lines, sets, miss, collect_victims)
        if self.ways == 2:
            return self._access_batch_2way(lines, sets, miss, collect_victims)
        # Set indices fit in 16 bits for every realistic geometry; the
        # narrower key radix-sorts in half the passes.
        key = sets.astype(np.uint16) if self._set_mask < (1 << 16) else sets
        order = np.argsort(key, kind="stable")
        sorted_sets = sets[order]
        uniq, start, counts = np.unique(
            sorted_sets, return_index=True, return_counts=True
        )
        clock = self._clock
        vic_pos: list[np.ndarray] = []
        vic_line: list[np.ndarray] = []

        # Touched sets become *columns*, ordered by access count
        # descending, so the sets still active at round ``r`` are always
        # a prefix — every per-round operand is a contiguous slice.
        n_groups = len(uniq)
        gorder = np.argsort(-counts, kind="stable")
        uniq_d = uniq[gorder]
        start_d = start[gorder]
        counts_d = counts[gorder]
        max_rounds = int(counts_d[0])
        # Active-column count per round: counts_d > r, prefix length.
        ks = np.searchsorted(-counts_d, -np.arange(1, max_rounds + 1), side="right")
        # Per-event round number and column, in sorted-by-set order.
        ranks = np.arange(n) - np.repeat(start, counts)
        inv = np.empty(n_groups, dtype=np.int64)
        inv[gorder] = np.arange(n_groups)
        col_sorted = np.repeat(inv, counts)

        # Working copy of the touched sets' state, in column order, so
        # round bodies index it directly instead of gathering rows.
        wtags = self.tags[uniq_d]
        wstamp = self.stamp[uniq_d]

        r_stop = 0
        band = 256
        while r_stop < max_rounds:
            k0 = int(ks[r_stop])
            if k0 < MIN_WAVEFRONT_SETS:
                break
            depth = min(band, max_rounds - r_stop)
            in_band = (ranks >= r_stop) & (ranks < r_stop + depth)
            rows = ranks[in_band] - r_stop
            cols = col_sorted[in_band]
            pos_band = order[in_band]
            posm = np.full((depth, k0), -1, dtype=np.int64)
            linesm = np.empty((depth, k0), dtype=np.int64)
            hitm = np.zeros((depth, k0), dtype=bool)
            posm[rows, cols] = pos_band
            linesm[rows, cols] = lines[pos_band]
            stampm = posm + clock
            ar = np.arange(k0)
            for r, k in enumerate(ks[r_stop:r_stop + depth].tolist()):
                line_r = linesm[r, :k]
                eq = wtags[:k] == line_r[:, None]
                way = eq.argmax(axis=1)
                hit = eq[ar[:k], way]
                vway = wstamp[:k].argmin(axis=1)
                fway = np.where(hit, way, vway)
                if collect_victims:
                    displaced = wtags[ar[:k], fway]
                    evict = ~hit & (displaced != EMPTY)
                    if evict.any():
                        vic_pos.append(posm[r, :k][evict])
                        vic_line.append(displaced[evict])
                # On a hit the selected way already holds the line, so
                # the tag write is an unconditional no-op there.
                wtags[ar[:k], fway] = line_r
                wstamp[ar[:k], fway] = stampm[r, :k]
                hitm[r, :k] = hit
            miss[pos_band] = ~hitm[rows, cols]
            r_stop += depth

        self.tags[uniq_d] = wtags
        self.stamp[uniq_d] = wstamp
        if r_stop < max_rounds:
            self._scalar_tail(
                lines, order, uniq_d, start_d, counts_d, r_stop, clock, miss,
                vic_pos if collect_victims else None, vic_line,
            )

        self._clock = clock + n
        if not collect_victims or not vic_pos:
            return miss, np.empty(0, dtype=np.int64)
        pos_all = np.concatenate(vic_pos)
        line_all = np.concatenate(vic_line)
        return miss, line_all[np.argsort(pos_all, kind="stable")]

    def _access_batch_direct(
        self,
        lines: np.ndarray,
        sets: np.ndarray,
        miss: np.ndarray,
        collect_victims: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Round-free batch path for direct-mapped caches (``ways == 1``).

        With one way per set an access hits iff the previous access to
        its set (or the pre-batch resident, for the first one) carried
        the same line, so the whole batch reduces to a grouped
        shift-and-compare with no sequential rounds at all.
        """
        n = len(lines)
        key = sets.astype(np.uint16) if self._set_mask < (1 << 16) else sets
        order = np.argsort(key, kind="stable")
        ss = sets[order]
        ls = lines[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(ss[1:], ss[:-1], out=first[1:])
        prev_line = np.empty(n, dtype=np.int64)
        prev_line[1:] = ls[:-1]
        prev_line[first] = self.tags[ss[first], 0]
        hit = ls == prev_line
        miss[order] = ~hit
        victims = np.empty(0, dtype=np.int64)
        if collect_victims:
            evict = ~hit & (prev_line != EMPTY)
            vpos = order[evict]
            victims = prev_line[evict][np.argsort(vpos, kind="stable")]
        last = np.empty(n, dtype=bool)
        last[:-1] = first[1:]
        last[-1] = True
        self.tags[ss[last], 0] = ls[last]
        self.stamp[ss[last], 0] = self._clock + order[last]
        self._clock += n
        return miss, victims

    def _access_batch_2way(
        self,
        lines: np.ndarray,
        sets: np.ndarray,
        miss: np.ndarray,
        collect_victims: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Round-free batch path for 2-way caches (the AMD L1 geometry).

        With two ways and promote-on-hit LRU, the state of a set before
        access ``i`` of its subsequence is fully determined by the line
        stream: the MRU line is the previous access's line, and the LRU
        line is the most recent *differing* line (or the pre-batch
        residents near the front of the subsequence).  Run boundaries
        (``maximum.accumulate`` over change points) give the "most
        recent differing line" for every access at once, so the whole
        batch collapses to ~30 O(n) vector passes — no rounds.
        """
        n = len(lines)
        key = sets.astype(np.uint16) if self._set_mask < (1 << 16) else sets
        order = np.argsort(key, kind="stable")
        ss = sets[order]
        ls = lines[order]
        idx = np.arange(n)
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(ss[1:], ss[:-1], out=first[1:])
        ls_prev = np.empty(n, dtype=np.int64)
        ls_prev[0] = EMPTY
        ls_prev[1:] = ls[:-1]
        # Group starts and line-run starts, per sorted position.
        gs = np.maximum.accumulate(np.where(first, idx, 0))
        change = first | (ls != ls_prev)
        rs = np.maximum.accumulate(np.where(change, idx, 0))

        # Pre-batch (MRU, LRU) residents of every touched set, spread to
        # per-access arrays through the group-start index.
        sets_f = ss[first]
        t0 = self.tags[sets_f, 0]
        t1 = self.tags[sets_f, 1]
        s0 = self.stamp[sets_f, 0]
        s1 = self.stamp[sets_f, 1]
        one_is_mru = s1 > s0
        mru0 = np.where(one_is_mru, t1, t0)
        lru0 = np.where(one_is_mru, t0, t1)
        # LRU resident after the group's *first* access: a hit on the
        # old MRU leaves the old LRU in place; anything else (hit on the
        # old LRU, or a miss evicting / filling past it) demotes the old
        # MRU.
        l0 = ls[first]
        pre_lru = np.where(l0 == mru0, lru0, mru0)
        spread = np.empty(n, dtype=np.int64)
        spread[first] = pre_lru
        pre_lru_acc = spread[gs]

        # State before access i: MRU = previous access's line, LRU = the
        # line of the run preceding i-1's run (i.e. the most recent line
        # that differs from the MRU), falling back to the pre-batch
        # residents when the whole group prefix is one run.
        rs_prev = np.empty(n, dtype=np.int64)
        rs_prev[0] = 0
        rs_prev[1:] = rs[:-1]
        has_diff = rs_prev > gs
        last_diff = ls[np.maximum(rs_prev - 1, 0)]
        mru_b = ls_prev.copy()
        mru_b[first] = mru0
        lru_b = np.where(has_diff, last_diff, pre_lru_acc)
        lru_b[first] = lru0
        hit = (ls == mru_b) | (ls == lru_b)
        miss[order] = ~hit
        victims = np.empty(0, dtype=np.int64)
        if collect_victims:
            # A miss evicts the LRU resident (when the set is full): for
            # a full 2-way set that is exactly ``lru_b``.
            evict = ~hit & (lru_b != EMPTY) & (mru_b != EMPTY)
            vpos = order[evict]
            victims = lru_b[evict][np.argsort(vpos, kind="stable")]

        # Write back the final state of every touched set.
        last = np.empty(n, dtype=bool)
        last[:-1] = first[1:]
        last[-1] = True
        e = idx[last]
        sets_l = ss[last]
        mru_f = ls[last]
        rs_l = rs[last]
        has_diff_f = rs_l > gs[last]
        q_e = np.maximum(rs_l - 1, 0)
        lru_f = np.where(has_diff_f, ls[q_e], pre_lru)
        old_lru_stamp = np.where(l0 == mru0, np.minimum(s0, s1), np.maximum(s0, s1))
        clock = self._clock
        lru_f_stamp = np.where(has_diff_f, clock + order[q_e], old_lru_stamp)
        self.tags[sets_l, 0] = mru_f
        self.stamp[sets_l, 0] = clock + order[e]
        self.tags[sets_l, 1] = lru_f
        self.stamp[sets_l, 1] = lru_f_stamp
        self._clock = clock + n
        return miss, victims

    def _scalar_tail(
        self,
        lines: np.ndarray,
        order: np.ndarray,
        uniq: np.ndarray,
        start: np.ndarray,
        counts: np.ndarray,
        r: int,
        clock: int,
        miss: np.ndarray,
        vic_pos: list[np.ndarray] | None,
        vic_line: list[np.ndarray],
    ) -> None:
        """Finish a batch set by set with dict-based LRU.

        Used when fewer than :data:`MIN_WAVEFRONT_SETS` sets are still
        active: each remaining set's state is lifted into an
        insertion-ordered dict (LRU → MRU), its remaining accesses are
        replayed with O(1) dict operations, and the result is written
        back into the state matrices.
        """
        ways = self.ways
        tags, stamp = self.tags, self.stamp
        for gi in np.nonzero(counts > r)[0].tolist():
            s = int(uniq[gi])
            row_tags = tags[s]
            row_stamp = stamp[s]
            resident: dict[int, int] = {}
            for w in np.argsort(row_stamp, kind="stable").tolist():
                if row_tags[w] != EMPTY:
                    resident[int(row_tags[w])] = int(row_stamp[w])
            positions = order[start[gi] + r : start[gi] + counts[gi]].tolist()
            t_pos: list[int] = []
            t_line: list[int] = []
            for p in positions:
                line = int(lines[p])
                if line in resident:
                    del resident[line]
                else:
                    miss[p] = True
                    if len(resident) >= ways:
                        victim = next(iter(resident))
                        del resident[victim]
                        if vic_pos is not None:
                            t_pos.append(p)
                            t_line.append(victim)
                resident[line] = clock + p
            row_tags[:] = EMPTY
            row_stamp[:] = EMPTY
            for w, (line, st) in enumerate(resident.items()):
                row_tags[w] = line
                row_stamp[w] = st
            if vic_pos is not None and t_pos:
                vic_pos.append(np.asarray(t_pos, dtype=np.int64))
                vic_line.append(np.asarray(t_line, dtype=np.int64))

    # ------------------------------------------------------------------
    # heterogeneous-op batch kernel (cache-hierarchy fast path)
    # ------------------------------------------------------------------

    def ops_batch(
        self,
        lines: np.ndarray,
        kinds: np.ndarray,
        oflags: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Apply an ordered stream of heterogeneous cache operations.

        Generalisation of :meth:`access_batch` for the hierarchy's fast
        path: every element of the stream carries an op kind (see
        :data:`OP_DEMAND` …) and a flags word, so one call replays the
        exact scalar sequence a cache level sees — demand lookups,
        hardware-prefetch fills, residency probes and dirty touches —
        with the same set-wavefront rounds and the same scalar-tail
        fallback as the homogeneous kernel.

        Returns ``(hit, prior, vic_idx, vic_line, vic_flags)``:

        * ``hit``      — per-op residency at probe time;
        * ``prior``    — the line's flags word *before* the op (0 on
          miss), for useful-prefetch accounting;
        * ``vic_idx`` / ``vic_line`` / ``vic_flags`` — evictions in
          stream order: the index of the op that installed over the
          victim, the victim line, and its flags at eviction.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        oflags = np.ascontiguousarray(oflags, dtype=np.int64)
        n = len(lines)
        hit = np.zeros(n, dtype=bool)
        prior = np.zeros(n, dtype=np.int64)
        empty_i = np.empty(0, dtype=np.int64)
        if n == 0:
            return hit, prior, empty_i, empty_i, empty_i
        if self.ways == 2 and n > 2 and not kinds.any():
            # Pure-demand stream on a 2-way cache (the L1 geometry of the
            # paper's AMD machine): round-free run-level algorithm.
            return self._ops_demand_2way(lines, oflags, hit, prior)
        sets = lines & self._set_mask
        key = sets.astype(np.uint16) if self._set_mask < (1 << 16) else sets
        order = np.argsort(key, kind="stable")
        sorted_sets = sets[order]
        uniq, start, counts = np.unique(
            sorted_sets, return_index=True, return_counts=True
        )
        clock = self._clock
        vic_i: list[np.ndarray] = []
        vic_l: list[np.ndarray] = []
        vic_f: list[np.ndarray] = []

        n_groups = len(uniq)
        gorder = np.argsort(-counts, kind="stable")
        uniq_d = uniq[gorder]
        start_d = start[gorder]
        counts_d = counts[gorder]
        max_rounds = int(counts_d[0])
        ks = np.searchsorted(-counts_d, -np.arange(1, max_rounds + 1), side="right")
        ranks = np.arange(n) - np.repeat(start, counts)
        inv = np.empty(n_groups, dtype=np.int64)
        inv[gorder] = np.arange(n_groups)
        col_sorted = np.repeat(inv, counts)

        wtags = self.tags[uniq_d]
        wstamp = self.stamp[uniq_d]
        wflags = self.flags[uniq_d]

        r_stop = 0
        band = 256
        while r_stop < max_rounds:
            k0 = int(ks[r_stop])
            if k0 < MIN_WAVEFRONT_SETS:
                break
            depth = min(band, max_rounds - r_stop)
            in_band = (ranks >= r_stop) & (ranks < r_stop + depth)
            rows = ranks[in_band] - r_stop
            cols = col_sorted[in_band]
            pos_band = order[in_band]
            posm = np.full((depth, k0), -1, dtype=np.int64)
            linesm = np.empty((depth, k0), dtype=np.int64)
            # Inactive cells default to a pure probe of an impossible
            # line, so round bodies need no activity masking.
            kindm = np.full((depth, k0), OP_PROBE, dtype=np.uint8)
            flagm = np.zeros((depth, k0), dtype=np.int64)
            hitm = np.zeros((depth, k0), dtype=bool)
            priorm = np.zeros((depth, k0), dtype=np.int64)
            posm[rows, cols] = pos_band
            linesm[rows, cols] = lines[pos_band]
            kindm[rows, cols] = kinds[pos_band]
            flagm[rows, cols] = oflags[pos_band]
            stampm = posm + clock
            ar = np.arange(k0)
            for r, k in enumerate(ks[r_stop:r_stop + depth].tolist()):
                a = ar[:k]
                line_r = linesm[r, :k]
                kind_r = kindm[r, :k]
                of_r = flagm[r, :k]
                eq = wtags[:k] == line_r[:, None]
                way = eq.argmax(axis=1)
                h = eq[a, way]
                hitm[r, :k] = h
                if h.any():
                    hv = a[h]
                    hw = way[h]
                    priorm[r, :k][h] = wflags[hv, hw]
                    orm = h & ((kind_r == OP_DEMAND) | (kind_r == OP_TOUCH))
                    if orm.any():
                        ov = a[orm]
                        ow = way[orm]
                        wflags[ov, ow] |= of_r[orm]
                    prom = h & (kind_r == OP_DEMAND)
                    if prom.any():
                        pv = a[prom]
                        wstamp[pv, way[prom]] = stampm[r, :k][prom]
                inst = ~h & (kind_r <= OP_FILL)
                if inst.any():
                    vway = wstamp[:k].argmin(axis=1)
                    iv = a[inst]
                    ivw = vway[inst]
                    displaced = wtags[iv, ivw]
                    evict = displaced != EMPTY
                    if evict.any():
                        vic_i.append(posm[r, :k][inst][evict])
                        vic_l.append(displaced[evict])
                        vic_f.append(wflags[iv, ivw][evict])
                    wtags[iv, ivw] = line_r[inst]
                    wflags[iv, ivw] = of_r[inst]
                    wstamp[iv, ivw] = stampm[r, :k][inst]
            hit[pos_band] = hitm[rows, cols]
            prior[pos_band] = priorm[rows, cols]
            r_stop += depth

        self.tags[uniq_d] = wtags
        self.stamp[uniq_d] = wstamp
        self.flags[uniq_d] = wflags
        if r_stop < max_rounds:
            self._ops_scalar_tail(
                lines, kinds, oflags, order, uniq_d, start_d, counts_d,
                r_stop, clock, hit, prior, vic_i, vic_l, vic_f,
            )

        self._clock = clock + n
        if not vic_i:
            return hit, prior, empty_i, empty_i, empty_i
        idx_all = np.concatenate(vic_i)
        line_all = np.concatenate(vic_l)
        flag_all = np.concatenate(vic_f)
        vorder = np.argsort(idx_all, kind="stable")
        return hit, prior, idx_all[vorder], line_all[vorder], flag_all[vorder]

    def _ops_demand_2way(
        self,
        lines: np.ndarray,
        oflags: np.ndarray,
        hit: np.ndarray,
        prior: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Round-free demand-only kernel for 2-way caches, with flags.

        Extends the :meth:`_access_batch_2way` run decomposition to the
        full :meth:`ops_batch` contract.  Group each set's accesses into
        *runs* of equal consecutive lines; then, before run ``j`` of a
        group, the MRU line is run ``j-1``'s line and the LRU line is
        run ``j-2``'s (with the pre-batch residents seeding ``j < 2``).
        Hence every non-first access of a run hits, a run's first access
        hits iff its line equals run ``j-2``'s, and a miss evicts run
        ``j-2``'s line.

        Flag words ride along *survival chains*: a hit at run ``j``
        continues the line's flags from run ``j-2``, a miss restarts
        them at the installing op's flags.  Chains therefore live inside
        the even/odd run subsequences of each group, and each flag bit
        reduces to a ``maximum.accumulate`` reachability scan at run
        level — no sequential rounds anywhere.
        """
        n = len(lines)
        sets = lines & self._set_mask
        key = sets.astype(np.uint16) if self._set_mask < (1 << 16) else sets
        order = np.argsort(key, kind="stable")
        ss = sets[order]
        ls = lines[order]
        of = oflags[order]
        idx = np.arange(n)
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(ss[1:], ss[:-1], out=first[1:])
        ls_prev = np.empty(n, dtype=np.int64)
        ls_prev[0] = EMPTY
        ls_prev[1:] = ls[:-1]
        change = first | (ls != ls_prev)
        rs = np.maximum.accumulate(np.where(change, idx, 0))

        # ---- run-level view ------------------------------------------
        rsi = np.nonzero(change)[0]
        n_runs = len(rsi)
        run_line = ls[rsi]
        run_first = first[rsi]
        run_pos0 = order[rsi]
        run_of = np.bitwise_or.reduceat(of, rsi)
        run_ar = np.arange(n_runs)
        gfr = np.maximum.accumulate(np.where(run_first, run_ar, 0))
        rj = run_ar - gfr

        # ---- pre-batch residents per group ---------------------------
        sets_f = ss[first]
        t0 = self.tags[sets_f, 0]
        t1 = self.tags[sets_f, 1]
        s0 = self.stamp[sets_f, 0]
        s1 = self.stamp[sets_f, 1]
        f0 = self.flags[sets_f, 0]
        f1 = self.flags[sets_f, 1]
        one_is_mru = s1 > s0
        mru0 = np.where(one_is_mru, t1, t0)
        lru0 = np.where(one_is_mru, t0, t1)
        f_mru0 = np.where(one_is_mru, f1, f0)
        f_lru0 = np.where(one_is_mru, f0, f1)
        l0 = run_line[run_first]
        hit_mru0 = l0 == mru0
        pre_lru = np.where(hit_mru0, lru0, mru0)
        f_pre = np.where(hit_mru0, f_lru0, f_mru0)
        old_lru_stamp = np.where(hit_mru0, np.minimum(s0, s1), np.maximum(s0, s1))

        # ---- run hit/miss, base seeds and victims --------------------
        gmap = np.cumsum(run_first) - 1  # run -> group
        run_hit = np.empty(n_runs, dtype=bool)
        seed_base = np.zeros(n_runs, dtype=np.int64)
        vic_line_r = np.full(n_runs, EMPTY, dtype=np.int64)
        vic_flags_r = np.zeros(n_runs, dtype=np.int64)

        b0 = rj == 0
        g_b0 = gmap[b0]
        l_b0 = run_line[b0]
        h_mru = l_b0 == mru0[g_b0]
        h_lru = l_b0 == lru0[g_b0]
        run_hit[b0] = h_mru | h_lru
        seed_base[b0] = np.where(h_mru, f_mru0[g_b0], np.where(h_lru, f_lru0[g_b0], 0))
        vic_line_r[b0] = lru0[g_b0]
        vic_flags_r[b0] = f_lru0[g_b0]

        b1 = rj == 1
        g_b1 = gmap[b1]
        h1 = run_line[b1] == pre_lru[g_b1]
        run_hit[b1] = h1
        seed_base[b1] = np.where(h1, f_pre[g_b1], 0)
        vic_line_r[b1] = pre_lru[g_b1]
        vic_flags_r[b1] = f_pre[g_b1]

        # rj >= 2: LRU before run j is run j-2's line, and chains link
        # even/odd run subsequences of each group.
        b2 = rj >= 2
        prev2_line = np.empty(n_runs, dtype=np.int64)
        prev2_line[2:] = run_line[:-2]
        prev2_line[:2] = EMPTY
        cont = b2 & (run_line == prev2_line)
        run_hit[b2] = cont[b2]
        vic_line_r[b2] = prev2_line[b2]

        # ---- flag chains via per-bit reachability scans --------------
        g_flags = np.empty(n_runs, dtype=np.int64)
        prev_g = np.zeros(n_runs, dtype=np.int64)
        all_bits = int(np.bitwise_or.reduce(run_of)) | int(
            np.bitwise_or.reduce(seed_base) if n_runs else 0
        )
        for p in (0, 1):
            sel = np.nonzero((rj & 1) == p)[0]
            if not len(sel):
                continue
            m = len(sel)
            cont_s = cont[sel]
            st = ~cont_s
            contrib = np.where(st, run_of[sel] | seed_base[sel], run_of[sel])
            kidx = np.arange(m)
            segstart = np.maximum.accumulate(np.where(st, kidx, 0))
            g_s = np.zeros(m, dtype=np.int64)
            bits = all_bits
            while bits:
                b = bits & -bits
                bits ^= b
                val = np.where((contrib & b) != 0, kidx, -1)
                acc = np.maximum.accumulate(val)
                g_s |= np.where(acc >= segstart, b, 0)
                # A hit's seed may carry bits the chain scan only sees
                # from the start element; reachability over the segment
                # covers them because seeds are injected at starts.
            g_flags[sel] = g_s
            pg = np.empty(m, dtype=np.int64)
            pg[0] = 0
            pg[1:] = g_s[:-1]
            prev_g[sel] = pg
        vic_flags_r[b2] = prev_g[b2]
        seed_eff = np.where(
            run_hit, np.where(b2, prev_g, seed_base), 0
        )

        # ---- per-access outputs --------------------------------------
        hit_sorted = ~change
        hit_sorted[rsi] = run_hit
        ob = int(np.bitwise_or.reduce(of))
        prior_part = np.zeros(n, dtype=np.int64)
        accp = np.empty(n, dtype=np.int64)
        bits = ob
        while bits:
            b = bits & -bits
            bits ^= b
            acc = np.maximum.accumulate(np.where((of & b) != 0, idx, -1))
            accp[0] = -1
            accp[1:] = acc[:-1]
            prior_part |= np.where(accp >= rs, b, 0)
        gmap_acc = np.cumsum(change) - 1
        prior_sorted = seed_eff[gmap_acc] | prior_part
        hit[order] = hit_sorted
        prior[order] = prior_sorted

        # ---- victims --------------------------------------------------
        vmask = ~run_hit & (vic_line_r != EMPTY)
        vic_idx = run_pos0[vmask]
        vic_line = vic_line_r[vmask]
        vic_flags = vic_flags_r[vmask]
        vo = np.argsort(vic_idx, kind="stable")

        # ---- state write-back ----------------------------------------
        clock = self._clock
        gstart = np.nonzero(run_first)[0]
        glast = np.empty(len(gstart), dtype=np.int64)
        glast[:-1] = gstart[1:] - 1
        glast[-1] = n_runs - 1
        run_end = np.empty(n_runs, dtype=np.int64)
        run_end[:-1] = rsi[1:] - 1
        run_end[-1] = n - 1
        two = glast > gstart
        glast_m1 = np.maximum(glast - 1, 0)
        mru_line_f = run_line[glast]
        mru_stamp_f = clock + order[run_end[glast]]
        mru_flags_f = g_flags[glast]
        lru_line_f = np.where(two, run_line[glast_m1], pre_lru)
        lru_stamp_f = np.where(
            two, clock + order[np.maximum(rsi[glast] - 1, 0)], old_lru_stamp
        )
        lru_flags_f = np.where(two, g_flags[glast_m1], f_pre)
        lru_empty = lru_line_f == EMPTY
        self.tags[sets_f, 0] = mru_line_f
        self.stamp[sets_f, 0] = mru_stamp_f
        self.flags[sets_f, 0] = mru_flags_f
        self.tags[sets_f, 1] = lru_line_f
        self.stamp[sets_f, 1] = np.where(lru_empty, EMPTY, lru_stamp_f)
        self.flags[sets_f, 1] = np.where(lru_empty, 0, lru_flags_f)
        self._clock = clock + n
        return hit, prior, vic_idx[vo], vic_line[vo], vic_flags[vo]

    def _ops_scalar_tail(
        self,
        lines: np.ndarray,
        kinds: np.ndarray,
        oflags: np.ndarray,
        order: np.ndarray,
        uniq: np.ndarray,
        start: np.ndarray,
        counts: np.ndarray,
        r: int,
        clock: int,
        hit: np.ndarray,
        prior: np.ndarray,
        vic_i: list[np.ndarray],
        vic_l: list[np.ndarray],
        vic_f: list[np.ndarray],
    ) -> None:
        """Finish an op stream set by set with dict-based LRU.

        Mirror of :meth:`_scalar_tail` for heterogeneous ops: each
        remaining set is lifted into an insertion-ordered dict (LRU →
        MRU, value ``[stamp, flags]``), replayed, and written back.
        """
        ways = self.ways
        tags, stamp, flags = self.tags, self.stamp, self.flags
        for gi in np.nonzero(counts > r)[0].tolist():
            s = int(uniq[gi])
            row_tags = tags[s]
            row_stamp = stamp[s]
            row_flags = flags[s]
            resident: dict[int, list[int]] = {}
            for w in np.argsort(row_stamp, kind="stable").tolist():
                if row_tags[w] != EMPTY:
                    resident[int(row_tags[w])] = [int(row_stamp[w]), int(row_flags[w])]
            positions = order[start[gi] + r : start[gi] + counts[gi]].tolist()
            t_idx: list[int] = []
            t_line: list[int] = []
            t_flag: list[int] = []
            for p in positions:
                line = int(lines[p])
                kd = int(kinds[p])
                ent = resident.get(line)
                if ent is not None:
                    hit[p] = True
                    prior[p] = ent[1]
                    if kd == OP_DEMAND:
                        del resident[line]
                        ent[0] = clock + p
                        ent[1] |= int(oflags[p])
                        resident[line] = ent
                    elif kd == OP_TOUCH:
                        ent[1] |= int(oflags[p])
                elif kd <= OP_FILL:
                    if len(resident) >= ways:
                        victim = next(iter(resident))
                        v_ent = resident.pop(victim)
                        t_idx.append(p)
                        t_line.append(victim)
                        t_flag.append(v_ent[1])
                    resident[line] = [clock + p, int(oflags[p])]
            row_tags[:] = EMPTY
            row_stamp[:] = EMPTY
            row_flags[:] = 0
            for w, (line, ent) in enumerate(resident.items()):
                row_tags[w] = line
                row_stamp[w] = ent[0]
                row_flags[w] = ent[1]
            if t_idx:
                vic_i.append(np.asarray(t_idx, dtype=np.int64))
                vic_l.append(np.asarray(t_line, dtype=np.int64))
                vic_f.append(np.asarray(t_flag, dtype=np.int64))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(np.count_nonzero(self.tags != EMPTY))

    def resident_lines(self) -> Iterator[int]:
        """Iterate all resident line numbers (LRU→MRU within each set)."""
        for s in range(self.tags.shape[0]):
            row_tags = self.tags[s]
            for w in np.argsort(self.stamp[s], kind="stable").tolist():
                if row_tags[w] != EMPTY:
                    yield int(row_tags[w])

    def occupancy(self) -> float:
        """Fraction of capacity currently filled."""
        return len(self) / self.config.num_lines

    def flush(self) -> int:
        """Empty the cache; returns the number of lines dropped."""
        dropped = len(self)
        self.tags.fill(EMPTY)
        self.stamp.fill(EMPTY)
        self.flags.fill(0)
        self._clock = 0
        return dropped

    def check_invariants(self) -> None:
        """Verify structural invariants (test helper)."""
        for s in range(self.tags.shape[0]):
            row = self.tags[s]
            valid = row != EMPTY
            if (self.stamp[s][valid] < 0).any() or (
                self.stamp[s][~valid] != EMPTY
            ).any():
                raise SimulationError(f"set {s} has inconsistent stamps")
            resident = row[valid]
            if len(np.unique(resident)) != len(resident):
                raise SimulationError(f"set {s} holds a duplicate line")
            if ((resident & self._set_mask) != s).any():
                raise SimulationError(f"set {s} holds a line of another set")
            stamps = self.stamp[s][valid]
            if len(np.unique(stamps)) != len(stamps):
                raise SimulationError(f"set {s} has duplicate LRU stamps")
