"""Set-associative LRU cache with per-line metadata flags.

Each set is a plain ``dict`` mapping line number to a flags integer.
CPython dicts preserve insertion order, so least-recently-used is always
the first key: a hit re-inserts the key (``pop`` + assign) and eviction
removes ``next(iter(set))`` — both O(1).  This keeps the simulator's hot
loop free of heap-based LRU bookkeeping.

Line flags record how a line entered the cache and what happened since:

* ``FLAG_SW_PREFETCH`` / ``FLAG_HW_PREFETCH`` — installed by a prefetch.
* ``FLAG_NTA`` — installed by ``PREFETCHNTA`` (L1-only residency).
* ``FLAG_REFERENCED`` — a demand access has touched the line since fill.
* ``FLAG_DIRTY`` — a store wrote the line (eviction causes a writeback).

Prefetch usefulness accounting (paper's accuracy argument) falls out of
these: a prefetched line evicted without ``FLAG_REFERENCED`` was a
useless fetch that cost bandwidth and cache space.
"""

from __future__ import annotations

from typing import Iterator

from repro.config import CacheConfig
from repro.errors import SimulationError

__all__ = [
    "FLAG_NTA",
    "FLAG_SW_PREFETCH",
    "FLAG_HW_PREFETCH",
    "FLAG_REFERENCED",
    "FLAG_DIRTY",
    "LRUCache",
]

FLAG_NTA = 1
FLAG_SW_PREFETCH = 2
FLAG_HW_PREFETCH = 4
FLAG_REFERENCED = 8
FLAG_DIRTY = 16


class LRUCache:
    """One level of set-associative LRU cache operating on line numbers.

    All methods take *line numbers* (byte address divided by line size);
    the hierarchy is responsible for that conversion so a single trace
    conversion is shared by all levels.
    """

    __slots__ = ("config", "ways", "_sets", "_set_mask")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.ways = config.ways
        n_sets = config.num_sets
        self._sets: list[dict[int, int]] = [dict() for _ in range(n_sets)]
        self._set_mask = n_sets - 1

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------

    def lookup(self, line: int, set_flags: int = 0) -> bool:
        """Probe for ``line``; on hit, refresh LRU and OR in ``set_flags``.

        Returns True on hit.  This is the demand-access path.
        """
        s = self._sets[line & self._set_mask]
        flags = s.pop(line, None)
        if flags is None:
            return False
        s[line] = flags | set_flags
        return True

    def touch_flags(self, line: int, set_flags: int) -> bool:
        """OR flags into a resident line *without* refreshing LRU order."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s[line] |= set_flags
            return True
        return False

    def install(self, line: int, flags: int = 0) -> tuple[int, int] | None:
        """Insert ``line`` as most-recently-used.

        If the line is already resident its flags are OR-merged and LRU is
        refreshed.  Returns the evicted ``(line, flags)`` pair if the set
        overflowed, else None.
        """
        s = self._sets[line & self._set_mask]
        old = s.pop(line, None)
        if old is not None:
            s[line] = old | flags
            return None
        victim = None
        if len(s) >= self.ways:
            victim_line = next(iter(s))
            victim = (victim_line, s.pop(victim_line))
        s[line] = flags
        return victim

    def contains(self, line: int) -> bool:
        """Non-updating residency probe."""
        return line in self._sets[line & self._set_mask]

    def peek_flags(self, line: int) -> int | None:
        """Flags of a resident line, or None (no LRU update)."""
        return self._sets[line & self._set_mask].get(line)

    def invalidate(self, line: int) -> int | None:
        """Remove ``line``; returns its flags if it was resident."""
        return self._sets[line & self._set_mask].pop(line, None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[int]:
        """Iterate all resident line numbers (LRU→MRU within each set)."""
        for s in self._sets:
            yield from s

    def occupancy(self) -> float:
        """Fraction of capacity currently filled."""
        return len(self) / self.config.num_lines

    def flush(self) -> int:
        """Empty the cache; returns the number of lines dropped."""
        dropped = len(self)
        for s in self._sets:
            s.clear()
        return dropped

    def check_invariants(self) -> None:
        """Verify structural invariants (test helper).

        Raises :class:`~repro.errors.SimulationError` if any set exceeds
        associativity or holds a line that maps to a different set.
        """
        for idx, s in enumerate(self._sets):
            if len(s) > self.ways:
                raise SimulationError(f"set {idx} exceeds associativity")
            for line in s:
                if (line & self._set_mask) != idx:
                    raise SimulationError(f"line {line} stored in wrong set {idx}")
