"""The advisor compute kernel: one request in, one response out.

This is the *semantic core* of the serving layer, deliberately free of
sockets, queues and threads so :func:`repro.api.advise` (the one-shot
path) and the daemon's engine pool answer requests through exactly the
same code.  Everything flows through the shared runner memo and the
active persistent cache, so a daemon batch that pre-resolved a
request's grid cell makes :func:`compute_advice` a pure lookup — and
the response documents come out byte-identical either way.

Two request shapes:

* **workload** — the request resolves to an
  :class:`~repro.api.ExperimentSpec` grid cell; the plan (for
  plan-bearing configs) and the full simulated :class:`RunStats` are
  returned as their serialised JSON documents.
* **inline trace** — the paper's "profile is cheap" pitch as a service:
  the raw ``(pc, addr, op)`` events are sampled at the standard
  profiling rate with a seed derived deterministically from the trace
  content, run through the MDDLI/stride/bypass analysis for the target
  machine, and the rewrite decisions come back.  No program exists to
  rewrite and re-simulate, so trace requests never carry stats.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro import obs
from repro.api import AdvisorRequest, AdvisorResponse
from repro.core import serialization
from repro.errors import ReproError

__all__ = ["compute_advice", "trace_profile_seed"]


def trace_profile_seed(request: AdvisorRequest) -> int:
    """Deterministic sampling seed for an inline-trace request.

    Derived from the trace content and machine name only — the same
    trace submitted by any tenant, to any daemon, in any order, yields
    the same profile and therefore the same plan.
    """
    crc = zlib.crc32(request.machine.encode())
    for pc, addr, op in request.trace:
        crc = zlib.crc32(f"{pc},{addr},{op};".encode(), crc)
    return crc & 0xFFFF_FFFF


def _error(request: AdvisorRequest, message: str) -> AdvisorResponse:
    return AdvisorResponse(
        status="error",
        request_id=request.request_id,
        tenant=request.tenant,
        error=message,
    )


def _advise_workload(request: AdvisorRequest) -> AdvisorResponse:
    from repro.experiments import runner

    spec = request.spec
    plan_doc = None
    if request.want_plan and spec.plan_kind is not None:
        plan_doc = serialization.plan_to_dict(runner.plan_for_spec(spec))
    stats_doc = None
    if request.want_stats:
        stats_doc = serialization.stats_to_dict(runner.run_spec(spec))
    return AdvisorResponse(
        status="ok",
        request_id=request.request_id,
        tenant=request.tenant,
        spec=spec.as_dict(),
        plan=plan_doc,
        stats=stats_doc,
    )


def _advise_trace(request: AdvisorRequest) -> AdvisorResponse:
    from repro.api import PLAN_KINDS
    from repro.baselines.stride_centric import stride_centric_plan
    from repro.config import get_machine
    from repro.core.pipeline import OptimizerSettings, PrefetchOptimizer
    from repro.errors import ExperimentError
    from repro.experiments.runner import PROFILE_RATE
    from repro.sampling.sampler import RuntimeSampler
    from repro.trace.events import MemoryTrace

    machine = get_machine(request.machine)
    events = np.asarray(request.trace, dtype=np.int64)
    trace = MemoryTrace(
        events[:, 0], events[:, 1], events[:, 2].astype(np.uint8)
    )
    plan_doc = None
    if request.want_plan:
        # Same kind resolution as ExperimentSpec.plan_kind: hwsw analyses
        # like swnt, baseline/hw carry no software plan at all.
        kind = "swnt" if request.config == "hwsw" else request.config
        if kind not in PLAN_KINDS:
            raise ExperimentError(
                f"config {request.config!r} carries no software plan"
            )
        sampler = RuntimeSampler(
            rate=PROFILE_RATE,
            line_bytes=machine.line_bytes,
            seed=trace_profile_seed(request),
        )
        sampling = sampler.sample(trace)
        if kind == "stride":
            plan = stride_centric_plan(sampling, machine)
        else:
            # An inline trace carries no program structure, so "swi"
            # has no A[B[i]] pairs to resolve: enable_indirect is set
            # but the analysis degrades to the plain rewrite.
            settings = OptimizerSettings(
                enable_bypass=(kind == "swnt"),
                enable_indirect=(kind == "swi"),
            )
            plan = PrefetchOptimizer(machine, settings).analyze(sampling)
        plan_doc = serialization.plan_to_dict(plan)
    return AdvisorResponse(
        status="ok",
        request_id=request.request_id,
        tenant=request.tenant,
        spec={
            "machine": request.machine,
            "config": request.config,
            "trace_events": len(request.trace),
        },
        plan=plan_doc,
    )


def compute_advice(request: AdvisorRequest) -> AdvisorResponse:
    """Answer one advisor request; never raises for per-request trouble.

    Library errors (unknown workload/machine, plan-less config asked for
    a plan, malformed trace) come back as ``status="error"`` responses —
    a misbehaving request must cost its sender an error line, not the
    daemon its life.
    """
    with obs.span("serve.advise", request=request.label()):
        try:
            if request.workload is not None:
                return _advise_workload(request)
            return _advise_trace(request)
        except ReproError as exc:
            return _error(request, f"{type(exc).__name__}: {exc}")
