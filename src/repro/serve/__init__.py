"""Prefetch-advisor serving layer (``repro serve``).

Turns the one-shot experiment pipeline into a long-lived, multi-tenant
daemon: clients submit :class:`~repro.api.AdvisorRequest` documents (a
workload spec or a small inline trace plus a machine config) over a
newline-delimited JSON socket protocol (``repro-advisor-v1``) and get
back the profile → MDDLI plan → rewrite decisions — and, for workload
requests, full simulated statistics — as
:class:`~repro.api.AdvisorResponse` documents that are byte-identical to
the one-shot :func:`repro.api.advise` path.

Pieces (see ``docs/serving.md`` for the protocol and deployment story):

* :mod:`repro.serve.protocol` — wire framing: hello/request/event/
  response lines, canonical JSON encoding;
* :mod:`repro.serve.advisor` — the pure request → response compute
  kernel shared by the daemon and :func:`repro.api.advise`;
* :mod:`repro.serve.tenancy` — per-tenant namespaced
  :class:`~repro.cache.ResultCache` views with quota/LRU eviction;
* :mod:`repro.serve.pool` — the sharded engine pool: batches of
  requests grouped per tenant and resolved through reusable
  :class:`~repro.experiments.engine.ExperimentEngine` instances;
* :mod:`repro.serve.daemon` — the asyncio intake loop: bounded queue,
  batching, backpressure (429-style rejection with ``retry_after``),
  streaming progress events over the obs layer, graceful SIGTERM drain;
* :mod:`repro.serve.client` — a small blocking client used by the
  tests, the load benchmark and the CI smoke check.
"""

from repro.serve.advisor import compute_advice
from repro.serve.client import AdvisorClient
from repro.serve.daemon import AdvisorServer, ServeOptions, serve_forever
from repro.serve.pool import EnginePool
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL,
    ProtocolError,
    decode_line,
    decode_request,
    encode_event,
    encode_hello,
    encode_message,
    encode_request,
    encode_response,
)
from repro.serve.tenancy import TenantCaches

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL",
    "AdvisorClient",
    "AdvisorServer",
    "EnginePool",
    "ProtocolError",
    "ServeOptions",
    "TenantCaches",
    "compute_advice",
    "decode_line",
    "decode_request",
    "encode_event",
    "encode_hello",
    "encode_message",
    "encode_request",
    "encode_response",
    "serve_forever",
]
