"""A small blocking client for the advisor protocol.

Used by the test suite, the load benchmark and the CI smoke check; it
is also the reference implementation for external clients — the whole
protocol is "connect, read the hello line, write request lines, read
event/response lines".
"""

from __future__ import annotations

import socket
from typing import Any

from repro.api import AdvisorRequest, AdvisorResponse
from repro.core import serialization
from repro.serve import protocol

__all__ = ["AdvisorClient"]


class AdvisorClient:
    """One blocking connection to an advisor daemon.

    Parameters
    ----------
    unix_socket / host, port:
        Where the daemon listens (exactly one address form).
    timeout:
        Socket timeout in seconds for connect and reads.
    """

    def __init__(
        self,
        unix_socket: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float = 30.0,
    ) -> None:
        if (unix_socket is None) == (port is None):
            raise ValueError("give exactly one of unix_socket= or port=")
        if unix_socket is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_socket)
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self.hello = self._read_message()
        if self.hello.get("protocol") != protocol.PROTOCOL:
            raise protocol.ProtocolError(
                f"server speaks {self.hello.get('protocol')!r}, "
                f"expected {protocol.PROTOCOL!r}"
            )

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "AdvisorClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    # -- protocol -------------------------------------------------------

    def send(self, request: AdvisorRequest) -> None:
        """Write one request line (pipelining-friendly; does not read)."""
        self._file.write(protocol.encode_request(request))
        self._file.flush()

    def _read_message(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise protocol.ProtocolError("server closed the connection")
        return protocol.decode_line(line)

    def read_response(self, collect_events: list | None = None) -> AdvisorResponse:
        """Read lines until the next response; events go to the list."""
        while True:
            payload = self._read_message()
            if payload["kind"] == "event":
                if collect_events is not None:
                    collect_events.append(payload)
                continue
            if payload["kind"] == "response":
                document = {k: v for k, v in payload.items() if k != "kind"}
                return serialization.advisor_response_from_dict(document)
            raise protocol.ProtocolError(
                f"unexpected {payload['kind']!r} message mid-stream"
            )

    def advise(
        self, request: AdvisorRequest, collect_events: list | None = None
    ) -> AdvisorResponse:
        """Round-trip one request."""
        self.send(request)
        return self.read_response(collect_events=collect_events)

    def send_raw(self, line: bytes) -> None:
        """Write raw bytes (protocol-error tests)."""
        self._file.write(line)
        self._file.flush()
