"""Per-tenant cache namespaces for the advisor daemon.

Every tenant the daemon serves gets an isolated
:class:`~repro.cache.ResultCache` view rooted at
``<cache-root>/tenants/<tenant>`` (see
:meth:`~repro.cache.ResultCache.tenant_view`) with its own quota.
Isolation is the point: one tenant filling its budget evicts only its
own entries, a corrupt entry quarantines inside its namespace, and a
hostile tenant can learn nothing about another's workloads from cache
timing because it can never address their files.

Results themselves are pure functions of the request (the content
address includes the machine fingerprint and profile rate), so the
*in-process* runner memo is deliberately shared across tenants — it
holds no per-tenant state, only physics.  Only the persistent layer is
namespaced.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro import obs
from repro.api import validate_tenant
from repro.cache import ResultCache

__all__ = ["TenantCaches"]


class TenantCaches:
    """Lazily-built map of tenant name → namespaced cache view.

    Thread-safe: views are created under a lock (requests for a new
    tenant can arrive on the intake loop while the dispatcher resolves
    a batch), and quota enforcement runs against each tenant's own view
    so tenants never contend on eviction.
    """

    def __init__(self, root: str | Path, quota_bytes: int | None = None) -> None:
        self.root = Path(root)
        self.quota_bytes = quota_bytes
        self._parent = ResultCache(self.root)
        self._views: dict[str, ResultCache] = {}
        self._lock = threading.Lock()

    def get(self, tenant: str) -> ResultCache:
        """The (cached) namespace view for ``tenant``; creates it lazily."""
        validate_tenant(tenant)
        with self._lock:
            view = self._views.get(tenant)
            if view is None:
                view = self._parent.tenant_view(tenant, quota_bytes=self.quota_bytes)
                self._views[tenant] = view
                if obs.enabled():
                    obs.metrics().counter("serve.tenants.created").inc()
            return view

    def enforce_quotas(self) -> int:
        """Run LRU quota eviction on every live tenant view.

        Called by the dispatcher after each batch; returns the total
        number of evicted entries (0 when no quota is configured).
        """
        if self.quota_bytes is None:
            return 0
        with self._lock:
            views = list(self._views.values())
        evicted = 0
        for view in views:
            evicted += view.enforce_quota()
        if evicted and obs.enabled():
            obs.metrics().counter("serve.tenants.evictions").inc(evicted)
        return evicted

    def known(self) -> list[str]:
        """Tenants seen by this process (sorted)."""
        with self._lock:
            return sorted(self._views)

    def usage(self) -> dict[str, dict]:
        """Per-tenant size accounting (``entry_stats`` of each view)."""
        with self._lock:
            views = dict(self._views)
        return {tenant: view.entry_stats() for tenant, view in sorted(views.items())}
