"""The sharded engine pool: request batches → responses.

The runner layer keeps process-global state (the in-process memo and
the active persistent cache installed by ``runner.set_cache``), so the
daemon resolves every batch from **one dispatcher thread** — concurrency
lives above (the asyncio intake queue) and below (each engine's worker
process pool), never *across* engines.  Sharding therefore buys
isolation of engine accounting per tenant-group, not thread parallelism:
a tenant's retries, failure reports and batch statistics accrue on its
own shard.

Resolution of one batch:

1. group the requests by tenant, preserving arrival order;
2. for each tenant group, swap that tenant's namespaced cache view onto
   the group's shard engine and resolve all stats-bearing workload specs
   through :meth:`ExperimentEngine.run_with_report` (parallel across
   profile groups, best-effort — one poisoned request must not sink its
   neighbours);
3. answer every request through :func:`repro.serve.advisor.compute_advice`
   — workload cells are now warm in the runner memo, so this is a pure
   lookup and the response document is byte-identical to the one-shot
   :func:`repro.api.advise` path;
4. enforce per-tenant cache quotas.
"""

from __future__ import annotations

import zlib

from repro import obs
from repro.api import AdvisorRequest, AdvisorResponse
from repro.errors import ReproError
from repro.experiments import runner
from repro.experiments.engine import ExperimentEngine
from repro.retry import RetryPolicy
from repro.serve.advisor import compute_advice
from repro.serve.tenancy import TenantCaches

__all__ = ["EnginePool", "shard_for"]


def shard_for(tenant: str, shards: int) -> int:
    """Stable tenant → shard assignment (CRC32, not Python's salted hash)."""
    return zlib.crc32(tenant.encode()) % max(1, shards)


class EnginePool:
    """A fixed set of reusable :class:`ExperimentEngine` instances.

    Parameters
    ----------
    shards:
        Number of engines.  Tenants map to shards by CRC32 of their
        name, so one tenant's accounting always lands on one engine.
    jobs:
        Worker processes *per engine* for cold cells (engines run one
        at a time, so this is also the process-wide compute width).
    tenants:
        Per-tenant cache namespaces; ``None`` serves everything
        memo-only (no persistent cache).
    retry:
        Per-cell retry policy handed to every engine.
    """

    def __init__(
        self,
        shards: int = 2,
        jobs: int | None = None,
        tenants: TenantCaches | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.shards = max(1, int(shards))
        self.tenants = tenants
        self._engines = [
            ExperimentEngine(jobs=jobs, retry=retry, strict=False)
            for _ in range(self.shards)
        ]
        self.batches = 0
        self.requests = 0

    def engine_for(self, tenant: str) -> ExperimentEngine:
        """The shard engine a tenant's groups resolve on."""
        return self._engines[shard_for(tenant, self.shards)]

    def resolve(self, requests: list[AdvisorRequest]) -> list[AdvisorResponse]:
        """Answer one batch of requests, preserving input order.

        Never raises for per-request trouble: compute failures come back
        as ``status="error"`` responses.  Must be called from a single
        thread at a time (the daemon's dispatcher executor guarantees
        this).
        """
        self.batches += 1
        self.requests += len(requests)
        with obs.span("serve.batch", requests=len(requests)):
            by_tenant: dict[str, list[int]] = {}
            for index, request in enumerate(requests):
                by_tenant.setdefault(request.tenant, []).append(index)

            responses: list[AdvisorResponse | None] = [None] * len(requests)
            for tenant, indices in by_tenant.items():
                engine = self.engine_for(tenant)
                engine.cache = (
                    self.tenants.get(tenant) if self.tenants is not None else None
                )
                group = [requests[i] for i in indices]
                # Keep the tenant's cache view installed across the whole
                # group so plan-only and trace requests persist their
                # sampling passes into the right namespace too (the
                # engine's own run installs/restores the same view).
                previous_cache = runner.set_cache(engine.cache)
                try:
                    self._prefill(engine, group)
                    for i, request in zip(indices, group):
                        responses[i] = compute_advice(request)
                finally:
                    runner.set_cache(previous_cache)
            if self.tenants is not None:
                self.tenants.enforce_quotas()
        if obs.enabled():
            reg = obs.metrics()
            reg.counter("serve.batches").inc()
            reg.counter("serve.requests.resolved").inc(len(requests))
        return [r for r in responses if r is not None]

    def _prefill(self, engine: ExperimentEngine, group: list[AdvisorRequest]) -> None:
        """Warm the runner memo for the group's stats-bearing specs.

        Best-effort: a cell that fails permanently here is simply left
        cold, and :func:`compute_advice` turns the recompute's exception
        into that request's error response without touching the others.
        """
        specs = []
        for request in group:
            if request.workload is None or not request.want_stats:
                continue
            try:
                specs.append(request.spec)
            except ReproError:
                continue
        if specs:
            engine.run_with_report(specs)

    def summaries(self) -> list[str]:
        """One accounting line per shard engine."""
        return [
            f"shard {i}: {engine.summary()}"
            for i, engine in enumerate(self._engines)
        ]
