"""The asyncio advisor daemon: intake, batching, backpressure, drain.

Architecture (one process)::

    clients ──lines──▶ asyncio loop ──puts──▶ bounded queue
                                                  │ (batch_max, batch_linger)
                                       dispatcher task ──▶ 1-thread executor
                                                  │         EnginePool.resolve
    clients ◀─responses/events── futures ◀────────┘         (engine process pool)

The asyncio loop owns every socket; it never computes.  The bounded
queue is the **backpressure contract**: when it is full, new requests
are answered immediately with ``status="rejected"`` and a
``retry_after`` hint (the protocol's 429) instead of being buffered
without bound.  A single dispatcher task collects up to ``batch_max``
queued requests (lingering ``batch_linger`` seconds to let a burst
accumulate) and hands the batch to a one-thread executor running
:meth:`~repro.serve.pool.EnginePool.resolve` — one batch in flight at a
time, because the runner layer's memo/cache state is process-global.
Parallelism across a batch comes from each engine's worker processes.

Shutdown: SIGTERM/SIGINT (or :meth:`AdvisorServer.shutdown`) stops the
listener, flips the daemon into *draining* — queued and in-flight
requests finish and their responses are delivered, anything newly read
from a surviving connection is rejected — then closes connections once
the queue is empty or ``drain_seconds`` elapses.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import socket
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.api import AdvisorRequest, AdvisorResponse
from repro.errors import ExperimentError
from repro.retry import RetryPolicy
from repro.serve import protocol
from repro.serve.pool import EnginePool
from repro.serve.tenancy import TenantCaches

__all__ = ["AdvisorServer", "ServeOptions", "serve_forever"]

_LOG = obs.get_logger("repro.serve")


@dataclass(frozen=True)
class ServeOptions:
    """Configuration of one :class:`AdvisorServer`.

    Exactly one of ``port`` (TCP on ``host``) or ``unix_socket`` must be
    given.  Cache options mirror the engine CLI flags: ``use_cache``
    turns on per-tenant persistent namespaces under ``cache_dir``,
    each budgeted to ``cache_quota`` bytes.
    """

    host: str = "127.0.0.1"
    port: int | None = None
    unix_socket: str | None = None
    queue_capacity: int = 64
    batch_max: int = 16
    batch_linger: float = 0.005
    shards: int = 2
    jobs: int | None = None
    cache_dir: str | None = None
    use_cache: bool = False
    cache_quota: int | None = None
    retry: RetryPolicy | None = None
    drain_seconds: float = 5.0

    def __post_init__(self) -> None:
        if (self.port is None) == (self.unix_socket is None):
            raise ExperimentError(
                "exactly one of port= or unix_socket= must be given"
            )
        if self.queue_capacity < 1:
            raise ExperimentError("queue_capacity must be >= 1")
        if self.batch_max < 1:
            raise ExperimentError("batch_max must be >= 1")


class AdvisorServer:
    """One advisor daemon instance (create, ``await start()``, serve).

    Usable standalone in tests::

        server = AdvisorServer(ServeOptions(unix_socket=path))
        await server.start()
        ...
        await server.shutdown()
    """

    def __init__(self, options: ServeOptions, tenants: TenantCaches | None = None) -> None:
        self.options = options
        if tenants is None and options.use_cache:
            from repro.cache import default_cache_dir

            tenants = TenantCaches(
                options.cache_dir or default_cache_dir(),
                quota_bytes=options.cache_quota,
            )
        self.tenants = tenants
        self.pool = EnginePool(
            shards=options.shards,
            jobs=options.jobs,
            tenants=tenants,
            retry=options.retry,
        )
        self.draining = False
        #: Requests accepted into the queue / rejected at the door.
        self.accepted = 0
        self.rejected = 0
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        #: Event callbacks of the streaming requests in the running batch.
        self._in_flight_streamers: list = []
        self._span_listener_installed = False
        self._closed = asyncio.Event()
        #: EMA of per-request resolution seconds; feeds retry_after.
        self._ema_seconds = 0.05

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "AdvisorServer":
        opts = self.options
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=opts.queue_capacity)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-dispatch"
        )
        if opts.unix_socket is not None:
            path = Path(opts.unix_socket)
            with contextlib.suppress(OSError):
                if path.is_socket():
                    path.unlink()
            path.parent.mkdir(parents=True, exist_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle_client,
                path=str(path),
                limit=protocol.MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client,
                host=opts.host,
                port=opts.port,
                limit=protocol.MAX_LINE_BYTES,
            )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="serve-dispatcher"
        )
        self._span_listener_installed = obs.add_span_listener(self._on_span)
        _LOG.info("[serve] listening on %s", self.endpoint())
        return self

    def endpoint(self) -> str:
        """Human-readable address the daemon is bound to."""
        if self.options.unix_socket is not None:
            return f"unix:{self.options.unix_socket}"
        if self._server is not None and self._server.sockets:
            bound = self._server.sockets[0].getsockname()
            return f"tcp:{bound[0]}:{bound[1]}"
        return f"tcp:{self.options.host}:{self.options.port}"

    @property
    def port(self) -> int | None:
        """The actual bound TCP port (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            return self.options.port
        sock = self._server.sockets[0]
        if sock.family == socket.AF_UNIX:  # pragma: no cover - unix path
            return None
        return sock.getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._closed.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop listening, drain in-flight work, close every connection."""
        if self._closed.is_set():
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._queue is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._queue.join(), timeout=self.options.drain_seconds
                )
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        if self._span_listener_installed:
            obs.remove_span_listener(self._on_span)
        for writer in list(self._connections):
            with contextlib.suppress(OSError):
                writer.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.options.unix_socket is not None:
            with contextlib.suppress(OSError):
                Path(self.options.unix_socket).unlink()
        self._closed.set()
        _LOG.info(
            "[serve] shut down: %d accepted, %d rejected, %d batches",
            self.accepted,
            self.rejected,
            self.pool.batches,
        )

    # -- intake (asyncio loop thread) -----------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            writer.write(
                protocol.encode_hello(
                    queue_capacity=self.options.queue_capacity,
                    batch_max=self.options.batch_max,
                )
            )
            await writer.drain()
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                # Pipelined: each request resolves in its own task so a
                # slow cell never blocks the connection's intake; the
                # request_id correlates out-of-order responses.
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except ConnectionError:  # pragma: no cover - client vanished
            pass
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(OSError):
                writer.close()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = ""
        try:
            payload = protocol.decode_line(line)
            request_id = str(payload.get("request_id", "") or "")
            if payload.get("kind") != "request":
                raise protocol.ProtocolError(
                    f"clients send kind=request lines, got {payload.get('kind')!r}"
                )
            request = protocol.decode_request(payload)
        except protocol.ProtocolError as exc:
            self._count("serve.requests.invalid")
            await self._send(
                writer,
                write_lock,
                protocol.encode_response(
                    AdvisorResponse(
                        status="error", request_id=request_id, error=str(exc)
                    )
                ),
            )
            return
        response = await self.submit(request, writer=writer, write_lock=write_lock)
        await self._send(writer, write_lock, protocol.encode_response(response))

    async def submit(
        self,
        request: AdvisorRequest,
        writer: asyncio.StreamWriter | None = None,
        write_lock: asyncio.Lock | None = None,
    ) -> AdvisorResponse:
        """Queue one request and await its response (the intake core).

        Rejects immediately — without blocking — when the daemon is
        draining or the queue is full.
        """
        if self.draining:
            self.rejected += 1
            self._count("serve.requests.rejected")
            return AdvisorResponse(
                status="rejected",
                request_id=request.request_id,
                tenant=request.tenant,
                error="server is draining",
                retry_after=self.options.drain_seconds,
            )
        assert self._queue is not None and self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        stream_cb = None
        if request.stream and writer is not None and write_lock is not None:
            stream_cb = self._streamer(request, writer, write_lock)
        item = (request, future, stream_cb)
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.rejected += 1
            self._count("serve.requests.rejected")
            self._count("serve.queue.full")
            return AdvisorResponse(
                status="rejected",
                request_id=request.request_id,
                tenant=request.tenant,
                error="intake queue is full",
                retry_after=self._retry_after(),
            )
        self.accepted += 1
        self._count("serve.requests.accepted")
        self._gauge("serve.queue.depth", self._queue.qsize())
        if stream_cb is not None:
            stream_cb("queued", depth=self._queue.qsize())
        return await future

    def _streamer(self, request, writer, write_lock):
        """An event callback bound to one streaming request's connection.

        Callable from the loop thread (lifecycle events) or from the
        dispatcher/worker threads (forwarded obs spans).
        """

        def emit(event: str, **fields) -> None:
            data = protocol.encode_event(
                event, request_id=request.request_id, **fields
            )
            coro = self._send(writer, write_lock, data)
            if self._on_loop_thread():
                asyncio.ensure_future(coro)
            else:
                asyncio.run_coroutine_threadsafe(coro, self._loop)

        return emit

    def _on_loop_thread(self) -> bool:
        try:
            return asyncio.get_running_loop() is self._loop
        except RuntimeError:
            return False

    async def _send(self, writer, write_lock, data: bytes) -> None:
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass  # client went away; its loss

    # -- dispatch (batching) --------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            items = [await self._queue.get()]
            # Linger briefly so a burst coalesces into one batch.
            deadline = self._loop.time() + self.options.batch_linger
            while len(items) < self.options.batch_max:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    items.append(
                        await asyncio.wait_for(self._queue.get(), timeout=remaining)
                    )
                except asyncio.TimeoutError:
                    break
            await self._run_batch(items)

    async def _run_batch(self, items) -> None:
        assert self._loop is not None and self._executor is not None
        requests = [request for request, _future, _cb in items]
        self._in_flight_streamers = [cb for _r, _f, cb in items if cb is not None]
        for _request, _future, stream_cb in items:
            if stream_cb is not None:
                stream_cb("dispatched", batch=len(items))
        started = self._loop.time()
        try:
            responses = await self._loop.run_in_executor(
                self._executor, self.pool.resolve, requests
            )
        except Exception as exc:  # defensive: the pool traps per-request errors
            _LOG.warning("[serve] batch failed wholesale: %s", exc)
            responses = [
                AdvisorResponse(
                    status="error",
                    request_id=request.request_id,
                    tenant=request.tenant,
                    error=f"{type(exc).__name__}: {exc}",
                )
                for request in requests
            ]
        finally:
            self._in_flight_streamers = []
        elapsed = self._loop.time() - started
        self._ema_seconds = 0.8 * self._ema_seconds + 0.2 * (
            elapsed / max(1, len(items))
        )
        for (request, future, stream_cb), response in zip(items, responses):
            if stream_cb is not None:
                stream_cb("done", status=response.status)
            if not future.done():
                future.set_result(response)
            self._queue.task_done()
            self._count(f"serve.requests.{response.status}")
        self._gauge("serve.queue.depth", self._queue.qsize())

    def _on_span(self, event: dict) -> None:
        """obs span listener: forward engine/advise spans to streamers.

        Runs on the dispatcher (or worker-shipping) thread; scheduling
        onto the loop is thread-safe.  Only coarse, request-relevant
        categories are forwarded to keep event volume sane.
        """
        if not self._in_flight_streamers:
            return
        category = event["name"].split(".", 1)[0]
        if category not in ("engine", "serve", "plan", "profile"):
            return
        for emit in list(self._in_flight_streamers):
            emit(
                "span",
                name=event["name"],
                dur_us=round(event["dur"], 1),
            )

    def _retry_after(self) -> float:
        """Backpressure hint: roughly one queue-drain at the current rate."""
        depth = self._queue.qsize() if self._queue is not None else 0
        return round(max(0.05, self._ema_seconds * max(1, depth)), 3)

    # -- metrics --------------------------------------------------------

    @staticmethod
    def _count(name: str, n: int = 1) -> None:
        if obs.enabled():
            obs.metrics().counter(name).inc(n)

    @staticmethod
    def _gauge(name: str, value: float) -> None:
        if obs.enabled():
            obs.metrics().gauge(name).set(value)


async def _serve_async(options: ServeOptions) -> int:
    server = AdvisorServer(options)
    await server.start()
    loop = asyncio.get_running_loop()
    shutdown_requested = asyncio.Event()
    installed: list[int] = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, shutdown_requested.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        await shutdown_requested.wait()
        _LOG.info("[serve] shutdown signal received; draining")
        await server.shutdown(drain=True)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    return 0


def serve_forever(options: ServeOptions) -> int:
    """Run a daemon until SIGTERM/SIGINT; returns the process exit code."""
    return asyncio.run(_serve_async(options))
