"""Wire framing for ``repro-advisor-v1``.

The protocol is deliberately primitive: newline-delimited JSON objects
over a byte stream (TCP or a unix socket), one object per line, UTF-8,
no pipelining requirements and no binary framing.  Anything that can
open a socket and speak JSON is a client.

Message flow::

    server → client   {"kind": "hello", "protocol": "repro-advisor-v1", ...}
    client → server   {"kind": "request", ... repro-advisor-request-v1 ...}
    server → client   {"kind": "event", ...}        (optional, stream=true)
    server → client   {"kind": "response", ... repro-advisor-response-v1 ...}

Request and response payloads are the versioned
``repro-advisor-request-v1`` / ``repro-advisor-response-v1`` documents
from :mod:`repro.core.serialization`, embedded under the envelope's
``kind`` discriminator.  Encoding is canonical — compact separators,
sorted keys — so a response's byte form is a pure function of its
content; the byte-identity acceptance check and response caching both
lean on that.
"""

from __future__ import annotations

import json
from typing import Any

from repro.api import ADVISOR_PROTOCOL, AdvisorRequest, AdvisorResponse
from repro.core import serialization
from repro.errors import ReproError

__all__ = [
    "PROTOCOL",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode_line",
    "decode_request",
    "encode_event",
    "encode_hello",
    "encode_message",
    "encode_response",
]

PROTOCOL = ADVISOR_PROTOCOL

#: Upper bound on one protocol line.  Inline traces dominate request
#: size (~40 bytes/event encoded), so this admits traces of a few
#: hundred thousand events while bounding a hostile client's buffer
#: footprint.  Responses are never anywhere near this large.
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ReproError):
    """A malformed, oversized or out-of-protocol line."""


def encode_message(payload: dict[str, Any]) -> bytes:
    """Canonical wire form of one message: compact JSON + ``\\n``."""
    return (
        json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode()


def encode_hello(*, queue_capacity: int, batch_max: int) -> bytes:
    """The server's greeting: protocol version and intake limits."""
    return encode_message(
        {
            "kind": "hello",
            "protocol": PROTOCOL,
            "queue_capacity": queue_capacity,
            "batch_max": batch_max,
        }
    )


def encode_request(request: AdvisorRequest) -> bytes:
    """Wire form of one client request."""
    payload = serialization.advisor_request_to_dict(request)
    payload["kind"] = "request"
    return encode_message(payload)


def encode_response(response: AdvisorResponse) -> bytes:
    """Wire form of one server response."""
    payload = serialization.advisor_response_to_dict(response)
    payload["kind"] = "response"
    return encode_message(payload)


def encode_event(
    event: str, request_id: str = "", **fields: Any
) -> bytes:
    """Wire form of one streamed progress event."""
    payload: dict[str, Any] = {
        "kind": "event",
        "event": event,
        "request_id": request_id,
    }
    payload.update(fields)
    return encode_message(payload)


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into its envelope dict.

    Raises :class:`ProtocolError` for oversized lines, invalid JSON,
    non-object payloads, or a missing/unknown ``kind``.
    """
    if isinstance(line, str):
        line = line.encode()
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte limit"
        )
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind not in ("hello", "request", "event", "response"):
        raise ProtocolError(f"unknown message kind {kind!r}")
    return payload


def decode_request(payload: dict[str, Any]) -> AdvisorRequest:
    """Turn a decoded ``kind=request`` envelope into an AdvisorRequest.

    Raises :class:`ProtocolError` for any invalid request document, so
    the daemon has a single exception type to turn into an error
    response.
    """
    document = {k: v for k, v in payload.items() if k != "kind"}
    try:
        return serialization.advisor_request_from_dict(document)
    except ReproError as exc:
        raise ProtocolError(f"invalid request: {exc}") from None
