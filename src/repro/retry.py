"""Retry policy for the fault-tolerant experiment engine.

A :class:`RetryPolicy` bounds how hard the engine fights for each grid
cell: how many attempts a failing cell gets, how long to back off
between attempts, and how long one dispatched group of cells may run
before it is declared hung (pooled execution only — a hung in-process
computation cannot be interrupted).

Backoff is **seeded and deterministic**: the jitter for a given
``(seed, attempt, token)`` triple is a pure function (SHA-256 derived),
so two runs of the same grid under the same policy retry on the same
schedule.  That keeps fault-injection tests reproducible and makes the
engine's behaviour under failure as replayable as its results.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine retries failing cells and bounds hung groups.

    Attributes
    ----------
    max_attempts:
        Total attempts per cell (1 = no retries).
    base_delay:
        Backoff before the second attempt, in seconds; doubles each
        further attempt.  ``0`` disables sleeping (tests).
    max_delay:
        Ceiling on the exponential backoff.
    jitter:
        Fraction of the base backoff added as deterministic jitter in
        ``[0, jitter)`` — de-synchronises retries without randomness.
    seed:
        Seed for the deterministic jitter.
    timeout:
        Deadline in seconds for one dispatched group of cells (``None``
        = unbounded).  Enforced only for pool execution, where a hung
        worker can be abandoned; the serial path cannot interrupt a
        computation.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    timeout: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be a positive integer, got {self.max_attempts!r}"
            )
        for name in ("base_delay", "max_delay", "jitter"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0 or not math.isfinite(value):
                raise ConfigError(f"{name} must be a non-negative number, got {value!r}")
        if self.timeout is not None and (
            not isinstance(self.timeout, (int, float)) or self.timeout <= 0
        ):
            raise ConfigError(f"timeout must be positive or None, got {self.timeout!r}")

    def retriable(self, attempt: int) -> bool:
        """Whether a cell that just failed its ``attempt``-th try gets another."""
        return attempt < self.max_attempts

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff in seconds before attempt ``attempt + 1``.

        Exponential in ``attempt`` (1-based), capped at ``max_delay``,
        plus deterministic jitter derived from ``(seed, attempt, token)``
        — pass the cell label as ``token`` so different cells de-sync.
        """
        base = min(self.max_delay, self.base_delay * 2 ** (attempt - 1))
        digest = hashlib.sha256(f"{self.seed}:{attempt}:{token}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.jitter * fraction)
