"""Multicore execution: direct simulation and analytic contention model."""

from repro.cachesim.bandwidth import BandwidthModel
from repro.multicore.contention import AppProfile, ContendedApp, solve_mix
from repro.multicore.coordinator import (
    Coordinator,
    CoordinatorPolicy,
    CoreFeedback,
    HeuristicCoordinator,
    RLCoordinator,
    train_coordinator,
)
from repro.multicore.simulator import CoreSpec, MulticoreResult, MulticoreSimulator

__all__ = [
    "BandwidthModel",
    "CoreSpec",
    "MulticoreResult",
    "MulticoreSimulator",
    "AppProfile",
    "ContendedApp",
    "solve_mix",
    "Coordinator",
    "CoordinatorPolicy",
    "CoreFeedback",
    "HeuristicCoordinator",
    "RLCoordinator",
    "train_coordinator",
]
