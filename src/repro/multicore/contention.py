"""Analytic shared-resource contention model for large mix sweeps.

Directly simulating 180 four-core mixes × several prefetch
configurations × two machines is hours of work even for a fast
trace-driven simulator; the paper itself measures wall-clock on real
hardware.  This module provides the fast path: a fixed-point model that
combines each application's *solo* profile into a contended execution
time.  Two mechanisms are modelled, matching the paper's analysis of
why inaccurate prefetching hurts neighbours:

**Shared-LLC partitioning.**  Under LRU, co-running applications occupy
LLC space in proportion to their *insertion rates* (fills per cycle that
actually enter the LLC — ``PREFETCHNTA`` fills bypass it and claim no
space).  Each app's DRAM traffic is then re-evaluated at its partition
size using its StatStack miss-ratio curve: less space ⇒ more misses ⇒
more traffic, and vice versa.  This is how hardware prefetching's LLC
pollution taxes neighbours, and how bypassing gives space back.

**Memory-controller queueing.**  Transfers from all cores share one
controller of rate ``μ`` lines/cycle.  With total offered rate ``λ``,
each transfer's effective service time grows by the M/M/1 factor
``1/(1-ρ)``; the extra wait and the extra misses' latency are added to
each app's solo execution time.  The fixed point of (occupancy ⇄ rates)
is reached within a few iterations.

The model is validated against the direct interleaved simulator in the
test suite and the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.multicore.coordinator import (
    Coordinator,
    CoreFeedback,
    note_decisions,
    throttle_factor,
)
from repro.statstack.mrc import MissRatioCurve

__all__ = ["AppProfile", "ContendedApp", "solve_mix"]


@dataclass(frozen=True)
class AppProfile:
    """Solo-execution profile of one application under one prefetch config.

    Attributes
    ----------
    name:
        Workload name (reporting only).
    cycles_alone:
        Solo execution time in cycles (private LLC, private controller).
    dram_lines:
        Lines transferred off-chip solo (fills + writebacks).
    llc_insert_lines:
        The subset of fills that occupy LLC space (excludes NTA fills).
    mlp:
        Memory-level parallelism used for the app's extra-miss latency.
    exposure:
        Fraction of the app's off-chip lines whose latency the core
        actually waits for (demand LLC misses / all transfers).  A
        prefetched app's extra misses mostly cost *bandwidth*, not
        stall time — its prefetcher covers them — so contention-induced
        misses are charged latency only in this proportion.
    mrc:
        Application-level miss ratio curve (StatStack), used to scale
        misses with the LLC partition.
    mr_full_llc:
        Miss ratio at the full LLC size (the solo operating point).
    throttleable_lines:
        Speculative transfers a *hardware* prefetcher retires when it
        backs off under contention (solo HW traffic minus baseline
        traffic).  Zero for software configurations — inserted
        prefetches always execute, which is why the paper's scheme is
        stable where hardware prefetching is erratic.
    throttle_cycle_cost:
        Cycles the app loses if the prefetcher throttles fully (part of
        its solo prefetch benefit).
    """

    name: str
    cycles_alone: float
    dram_lines: int
    llc_insert_lines: int
    mlp: float
    mrc: MissRatioCurve
    mr_full_llc: float
    exposure: float = 1.0
    throttleable_lines: float = 0.0
    throttle_cycle_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles_alone <= 0:
            raise SimulationError("cycles_alone must be positive")
        if self.dram_lines < 0 or self.llc_insert_lines < 0:
            raise SimulationError("line counts must be non-negative")
        if self.mlp < 1.0:
            raise SimulationError("mlp must be >= 1")
        if not 0.0 <= self.exposure <= 1.0:
            raise SimulationError("exposure must be in [0, 1]")
        if self.throttleable_lines < 0 or self.throttle_cycle_cost < 0:
            raise SimulationError("throttle parameters must be non-negative")


@dataclass(frozen=True)
class ContendedApp:
    """Per-application outcome of the contention model."""

    name: str
    cycles: float
    dram_lines: float
    llc_share_bytes: float

    @property
    def slowdown(self) -> float:
        """Filled in by :func:`solve_mix` relative to the solo profile."""
        return self._slowdown

    _slowdown: float = 1.0


def solve_mix(
    machine: MachineConfig,
    apps: list[AppProfile],
    iterations: int = 30,
    max_rho: float = 0.98,
    coordinator: Coordinator | None = None,
) -> list[ContendedApp]:
    """Fixed-point solve of LLC sharing + bandwidth queueing for one mix.

    With a ``coordinator``, each iteration plays one control epoch: the
    coordinator observes per-app bandwidth shares, speculative shares
    and MRC gradients and its tunings *replace* the static back-off
    curve — ``degree_scale`` sets the kept fraction of the speculative
    stream, ``nta_bypass`` removes the surviving speculative fills from
    the app's LLC insertion rate (they no longer claim shared space).

    Returns one :class:`ContendedApp` per input, in order.
    """
    if not apps:
        raise SimulationError("empty mix")
    if len(apps) > machine.cores:
        raise SimulationError("more apps than cores")

    line = machine.line_bytes
    mu = machine.bytes_per_cycle() / line  # controller rate, lines/cycle
    llc_bytes = float(machine.llc.size_bytes)
    n = len(apps)

    cycles = [a.cycles_alone for a in apps]
    transfers = [float(a.dram_lines) for a in apps]
    shares = [llc_bytes / n] * n
    insert_lines = [float(a.llc_insert_lines) for a in apps]

    for _ in range(iterations):
        # --- LLC partitioning by insertion rate -----------------------
        # Rates are evaluated at each app's *current* partition: less
        # space ⇒ more misses ⇒ a higher insertion rate ⇒ more space
        # next round, which is the fixed point being iterated.
        rates = []
        for app, ins, t_cyc, share in zip(apps, insert_lines, cycles, shares):
            scale = _miss_scale(app, share)
            rates.append(ins * max(scale, 1e-12) / t_cyc)
        total_rate = sum(rates)
        if total_rate > 0:
            shares = [llc_bytes * r / total_rate for r in rates]
        else:
            shares = [llc_bytes / n] * n

        # --- per-app traffic at its partition --------------------------
        new_transfers = []
        for app, share in zip(apps, shares):
            new_transfers.append(app.dram_lines * _miss_scale(app, share))

        # --- hardware prefetcher throttling ----------------------------
        # Commodity prefetchers back off when the controller is busy
        # (paper §I); retire a utilisation-dependent share of the
        # speculative transfers, paying back part of the solo benefit.
        # A coordinator overrides the static curve per core.
        lam = sum(t / c for t, c in zip(new_transfers, cycles))
        rho = min(lam / mu, max_rho)
        if coordinator is None:
            throttle = _throttle_factor(rho)
            kept = [throttle] * n
            bypass = [False] * n
        else:
            feedback = _epoch_feedback(apps, new_transfers, cycles, shares, llc_bytes)
            tunings = coordinator.decide(feedback, rho)
            if len(tunings) != n:
                raise SimulationError(
                    f"coordinator returned {len(tunings)} tunings for {n} apps"
                )
            note_decisions(tunings)
            kept = [t.degree_scale if t.enabled else 0.0 for t in tunings]
            bypass = [t.enabled and t.nta_bypass for t in tunings]
        throttle_costs = []
        for i, app in enumerate(apps):
            retired = (1.0 - kept[i]) * app.throttleable_lines
            new_transfers[i] = max(0.0, new_transfers[i] - retired)
            throttle_costs.append((1.0 - kept[i]) * app.throttle_cycle_cost)
        if coordinator is not None:
            # Retired speculative fills never reach the LLC; surviving
            # ones skip it when retargeted to NTA.  Both shrink the
            # app's insertion rate next iteration.
            for i, app in enumerate(apps):
                removed = (1.0 - kept[i]) * app.throttleable_lines
                if bypass[i]:
                    removed += kept[i] * app.throttleable_lines
                insert_lines[i] = max(0.0, app.llc_insert_lines - removed)

        # --- bandwidth queueing ----------------------------------------
        # M/M/1 wait, capped by the *closed-system* population: the
        # queue can never hold more requests than the cores have
        # outstanding misses (sum of per-app MLP), which is what keeps
        # saturation finite in the direct simulator too.
        lam = sum(t / c for t, c in zip(new_transfers, cycles))
        rho = min(lam / mu, max_rho)
        population = sum(a.mlp for a in apps)
        mix_wait = min(rho / (1.0 - rho), population)

        new_cycles = []
        for app, t_new, t_cyc, thr_cost in zip(
            apps, new_transfers, cycles, throttle_costs
        ):
            # Each app's solo run already paid its *own* queueing; only
            # the additional wait caused by sharing the controller is
            # charged here.  The solo term is capped below the mix cap
            # so that (unphysical) profiles claiming more solo bandwidth
            # than the controller has still pay for sharing it.
            rho_own = min(t_new / t_cyc / mu, 0.9)
            own_wait = min(rho_own / (1.0 - rho_own), app.mlp)
            extra_wait = max(0.0, mix_wait - own_wait) / mu
            extra_lines = max(0.0, t_new - app.dram_lines)
            extra_miss_cost = extra_lines * (
                app.exposure * machine.dram_latency / app.mlp + 1.0 / mu
            )
            queue_cost = t_new * extra_wait
            new_cycles.append(
                app.cycles_alone + extra_miss_cost + queue_cost + thr_cost
            )

        # Damped update for stable convergence.
        cycles = [0.5 * c + 0.5 * nc for c, nc in zip(cycles, new_cycles)]
        transfers = new_transfers

    return [
        ContendedApp(
            name=app.name,
            cycles=c,
            dram_lines=t,
            llc_share_bytes=s,
            _slowdown=c / app.cycles_alone,
        )
        for app, c, t, s in zip(apps, cycles, transfers, shares)
    ]


# The analytic model and the per-access prefetcher models share one
# back-off curve (re-exported through the coordinator's feedback
# utilities); keeping the old private name for existing importers.
_throttle_factor = throttle_factor


def _epoch_feedback(
    apps: list[AppProfile],
    transfers: list[float],
    cycles: list[float],
    shares: list[float],
    llc_bytes: float,
) -> list[CoreFeedback]:
    """Per-app telemetry handed to a coordinator each iteration."""
    rates = [t / c for t, c in zip(transfers, cycles)]
    total_rate = sum(rates)
    feedback = []
    for app, rate, share in zip(apps, rates, shares):
        bw_share = rate / total_rate if total_rate > 0 else 1.0 / len(apps)
        spec = app.throttleable_lines / app.dram_lines if app.dram_lines else 0.0
        # Doubling-gain: relative miss-ratio drop if the share doubled.
        # Clamped above the MRC grid floor so a starved app still reads
        # as cache-hungry rather than (spuriously) flat.
        lo = max(int(share), 65536)
        gradient = max(
            0.0, 1.0 - float(app.mrc.at(2 * lo)) / max(float(app.mrc.at(lo)), 1e-12)
        )
        feedback.append(
            CoreFeedback(
                name=app.name,
                bw_share=bw_share,
                spec_share=min(1.0, spec),
                mrc_gradient=gradient,
                llc_share=share / llc_bytes if llc_bytes else 0.0,
            )
        )
    return feedback


def _miss_scale(app: AppProfile, share_bytes: float) -> float:
    """Traffic multiplier when the app's LLC shrinks to ``share_bytes``.

    Misses that bypass the LLC anyway (NTA fills) are unaffected; only
    the LLC-inserted fraction scales with the miss-ratio curve.
    """
    if app.dram_lines == 0:
        return 1.0
    if app.mr_full_llc <= 0.0:
        # The app had no LLC misses solo; shrinking its share can only
        # add misses, read straight off the curve (normalised to the
        # smallest observed positive ratio to stay finite).
        mr_at_share = app.mrc.at(max(int(share_bytes), 1024))
        return 1.0 + mr_at_share * 4.0
    mr_at_share = app.mrc.at(max(int(share_bytes), 1024))
    ratio = mr_at_share / app.mr_full_llc
    # NTA fills never depended on LLC space.
    nta_frac = 1.0 - (app.llc_insert_lines / app.dram_lines)
    return nta_frac + (1.0 - nta_frac) * max(ratio, 1.0)
