"""Coordinated per-core prefetch control under shared-resource contention.

Every hardware prefetcher model in this repo throttles itself from
*local* information only (its core's view of controller utilisation).
The paper's resource argument — prefetching decisions must answer for
the *shared* LLC space and bandwidth they consume — calls for a
coordination layer: once per control epoch, observe every core's
bandwidth share, speculative-traffic share and LLC marginal utility,
and retune each core's prefetcher (degree, distance, NTA bypass)
through the :meth:`repro.hwpref.base.HardwarePrefetcher.apply_tuning`
hook.  Modeled on the coordinated RL prefetching architecture surveyed
in PAPERS.md.

Two policies ship behind one interface:

:class:`HeuristicCoordinator`
    Deterministic and dependency-free: start from the shared back-off
    curve, push bandwidth hogs harder, and retarget cores with flat
    miss-ratio curves (no marginal use for LLC space) to NTA-bypassing
    fills so their neighbours keep the cache.

:class:`RLCoordinator`
    A small tabular Q-learner over a discretised state (utilisation
    band × bandwidth share × relative MRC gradient × speculative
    share), trained offline on synthetic mixes by
    :func:`train_coordinator` (seeded, deterministic) and evaluated
    from a frozen, versioned policy artifact
    (``repro-coordinator-policy-v1``) so runs are bit-reproducible.

Both plug into the analytic mix model
(:func:`repro.multicore.contention.solve_mix`) and the direct
interleaved simulator
(:class:`repro.multicore.simulator.MulticoreSimulator`).
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro import obs
from repro.errors import SimulationError
from repro.hwpref.base import DEFAULT_TUNING, PrefetchTuning, throttle_factor

__all__ = [
    "ACTION_SCALES",
    "N_ACTIONS",
    "CoreFeedback",
    "Coordinator",
    "HeuristicCoordinator",
    "RLCoordinator",
    "CoordinatorPolicy",
    "action_tuning",
    "discretise_state",
    "train_coordinator",
    "load_policy",
    "save_policy",
    "default_policy_path",
    "throttle_factor",
]

#: Degree scales a coordinator action may select — the shared back-off
#: curve's range quantised to four steps.
ACTION_SCALES = (1.0, 0.75, 0.5, 0.25)

#: One action per (degree scale, NTA-bypass) combination.
N_ACTIONS = len(ACTION_SCALES) * 2


@dataclass(frozen=True)
class CoreFeedback:
    """One core's shared-resource telemetry for a control epoch.

    Attributes
    ----------
    name:
        Core/application name (reporting only).
    bw_share:
        The core's fraction of the mix's offered off-chip traffic
        (``1/n`` means an even split).
    spec_share:
        Speculative (prefetcher-attributable) fraction of the core's
        own traffic — how much of its bandwidth bill is discretionary.
    mrc_gradient:
        Fractional miss-ratio reduction if the core's LLC share
        doubled (``1 - mr(2s)/mr(s)``, in ``[0, 1]``): the marginal
        utility of its cache space.  Zero for streaming apps whose
        fills pollute the LLC without helping them; measuring the
        *relative* drop keeps low-miss-rate but cache-hungry apps
        distinguishable from genuinely flat ones.
    llc_share:
        Fraction of the shared LLC the core currently occupies.
    """

    name: str
    bw_share: float
    spec_share: float
    mrc_gradient: float
    llc_share: float


class Coordinator(ABC):
    """Decides per-core prefetch tunings once per control epoch."""

    name: str = "coord"

    @abstractmethod
    def decide(self, feedback: list[CoreFeedback], rho: float) -> list[PrefetchTuning]:
        """Return one tuning per core, in ``feedback`` order.

        ``rho`` is the shared memory controller's utilisation for the
        epoch.  Implementations must be deterministic functions of
        their inputs (and frozen policy state) — evaluation depends on
        bit-reproducibility.
        """


def _quantise_scale(value: float) -> int:
    """Index of the action scale closest to ``value``."""
    best = 0
    for i, scale in enumerate(ACTION_SCALES):
        if abs(scale - value) < abs(ACTION_SCALES[best] - value):
            best = i
    return best


def action_tuning(action: int) -> PrefetchTuning:
    """Decode a discrete action into a :class:`PrefetchTuning`."""
    if not 0 <= action < N_ACTIONS:
        raise SimulationError(f"action {action} out of range [0, {N_ACTIONS})")
    scale = ACTION_SCALES[action >> 1]
    bypass = bool(action & 1)
    if scale == 1.0 and not bypass:
        return DEFAULT_TUNING
    return PrefetchTuning(degree_scale=scale, nta_bypass=bypass)


def note_decisions(tunings: list[PrefetchTuning]) -> None:
    """Record one epoch's decisions in the ``coord.*`` counter family."""
    if not obs.enabled():
        return
    reg = obs.metrics()
    reg.counter("coord.epochs").inc()
    throttled = sum(1 for t in tunings if t.enabled and t.degree_scale < 1.0)
    bypassed = sum(1 for t in tunings if t.enabled and t.nta_bypass)
    disabled = sum(1 for t in tunings if not t.enabled)
    if throttled:
        reg.counter("coord.throttled").inc(throttled)
    if bypassed:
        reg.counter("coord.bypassed").inc(bypassed)
    if disabled:
        reg.counter("coord.disabled").inc(disabled)


class HeuristicCoordinator(Coordinator):
    """Bandwidth-share + MRC-marginal-utility throttling.

    Below 70 % controller utilisation every core runs untuned (the
    shared curve is flat there too).  Above it, each core starts from
    the exact static back-off factor, then a core consuming more than
    ``bw_heavy`` times its fair bandwidth share is hardened by a
    further ``harden`` factor (floored at the curve's own 0.25): it is
    the one whose speculative traffic the queue is paying for.  Cores
    whose MRC doubling-gain is at most ``flat_eps`` — flat curves, no
    marginal use for LLC space — are retargeted to NTA-bypassing
    fills, giving the shared cache back to their neighbours without
    giving up their own prefetch coverage.
    """

    name = "heuristic"

    def __init__(
        self,
        bw_heavy: float = 1.25,
        harden: float = 0.75,
        flat_eps: float = 0.05,
    ) -> None:
        if bw_heavy <= 0:
            raise SimulationError("bw_heavy must be positive")
        if not 0.0 < harden <= 1.0:
            raise SimulationError("harden must be in (0, 1]")
        if flat_eps < 0.0:
            raise SimulationError("flat_eps must be non-negative")
        self.bw_heavy = bw_heavy
        self.harden = harden
        self.flat_eps = flat_eps

    def decide(self, feedback: list[CoreFeedback], rho: float) -> list[PrefetchTuning]:
        n = len(feedback)
        if n == 0:
            return []
        if rho <= 0.70:
            return [DEFAULT_TUNING] * n
        base = throttle_factor(rho)
        tunings = []
        for f in feedback:
            kept = base
            if f.bw_share * n > self.bw_heavy:
                kept = max(0.25, kept * self.harden)
            bypass = max(0.0, f.mrc_gradient) <= self.flat_eps
            if kept >= 1.0 and not bypass:
                tunings.append(DEFAULT_TUNING)
            else:
                tunings.append(PrefetchTuning(degree_scale=kept, nta_bypass=bypass))
        return tunings


# ---------------------------------------------------------------------------
# RL policy
# ---------------------------------------------------------------------------

State = tuple[int, int, int, int]


def discretise_state(feedback: CoreFeedback, rho: float, n_cores: int) -> State:
    """Discretise one core's epoch telemetry into the tabular Q state.

    ``(utilisation band, bandwidth-weight band, MRC doubling-gain band,
    speculative-share band)`` — 4 × 3 × 3 × 3 = 108 states, 8 actions.
    The gain band splits flat curves (< 0.05) from moderately and
    strongly cache-sensitive ones.
    """
    if rho <= 0.70:
        r = 0
    elif rho <= 0.85:
        r = 1
    elif rho <= 0.95:
        r = 2
    else:
        r = 3
    weight = feedback.bw_share * n_cores
    b = 0 if weight < 0.75 else (1 if weight < 1.25 else 2)
    grad = max(0.0, feedback.mrc_gradient)
    g = 0 if grad < 0.05 else (1 if grad < 0.3 else 2)
    s = 0 if feedback.spec_share < 0.1 else (1 if feedback.spec_share < 0.3 else 2)
    return (r, b, g, s)


def _argmax(row: tuple[float, ...]) -> int:
    """First index of the maximum — deterministic tie-break."""
    best = 0
    for i in range(1, len(row)):
        if row[i] > row[best]:
            best = i
    return best


@dataclass(frozen=True)
class CoordinatorPolicy:
    """Frozen Q-table artifact produced by :func:`train_coordinator`.

    ``q`` maps a discretised state to its ``N_ACTIONS`` action values,
    rounded to six decimals at freeze time so the serialized artifact
    round-trips bit-identically.
    """

    seed: int
    episodes: int
    alpha: float
    gamma: float
    q: dict[State, tuple[float, ...]]

    def __post_init__(self) -> None:
        for state, row in self.q.items():
            if len(state) != 4 or len(row) != N_ACTIONS:
                raise SimulationError(f"malformed policy entry for state {state!r}")


#: The committed default policy artifact (``repro train-coordinator``
#: output at seed 0; see docs/multicore.md for the training recipe).
_BUNDLED_POLICY = Path(__file__).parent / "policies" / "default-v1.json"

_policy_override: Path | None = None


def default_policy_path() -> Path:
    """Path of the policy :meth:`RLCoordinator.default` evaluates."""
    return _policy_override if _policy_override is not None else _BUNDLED_POLICY


def set_default_policy_path(path: str | Path | None) -> None:
    """Override the bundled default policy (CLI ``--coordinator-policy``)."""
    global _policy_override
    _policy_override = Path(path) if path is not None else None
    _load_policy_cached.cache_clear()


def load_policy(path: str | Path) -> CoordinatorPolicy:
    """Load a ``repro-coordinator-policy-v1`` artifact."""
    from repro.core.serialization import coordinator_policy_from_dict

    return coordinator_policy_from_dict(json.loads(Path(path).read_text()))


def save_policy(policy: CoordinatorPolicy, path: str | Path) -> None:
    """Write a policy artifact in canonical (golden-fixture) form."""
    from repro.core.serialization import coordinator_policy_to_dict

    doc = coordinator_policy_to_dict(policy)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@lru_cache(maxsize=4)
def _load_policy_cached(path: str) -> CoordinatorPolicy:
    return load_policy(path)


class RLCoordinator(Coordinator):
    """Greedy evaluation of a frozen tabular Q policy.

    Deterministic: ties break toward the lowest action index, and
    states the offline training never visited fall back to the static
    back-off curve (quantised, no bypass) — the coordinator can only
    deviate from the uncoordinated baseline where it has evidence.
    """

    name = "rl"

    def __init__(self, policy: CoordinatorPolicy) -> None:
        self.policy = policy

    @classmethod
    def default(cls) -> "RLCoordinator":
        """The committed default policy (see :func:`default_policy_path`)."""
        return cls(_load_policy_cached(str(default_policy_path())))

    def decide(self, feedback: list[CoreFeedback], rho: float) -> list[PrefetchTuning]:
        n = len(feedback)
        if n == 0:
            return []
        if rho <= 0.70:
            return [DEFAULT_TUNING] * n
        static_action = _quantise_scale(throttle_factor(rho)) << 1
        tunings = []
        for f in feedback:
            state = discretise_state(f, rho, n)
            row = self.policy.q.get(state)
            action = static_action if row is None else _argmax(row)
            tunings.append(action_tuning(action))
        return tunings


# ---------------------------------------------------------------------------
# Offline training
# ---------------------------------------------------------------------------


class _Probe(Coordinator):
    """Records the last epoch's feedback; delegates tunings to a policy fn."""

    name = "probe"

    def __init__(self, fn) -> None:
        self.feedback: list[CoreFeedback] | None = None
        self.rho = 0.0
        self._fn = fn

    def decide(self, feedback: list[CoreFeedback], rho: float) -> list[PrefetchTuning]:
        self.feedback = feedback
        self.rho = rho
        return self._fn(feedback, rho)


def _static_tunings(feedback: list[CoreFeedback], rho: float) -> list[PrefetchTuning]:
    """Mimic the uncoordinated shared back-off curve through the hook."""
    factor = throttle_factor(rho)
    if factor >= 1.0:
        return [DEFAULT_TUNING] * len(feedback)
    return [PrefetchTuning(degree_scale=factor)] * len(feedback)


def _fair_speedup(contended) -> float:
    """n / sum of slowdowns — the reward the coordinator maximises."""
    return len(contended) / sum(c.slowdown for c in contended)


def _synthetic_profile(rng, machine, name: str):
    """One randomised solo profile for offline training mixes.

    Spans the regimes the coordinator must tell apart: cache-sensitive
    apps (decaying MRC), streaming apps (flat MRC), light and heavy
    bandwidth consumers, and prefetch-heavy vs prefetch-free traffic.
    """
    import numpy as np

    from repro.multicore.contention import AppProfile
    from repro.statstack.mrc import MissRatioCurve

    sizes = (64 * 1024 * 2 ** np.arange(9)).astype(np.int64)
    base_mr = float(rng.uniform(0.05, 0.7))
    if rng.uniform() < 0.3:
        ratios = np.full(len(sizes), base_mr)
    else:
        # Real MRCs flatten to a compulsory-miss floor; decaying to
        # (near) zero would give the partition model an unbounded
        # relative miss-scale dynamic range no hardware exhibits.
        decay = float(rng.uniform(0.3, 0.9))
        floor = base_mr * float(rng.uniform(0.05, 0.5))
        ratios = floor + (base_mr - floor) * decay ** np.arange(
            len(sizes), dtype=np.float64
        )
    mrc = MissRatioCurve(sizes, ratios)

    cycles = 1.0e6
    mu = machine.bytes_per_cycle() / machine.line_bytes
    # Per-app offered rate between 5% and 60% of the controller, so
    # four-app mixes sweep the whole utilisation range.
    dram_lines = int(rng.uniform(0.05, 0.6) * mu * cycles)
    llc_insert = int(dram_lines * rng.uniform(0.5, 1.0))
    throttleable = dram_lines * float(rng.uniform(0.0, 0.5))
    return AppProfile(
        name=name,
        cycles_alone=cycles,
        dram_lines=dram_lines,
        llc_insert_lines=llc_insert,
        mlp=float(rng.uniform(1.5, 6.0)),
        mrc=mrc,
        mr_full_llc=float(mrc.at(machine.llc.size_bytes)),
        exposure=float(rng.uniform(0.3, 1.0)),
        throttleable_lines=throttleable,
        throttle_cycle_cost=cycles * float(rng.uniform(0.0, 0.05)),
    )


def train_coordinator(
    seed: int = 0,
    episodes: int = 400,
    alpha: float = 0.2,
    gamma: float = 0.5,
    machine_name: str = "amd-phenom-ii",
    cores: int = 4,
    progress=None,
) -> CoordinatorPolicy:
    """Train a tabular Q policy on synthetic contended mixes.

    Each episode draws a fresh random mix, solves it once with the
    static back-off curve (recording the resulting per-core states and
    the baseline fair speedup), picks one ε-greedy action per core,
    solves the mix again under those fixed tunings, and updates the
    shared Q table with the fair-speedup *improvement* as reward.
    Entirely seeded — the same arguments always freeze the same policy.
    """
    import numpy as np

    from repro.config import get_machine
    from repro.multicore.contention import solve_mix

    if episodes <= 0:
        raise SimulationError("episodes must be positive")
    rng = np.random.default_rng(seed)
    machine = get_machine(machine_name)
    q: dict[State, list[float]] = {}

    with obs.span("coord.train", seed=seed, episodes=episodes):
        for episode in range(episodes):
            apps = [
                _synthetic_profile(rng, machine, f"syn{i}") for i in range(cores)
            ]
            epsilon = max(0.05, 1.0 - episode / max(1.0, 0.8 * episodes))

            static_probe = _Probe(_static_tunings)
            base = solve_mix(machine, apps, coordinator=static_probe)
            fs_static = _fair_speedup(base)
            if static_probe.feedback is None:
                continue
            n = len(static_probe.feedback)
            states = [
                discretise_state(f, static_probe.rho, n)
                for f in static_probe.feedback
            ]

            actions = []
            for state in states:
                row = q.get(state)
                if row is None or rng.uniform() < epsilon:
                    actions.append(int(rng.integers(N_ACTIONS)))
                else:
                    actions.append(_argmax(tuple(row)))
            fixed = [action_tuning(a) for a in actions]
            acting_probe = _Probe(lambda fb, rho, fixed=fixed: fixed)
            contended = solve_mix(machine, apps, coordinator=acting_probe)
            reward = _fair_speedup(contended) - fs_static

            next_feedback = acting_probe.feedback or static_probe.feedback
            next_rho = acting_probe.rho
            for state, action, nxt in zip(states, actions, next_feedback):
                next_state = discretise_state(nxt, next_rho, n)
                row = q.setdefault(state, [0.0] * N_ACTIONS)
                future = max(q[next_state]) if next_state in q else 0.0
                row[action] += alpha * (reward + gamma * future - row[action])
            if progress is not None and (episode + 1) % 50 == 0:
                progress(episode + 1, episodes, len(q))

    frozen = {
        state: tuple(round(v, 6) for v in row) for state, row in q.items()
    }
    return CoordinatorPolicy(
        seed=seed, episodes=episodes, alpha=alpha, gamma=gamma, q=frozen
    )
