"""Direct multicore simulation: N cores, shared LLC, shared bandwidth.

Each core owns a :class:`~repro.cachesim.hierarchy.CacheHierarchy` whose
LLC object and memory-controller queue are *shared* between all cores —
so one core's fills evict another core's lines (LLC contention) and one
core's transfers delay everyone's (bandwidth contention), the two
mechanisms the paper's mixed-workload evaluation exercises.

Scheduling is clock-driven: at every step the core with the smallest
local clock executes its next trace event, which interleaves the cores'
memory streams in simulated-time order (a core stalled on DRAM naturally
falls behind and yields the shared resources).  Cores that finish their
trace drop out; the mix result records each core's completion time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro import obs
from repro.cachesim.bandwidth import BandwidthModel
from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.lru import LRUCache
from repro.cachesim.stats import RunStats
from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.hwpref.base import HardwarePrefetcher
from repro.multicore.coordinator import Coordinator, CoreFeedback, note_decisions
from repro.statstack.mrc import MissRatioCurve
from repro.trace.events import MemOp, MemoryTrace

__all__ = ["CoreSpec", "MulticoreResult", "MulticoreSimulator"]


@dataclass
class CoreSpec:
    """One core's program and execution parameters."""

    trace: MemoryTrace
    work_per_memop: float = 2.0
    mlp: float = 2.0
    prefetcher: HardwarePrefetcher | None = None
    name: str = ""
    #: Optional miss-ratio curve; gives a coordinator the core's LLC
    #: marginal utility (without it the gradient reads as zero).
    mrc: MissRatioCurve | None = None


@dataclass
class MulticoreResult:
    """Outcome of one multicore run."""

    per_core: list[RunStats]
    names: list[str]
    total_bytes: int
    makespan_cycles: float

    def core_cycles(self) -> list[float]:
        return [s.cycles for s in self.per_core]

    def achieved_bandwidth_gbs(self, freq_ghz: float) -> float:
        """Average off-chip bandwidth over the mix's makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        seconds = self.makespan_cycles / (freq_ghz * 1e9)
        return self.total_bytes / seconds / 1e9


class MulticoreSimulator:
    """Clock-ordered interleaved execution of several cores.

    With a ``coordinator``, every ``epoch_events`` processed events the
    simulator snapshots per-core traffic/occupancy deltas, asks the
    coordinator for fresh :class:`~repro.hwpref.base.PrefetchTuning`
    decisions and applies them to each core's prefetcher — the direct
    counterpart of the analytic model's coordinated solve.
    """

    def __init__(
        self,
        machine: MachineConfig,
        cores: list[CoreSpec],
        coordinator: Coordinator | None = None,
        epoch_events: int = 2000,
    ) -> None:
        if not cores:
            raise SimulationError("at least one core required")
        if len(cores) > machine.cores:
            raise SimulationError(
                f"machine has {machine.cores} cores, {len(cores)} requested"
            )
        if epoch_events <= 0:
            raise SimulationError("epoch_events must be positive")
        self.machine = machine
        self.cores = cores
        self.coordinator = coordinator
        self.epoch_events = epoch_events
        self.shared_llc = LRUCache(machine.llc)
        self.bandwidth = BandwidthModel(machine.bytes_per_cycle())
        self.hierarchies = [
            CacheHierarchy(
                machine,
                prefetcher=spec.prefetcher,
                bandwidth=self.bandwidth,
                llc=self.shared_llc,
            )
            for spec in cores
        ]

    def run(self, drain: bool = True) -> MulticoreResult:
        """Execute all cores to completion."""
        machine = self.machine
        shift = machine.line_bytes.bit_length() - 1
        store_op = int(MemOp.STORE)
        nta_op = int(MemOp.PREFETCH_NTA)
        store_nt_op = int(MemOp.STORE_NT)

        states = []
        heap: list[tuple[float, int]] = []
        for idx, (spec, hier) in enumerate(zip(self.cores, self.hierarchies)):
            stats = RunStats(line_bytes=machine.line_bytes)
            demand_cost = (
                machine.cycles_per_memop + machine.cpi_base * spec.work_per_memop
            )
            states.append(
                {
                    "spec": spec,
                    "hier": hier,
                    "stats": stats,
                    "pos": 0,
                    "demand_cost": demand_cost,
                    "n_demand": 0,
                    "n_prefetch": 0,
                }
            )
            if len(spec.trace):
                heapq.heappush(heap, (0.0, idx))

        coordinator = self.coordinator
        epoch_events = self.epoch_events
        events_since_epoch = 0
        epoch_prev = [(0, 0, 0) for _ in states]

        while heap:
            _, idx = heapq.heappop(heap)
            st = states[idx]
            spec: CoreSpec = st["spec"]
            hier: CacheHierarchy = st["hier"]
            trace = spec.trace
            pos = st["pos"]
            op = trace.op[pos]
            addr = int(trace.addr[pos])
            line = addr >> shift
            if op <= store_op:
                st["n_demand"] += 1
                hier._demand_access(
                    int(trace.pc[pos]),
                    addr,
                    line,
                    op == store_op,
                    st["demand_cost"],
                    spec.mlp,
                    st["stats"],
                )
            elif op == store_nt_op:
                st["n_demand"] += 1
                hier._nt_store(int(trace.pc[pos]), line, st["demand_cost"], st["stats"])
            else:
                st["n_prefetch"] += 1
                hier._sw_prefetch(line, op == nta_op, st["stats"])
            st["pos"] = pos + 1
            if st["pos"] < len(trace):
                heapq.heappush(heap, (hier.now, idx))
            if coordinator is not None:
                events_since_epoch += 1
                if events_since_epoch >= epoch_events:
                    events_since_epoch = 0
                    epoch_prev = self._control_epoch(states, epoch_prev)

        results: list[RunStats] = []
        for st in states:
            stats: RunStats = st["stats"]
            spec = st["spec"]
            stats.instructions = (
                int(st["n_demand"] * (1.0 + spec.work_per_memop)) + st["n_prefetch"]
            )
            stats.cycles = st["hier"].now
            if drain:
                st["hier"].drain_writebacks(stats)
            results.append(stats)

        return MulticoreResult(
            per_core=results,
            names=[spec.name for spec in self.cores],
            total_bytes=self.bandwidth.total_bytes,
            makespan_cycles=max(s.cycles for s in results),
        )

    def _control_epoch(
        self,
        states: list[dict],
        prev: list[tuple[int, int, int]],
    ) -> list[tuple[int, int, int]]:
        """Run one coordinator decision and retune every prefetcher.

        ``prev`` holds each core's (transfers, prefetches, insertions)
        counters at the previous epoch boundary; this epoch's feedback
        is computed from the deltas since then.
        """
        llc_bytes = float(self.machine.llc.size_bytes)
        snap = []
        deltas = []
        for st, (p_tr, p_pf, p_ins) in zip(states, prev):
            stats: RunStats = st["stats"]
            transfers = stats.dram_fills + stats.dram_writebacks
            prefetches = stats.hw_prefetches
            inserts = stats.llc_insertions
            snap.append((transfers, prefetches, inserts))
            deltas.append((transfers - p_tr, prefetches - p_pf, inserts - p_ins))

        total_traffic = sum(d[0] for d in deltas)
        total_inserts = sum(d[2] for d in deltas)
        n = len(states)
        feedback = []
        for st, (d_tr, d_pf, d_ins) in zip(states, deltas):
            spec: CoreSpec = st["spec"]
            bw_share = d_tr / total_traffic if total_traffic > 0 else 1.0 / n
            spec_share = min(1.0, d_pf / d_tr) if d_tr > 0 else 0.0
            llc_share = d_ins / total_inserts if total_inserts > 0 else 1.0 / n
            if spec.mrc is not None:
                lo = max(int(llc_share * llc_bytes), 65536)
                gradient = max(
                    0.0,
                    1.0 - float(spec.mrc.at(2 * lo)) / max(float(spec.mrc.at(lo)), 1e-12),
                )
            else:
                gradient = 0.0
            feedback.append(
                CoreFeedback(
                    name=spec.name,
                    bw_share=bw_share,
                    spec_share=spec_share,
                    mrc_gradient=gradient,
                    llc_share=llc_share,
                )
            )

        rho = self.bandwidth.utilisation()
        with obs.span("coord.decide", policy=self.coordinator.name, cores=n):
            tunings = self.coordinator.decide(feedback, rho)
        if len(tunings) != n:
            raise SimulationError(
                f"coordinator returned {len(tunings)} tunings for {n} cores"
            )
        note_decisions(tunings)
        for st, tuning in zip(states, tunings):
            prefetcher = st["spec"].prefetcher
            if prefetcher is not None:
                prefetcher.apply_tuning(tuning)
        return snap
