"""Unified experiment API.

Every run the framework can perform — profile a workload, derive a
prefetch plan, simulate one prefetching configuration — is identified by
one frozen, hashable request object, :class:`ExperimentSpec`.  The spec
replaces the historical stringly-typed five-positional-argument call
sites scattered across the experiment drivers, the CLI and the
benchmarks: every layer (the parallel engine, the persistent disk
cache, the legacy ``runner`` shims) now speaks this one type.

The module is a *facade*: it owns the spec type and the canonical
configuration vocabulary, and lazily dispatches to the compute layers so
that ``repro.api`` can be imported from anywhere (including worker
processes) without import cycles.

Typical use::

    from repro.api import ExperimentSpec, run, run_many

    spec = ExperimentSpec("libquantum", "amd-phenom-ii", "swnt", scale=0.3)
    stats = run(spec)                      # cached single cell
    grid = ExperimentSpec.grid(
        workloads=("mcf", "lbm"),
        machines=("amd-phenom-ii",),
        configs=("baseline", "hw", "swnt"),
        scales=(0.3,),
    )
    results = run_many(grid)               # parallel + disk-cached
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.cachesim.options import SimOptions
from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cachesim.stats import RunStats
    from repro.core.report import OptimizationReport
    from repro.experiments.engine import ExperimentEngine
    from repro.experiments.runner import WorkloadProfile

__all__ = [
    "CONFIGS",
    "PLAN_KINDS",
    "DEFAULT_MACHINE",
    "ADVISOR_PROTOCOL",
    "ADVISOR_STATUSES",
    "ExperimentSpec",
    "AdvisorRequest",
    "AdvisorResponse",
    "validate_tenant",
    "SimOptions",
    "profile",
    "plan",
    "run",
    "run_many",
    "run_journaled",
    "resume_run",
    "advise",
    "validate",
    "configure",
    "current_engine",
    "reset_default_engine",
    "ExperimentEngine",
    "EngineStats",
    "FailureReport",
    "RetryPolicy",
]

#: The four prefetching configurations of Figs. 4–6, plus the baseline,
#: the combined HW+SW configuration of §VIII-B (Lee et al.'s
#: observation, which the paper confirms: combining the two can hurt),
#: and the coordinated hardware configurations (``hwcoord``/``hwrl``):
#: solo cells identical to ``hw``, but mixed-workload evaluation runs a
#: :mod:`repro.multicore.coordinator` policy over the mix.  The irregular
#: frontier adds ``swi`` (the indirect ``prefetch B[i+d]; prefetch
#: A[B[i+d]]`` software rewrite) and ``hwx`` (the cross-core helper LLC
#: prefetcher of :mod:`repro.hwpref.xcore`).
CONFIGS = (
    "baseline", "hw", "sw", "swnt", "stride", "hwsw", "hwcoord", "hwrl",
    "swi", "hwx",
)

#: Configurations that require a software prefetch plan.
PLAN_KINDS = ("sw", "swnt", "stride", "swi")

#: Machine used when a spec is only a carrier for machine-independent
#: work (profiling); any valid machine name would do.
DEFAULT_MACHINE = "amd-phenom-ii"


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of the paper's evaluation grid.

    Attributes
    ----------
    workload:
        Benchmark model name (``repro workloads`` lists them).
    machine:
        Target machine model name (key of :data:`repro.config.MACHINES`).
    config:
        Prefetching configuration, one of :data:`CONFIGS`.
    input_set:
        Input set the *evaluated* run uses; profiling always uses
        ``"ref"`` (the paper's single-profile methodology).
    scale:
        Trip-count multiplier applied to the workload model.
    """

    workload: str
    machine: str
    config: str = "baseline"
    input_set: str = "ref"
    scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("workload", "machine", "config", "input_set"):
            value = getattr(self, name)
            if not isinstance(value, str) or not value:
                raise ExperimentError(f"{name} must be a non-empty string, got {value!r}")
        if self.config not in CONFIGS:
            raise ExperimentError(
                f"unknown config {self.config!r}; valid: {CONFIGS}"
            )
        if not isinstance(self.scale, (int, float)) or isinstance(self.scale, bool):
            raise ExperimentError(f"scale must be a number, got {self.scale!r}")
        if not math.isfinite(self.scale) or self.scale <= 0:
            raise ExperimentError(f"scale must be positive and finite, got {self.scale}")
        # Normalise so ExperimentSpec(..., scale=1) and scale=1.0 are one
        # cache key / one dict entry.
        object.__setattr__(self, "scale", float(self.scale))

    # -- derived views -------------------------------------------------

    @property
    def profile_key(self) -> tuple[str, str, float]:
        """The (workload, input_set, scale) triple one profiling pass covers.

        Cells sharing this key share a workload build/execution, so the
        engine groups them into one worker task.
        """
        return (self.workload, self.input_set, self.scale)

    @property
    def plan_kind(self) -> str | None:
        """Software plan this config needs (``None`` for baseline/hw)."""
        if self.config == "hwsw":
            return "swnt"
        if self.config in PLAN_KINDS:
            return self.config
        return None

    def with_config(self, config: str) -> "ExperimentSpec":
        """Copy of this spec under another prefetching configuration."""
        return replace(self, config=config)

    def as_dict(self) -> dict:
        """Plain-primitive mapping (stable field order) for hashing/JSON."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def label(self) -> str:
        """Compact human-readable cell label for progress output."""
        extra = "" if self.input_set == "ref" else f"/{self.input_set}"
        return f"{self.workload}/{self.machine}/{self.config}{extra}@{self.scale:g}"

    # -- grid construction ---------------------------------------------

    @classmethod
    def grid(
        cls,
        workloads: Sequence[str],
        machines: Sequence[str],
        configs: Sequence[str] = CONFIGS,
        input_sets: Sequence[str] = ("ref",),
        scales: Sequence[float] = (1.0,),
    ) -> list["ExperimentSpec"]:
        """The full cross product of the given axes, in deterministic order."""
        return [
            cls(w, m, c, i, s)
            for w in workloads
            for m in machines
            for c in configs
            for i in input_sets
            for s in scales
        ]


# -- advisor request/response API ---------------------------------------
#
# The serving layer (``repro serve``, docs/serving.md) speaks one frozen
# request/response pair over the ``repro-advisor-v1`` wire protocol.
# Like ExperimentSpec, both types are part of the public API contract:
# their JSON codecs live in repro.core.serialization, are versioned, and
# are pinned byte-for-byte by golden fixtures — a serve daemon and its
# clients may be upgraded independently.

#: Wire-protocol identifier of the advisor service (see docs/serving.md).
ADVISOR_PROTOCOL = "repro-advisor-v1"

#: Tenant names become cache sub-directories; constrain them to a safe
#: slug so a request can never escape its namespace.
_TENANT_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)

#: Reserved namespace names that would collide with cache machinery.
_TENANT_RESERVED = frozenset({"quarantine", "stats", "sampling", "tenants"})


def validate_tenant(name: str) -> str:
    """Validate a tenant name; returns it unchanged.

    A tenant is a non-empty slug of ``[A-Za-z0-9._-]`` (max 64 chars)
    that does not start with a dot and is not a reserved cache
    directory name.  Raises :class:`ExperimentError` otherwise.
    """
    if not isinstance(name, str) or not name:
        raise ExperimentError(f"tenant must be a non-empty string, got {name!r}")
    if len(name) > 64 or name.startswith(".") or not set(name) <= _TENANT_OK:
        raise ExperimentError(
            f"invalid tenant {name!r}: use up to 64 chars of [A-Za-z0-9._-], "
            "not starting with '.'"
        )
    if name in _TENANT_RESERVED:
        raise ExperimentError(f"tenant name {name!r} is reserved")
    return name


@dataclass(frozen=True)
class AdvisorRequest:
    """One prefetch-advisor request: what to analyse, for whom.

    Exactly one of ``workload`` (a named benchmark model) or ``trace``
    (a small inline memory trace) must be given.

    Attributes
    ----------
    workload:
        Benchmark model name; the request resolves to the
        :class:`ExperimentSpec` cell ``(workload, machine, config,
        input_set, scale)`` and may carry full simulated statistics.
    trace:
        Inline trace as a tuple of ``(pc, addr, op)`` event triples
        (the JSON codec accepts lists).  Trace requests return the
        profile → MDDLI → rewrite-decision plan only (there is no
        program to rewrite and re-simulate), so ``want_stats`` must be
        ``False``.
    machine:
        Target machine model name (key of :data:`repro.config.MACHINES`).
    config:
        Prefetching configuration, one of :data:`CONFIGS`.
    input_set, scale:
        As on :class:`ExperimentSpec`.
    tenant:
        Cache namespace this request bills to (see docs/serving.md).
    request_id:
        Client-chosen correlation id echoed on every response/event.
    want_plan / want_stats:
        Select the artefacts to compute.  Plans exist only for
        plan-bearing configs (:data:`PLAN_KINDS` plus ``hwsw``).
    stream:
        Ask the daemon to stream progress events before the response.
    """

    workload: str | None = None
    machine: str = DEFAULT_MACHINE
    config: str = "swnt"
    input_set: str = "ref"
    scale: float = 1.0
    trace: tuple[tuple[int, int, int], ...] | None = None
    tenant: str = "default"
    request_id: str = ""
    want_plan: bool = True
    want_stats: bool = True
    stream: bool = False

    def __post_init__(self) -> None:
        if (self.workload is None) == (self.trace is None):
            raise ExperimentError(
                "exactly one of workload= or trace= must be given"
            )
        if self.workload is not None and (
            not isinstance(self.workload, str) or not self.workload
        ):
            raise ExperimentError(
                f"workload must be a non-empty string, got {self.workload!r}"
            )
        if self.config not in CONFIGS:
            raise ExperimentError(f"unknown config {self.config!r}; valid: {CONFIGS}")
        if not isinstance(self.scale, (int, float)) or isinstance(self.scale, bool):
            raise ExperimentError(f"scale must be a number, got {self.scale!r}")
        if not math.isfinite(self.scale) or self.scale <= 0:
            raise ExperimentError(f"scale must be positive and finite, got {self.scale}")
        object.__setattr__(self, "scale", float(self.scale))
        validate_tenant(self.tenant)
        if not isinstance(self.request_id, str):
            raise ExperimentError(
                f"request_id must be a string, got {self.request_id!r}"
            )
        if self.trace is not None:
            if self.want_stats:
                raise ExperimentError(
                    "inline-trace requests carry no executable program; "
                    "pass want_stats=False (plans only) or name a workload"
                )
            # Normalise to nested tuples so the request stays hashable
            # and equal regardless of how the events were spelled.
            try:
                events = tuple(
                    (int(pc), int(addr), int(op)) for pc, addr, op in self.trace
                )
            except (TypeError, ValueError):
                raise ExperimentError(
                    "trace must be an iterable of (pc, addr, op) integer triples"
                ) from None
            if not events:
                raise ExperimentError("inline trace must contain at least one event")
            object.__setattr__(self, "trace", events)

    @property
    def spec(self) -> ExperimentSpec:
        """The grid cell a workload-bearing request resolves to."""
        if self.workload is None:
            raise ExperimentError("inline-trace requests resolve to no grid cell")
        return ExperimentSpec(
            self.workload, self.machine, self.config, self.input_set, self.scale
        )

    def label(self) -> str:
        """Compact label for progress output and span attributes."""
        if self.workload is not None:
            return f"{self.tenant}:{self.spec.label()}"
        return f"{self.tenant}:trace[{len(self.trace)}]/{self.machine}/{self.config}"


#: Valid :attr:`AdvisorResponse.status` values.  ``ok`` carries the
#: requested artefacts; ``error`` a permanent per-request failure;
#: ``rejected`` a backpressure or drain refusal (retry after
#: ``retry_after`` seconds — the 429 of the wire protocol).
ADVISOR_STATUSES = ("ok", "error", "rejected")


@dataclass(frozen=True)
class AdvisorResponse:
    """The advisor's answer to one :class:`AdvisorRequest`.

    ``plan`` and ``stats`` are the *serialised* JSON documents of
    :class:`~repro.core.report.OptimizationReport` and
    :class:`~repro.cachesim.stats.RunStats` (``plan_to_dict`` /
    ``stats_to_dict`` output) — already wire-shaped, so a response
    served from cache is byte-identical to one computed fresh, and
    clients without this package can still read them.
    """

    status: str
    request_id: str = ""
    tenant: str = "default"
    spec: dict | None = None
    plan: dict | None = None
    stats: dict | None = None
    error: str | None = None
    retry_after: float | None = None

    def __post_init__(self) -> None:
        if self.status not in ADVISOR_STATUSES:
            raise ExperimentError(
                f"unknown status {self.status!r}; valid: {ADVISOR_STATUSES}"
            )
        if self.status == "error" and not self.error:
            raise ExperimentError("error responses must carry an error message")

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# -- facade functions (lazy imports: keep repro.api dependency-free) ----


def profile(spec: ExperimentSpec) -> "WorkloadProfile":
    """Build, execute and sample ``spec``'s workload (cached).

    Only :attr:`ExperimentSpec.profile_key` matters; machine and config
    are ignored.
    """
    from repro.experiments import runner

    return runner.profile_for(spec.workload, spec.input_set, spec.scale)


def plan(spec: ExperimentSpec) -> "OptimizationReport":
    """Prefetch plan for ``spec`` (cached); requires a plan-bearing config."""
    from repro.experiments import runner

    return runner.plan_for_spec(spec)


def run(spec: ExperimentSpec) -> "RunStats":
    """Simulate one cell through the shared memo + disk cache."""
    from repro.experiments import runner

    return runner.run_spec(spec)


def run_many(
    specs: Iterable[ExperimentSpec],
    engine: "ExperimentEngine | None" = None,
) -> dict[ExperimentSpec, "RunStats"]:
    """Run many cells through the (possibly parallel) experiment engine."""
    return (engine or current_engine()).run(specs)


def run_journaled(
    specs: Iterable[ExperimentSpec],
    run_id: str | None = None,
    runs_dir=None,
    engine: "ExperimentEngine | None" = None,
    fsync: bool = True,
) -> tuple[str, dict[ExperimentSpec, "RunStats"]]:
    """Run many cells under a durable run journal; resumable if killed.

    Every dispatched group and completed cell is appended to a
    checksummed, fsync'd journal under ``<runs_dir>/<run_id>/`` (see
    :mod:`repro.experiments.journal`), so a SIGKILLed or power-cut run
    loses nothing already journaled: :func:`resume_run` replays the
    journal and re-dispatches only the missing cells, with bit-identical
    final results.  While the run is live, SIGINT/SIGTERM drain in-flight
    work and raise :class:`~repro.errors.RunInterrupted` (CLI exit 75).

    Returns ``(run_id, results)``.
    """
    from repro.experiments.journal import RunJournal

    specs = list(dict.fromkeys(specs))
    journal = RunJournal.create(run_id=run_id, runs_dir=runs_dir, fsync=fsync)
    eng = engine if engine is not None else current_engine()
    previous = eng.journal
    try:
        eng.journal = journal
        results = eng.run(specs)
        journal.finish(cells=len(results), failed=len(eng.last_failures))
        return journal.run_id, results
    finally:
        eng.journal = previous
        journal.close()


def resume_run(
    run_id: str,
    runs_dir=None,
    engine: "ExperimentEngine | None" = None,
    fsync: bool = True,
) -> tuple[str, dict[ExperimentSpec, "RunStats"]]:
    """Resume an interrupted journaled run from its journal.

    Replays ``<runs_dir>/<run_id>/journal.jsonl`` (tolerating the torn
    tail a killed writer leaves), seeds every journaled result back into
    the runner memo, and re-runs the original spec list — completed
    cells resolve as memo hits, so only the interrupted remainder is
    re-dispatched, deterministically.  Raises
    :class:`~repro.experiments.journal.JournalError` for a missing or
    incompatible journal.  Returns ``(run_id, results)``.
    """
    from repro import obs
    from repro.core import serialization
    from repro.errors import AnalysisError
    from repro.experiments import runner
    from repro.experiments.journal import RunJournal

    journal, replay = RunJournal.open(run_id, runs_dir=runs_dir, fsync=fsync)
    eng = engine if engine is not None else current_engine()
    seeded = 0
    for spec, payload in replay.completed.items():
        try:
            stats = serialization.stats_from_dict(payload)
        except (AnalysisError, KeyError, TypeError, ValueError):
            # Unusable payload (codec drift mid-run?): recompute the cell
            # and let the journal re-record it.
            journal.done.discard(spec)
            continue
        runner.seed_memo(spec, stats)
        seeded += 1
    pending = len(replay.specs) - seeded
    if obs.enabled():
        reg = obs.metrics()
        reg.counter("engine.resume.runs").inc()
        reg.counter("engine.resume.seeded_cells").inc(seeded)
        reg.counter("engine.resume.pending_cells").inc(pending)
        if replay.torn_tail:
            reg.counter("engine.resume.torn_tails").inc()
        if replay.corrupt_records:
            reg.counter("engine.resume.corrupt_records").inc(replay.corrupt_records)
    previous = eng.journal
    try:
        with obs.span(
            "engine.resume", run_id=journal.run_id, seeded=seeded, pending=pending
        ):
            eng.journal = journal
            results = eng.run(replay.specs)
        if not replay.finished or len(results) > len(replay.completed):
            journal.finish(cells=len(results), failed=len(eng.last_failures))
        return journal.run_id, results
    finally:
        eng.journal = previous
        journal.close()


def advise(request: AdvisorRequest) -> AdvisorResponse:
    """Answer one advisor request in-process (the one-shot path).

    This is the reference semantics of the serving layer: ``repro
    serve`` answers every request through the same compute kernel, so a
    served response's ``plan``/``stats`` documents are byte-identical to
    this function's.  Results flow through the shared runner memo and
    the active persistent cache like any other cell.
    """
    from repro.serve.advisor import compute_advice

    return compute_advice(request)


def validate(
    corpus_seed: int = 0,
    quick: bool = True,
    fuzz_cases: int = 25,
    run_self_test: bool = True,
):
    """Run the model-vs-simulation conformance harness.

    Returns a :class:`repro.validate.ValidationReport`; ``report.passed``
    is the overall verdict and ``report.to_dict()`` the JSON document the
    ``repro validate`` CLI writes.  See ``docs/testing.md``.
    """
    from repro.validate import ValidationConfig, run_validation

    return run_validation(
        ValidationConfig(
            corpus_seed=corpus_seed,
            quick=quick,
            fuzz_cases=fuzz_cases,
            run_self_test=run_self_test,
        )
    )


# -- engine surface ------------------------------------------------------
#
# Drivers, benchmarks and the CLI configure and fetch the process-wide
# engine through here so they never import repro.experiments.engine
# directly; the engine module stays an implementation detail.


def configure(
    jobs=None,
    cache_dir=None,
    use_cache: bool = False,
    progress=None,
    retry=None,
    strict: bool = True,
    trace: bool = False,
    deterministic_trace: bool = False,
    sim_options: SimOptions | None = None,
    cache_quota: int | None = None,
    **removed,
) -> "ExperimentEngine":
    """Install and return the process-wide default engine.

    Parameters mirror :class:`ExperimentEngine`, plus observability and
    simulation knobs:

    trace:
        Enable the tracing/metrics layer (:mod:`repro.obs`) for this
        process *and* the engine's worker processes.  Spans and metric
        snapshots recorded by workers are shipped back and merged into
        the parent's tracer/registry.
    deterministic_trace:
        Use the virtual clock so exported traces are byte-stable across
        runs (implies ``trace``).
    sim_options:
        :class:`SimOptions` installed as the process-wide default for
        every simulator in this process and the engine's workers
        (precedence: explicit constructor arg > config spec > this
        default; see ``docs/simulators.md``).  ``None`` leaves the
        current default untouched.
    cache_quota:
        Size budget in bytes for the on-disk result cache; the engine
        evicts least-recently-used entries past it at startup and after
        every store (``None`` = unbounded).
    """
    from repro import obs
    from repro.cachesim.options import set_default_options
    from repro.experiments import engine as _engine

    if removed:
        # The sim_backend= alias finished its deprecation cycle; give
        # stale callers a pointed migration error, not a silent kwarg.
        if "sim_backend" in removed:
            raise ExperimentError(
                "configure(sim_backend=...) was removed; pass "
                "configure(sim_options=SimOptions(backend=...)) instead"
            )
        unknown = ", ".join(sorted(removed))
        raise TypeError(f"configure() got unexpected keyword argument(s): {unknown}")
    if sim_options is not None:
        set_default_options(sim_options)
    if trace or deterministic_trace:
        obs.enable(deterministic=deterministic_trace)
    return _engine.configure(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
        retry=retry,
        strict=strict,
        cache_quota=cache_quota,
    )


def current_engine() -> "ExperimentEngine":
    """The default engine, creating a serial, cache-less one on demand."""
    from repro.experiments import engine as _engine

    return _engine.current_engine()


def reset_default_engine() -> None:
    """Forget the default engine (tests and benchmark harness hygiene)."""
    from repro.experiments import engine as _engine

    _engine.reset_default_engine()


#: Engine types re-exported lazily so ``repro.api`` stays import-cheap
#: and cycle-free: resolving any of these triggers the engine import.
_ENGINE_TYPES = ("ExperimentEngine", "EngineStats", "FailureReport", "RetryPolicy")


def __getattr__(name: str):
    if name in _ENGINE_TYPES:
        from repro.experiments import engine as _engine

        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
