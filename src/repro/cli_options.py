"""Shared CLI flag definitions for the engine/cache/obs option family.

Every ``repro`` subcommand that touches the experiment engine used to
re-declare the same flags (``--jobs``, ``--cache-dir``, ``--retries``,
``--trace-out`` …) through per-subcommand closures, and the flag set had
already drifted once.  This module makes :class:`EngineCLIOptions` the
single source of truth: each dataclass field carries its argparse
declaration in ``field(metadata=...)``, :func:`cli_parent` materialises
any subset of the flag groups as an argparse *parent* parser, and
:meth:`EngineCLIOptions.from_args` reads the parsed namespace back into
a typed object.  ``repro serve`` and every one-shot subcommand therefore
get identical flag names, types, defaults and help text from one
definition.

Flag groups (the ``group`` metadata key):

* ``engine`` — worker/caching/retry/strictness flags consumed by
  :meth:`EngineCLIOptions.install` (which wires them into
  :func:`repro.api.configure`);
* ``obs`` — tracing/metrics export flags consumed by ``repro.cli.main``.
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass, field

__all__ = [
    "EngineCLIOptions",
    "cli_parent",
    "parse_size",
]


def parse_size(text: str) -> int:
    """Parse a byte size with an optional K/M/G suffix (``512M``, ``2G``)."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    cleaned = text.strip().lower().removesuffix("b")
    multiplier = 1
    if cleaned and cleaned[-1] in units:
        multiplier = units[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = int(float(cleaned) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unreadable size {text!r} (expected e.g. 65536, 512M, 2G)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be non-negative, got {text!r}")
    return value


def _flag(group: str, **argparse_kwargs) -> dict:
    """Field metadata carrying one flag's argparse declaration."""
    return {"group": group, "argparse": argparse_kwargs}


@dataclass(frozen=True)
class EngineCLIOptions:
    """Typed view of the shared engine/cache/obs flag family.

    Field order is flag order in ``--help``.  Fields without metadata
    would be skipped by :func:`cli_parent`; currently every field maps
    to exactly one flag except ``strict``, which materialises as the
    ``--strict``/``--best-effort`` pair.
    """

    # -- engine / cache -------------------------------------------------
    jobs: int | None = field(
        default=None,
        metadata=_flag(
            "engine",
            type=int,
            help="worker processes for grid cells (default $REPRO_JOBS or 1)",
        ),
    )
    cache_dir: str | None = field(
        default=None,
        metadata=_flag(
            "engine",
            help="persistent result cache directory "
            "(default $REPRO_CACHE_DIR or ./.repro-cache)",
        ),
    )
    no_cache: bool = field(
        default=False,
        metadata=_flag(
            "engine",
            action="store_true",
            help="disable the persistent result cache",
        ),
    )
    cache_quota: int | None = field(
        default=None,
        metadata=_flag(
            "engine",
            type=parse_size,
            metavar="SIZE",
            help="size budget for the result cache (e.g. 512M, 2G); "
            "least-recently-used entries past it are evicted",
        ),
    )
    retries: int = field(
        default=2,
        metadata=_flag(
            "engine",
            type=int,
            metavar="N",
            help="extra attempts for a failed grid cell (default 2)",
        ),
    )
    cell_timeout: float | None = field(
        default=None,
        metadata=_flag(
            "engine",
            type=float,
            metavar="SECONDS",
            help="deadline per dispatched cell group (parallel runs only; "
            "default unbounded)",
        ),
    )
    sim_backend: str | None = field(
        default=None,
        metadata=_flag(
            "engine",
            choices=("reference", "fast"),
            help="cache-simulation backend: 'reference' (dict-based oracle) "
            "or 'fast' (array-native, bit-identical; see docs/performance.md)",
        ),
    )
    strict: bool = True  # --strict / --best-effort; declared by hand below

    # -- obs ------------------------------------------------------------
    trace_out: str | None = field(
        default=None,
        metadata=_flag(
            "obs",
            metavar="FILE",
            help="write a Chrome trace_event JSON of the run "
            "(chrome://tracing / ui.perfetto.dev)",
        ),
    )
    metrics_out: str | None = field(
        default=None,
        metadata=_flag(
            "obs",
            metavar="FILE",
            help="write a flat JSON dump of the run's metrics registry",
        ),
    )
    deterministic_trace: bool = field(
        default=False,
        metadata=_flag(
            "obs",
            action="store_true",
            help="use a virtual clock so trace output is byte-stable",
        ),
    )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "EngineCLIOptions":
        """Read the flag family back out of a parsed namespace.

        Tolerant of subcommands that only declared a subset of the
        groups: missing attributes keep their dataclass defaults.
        """
        values = {}
        for f in dataclasses.fields(cls):
            if hasattr(args, f.name):
                values[f.name] = getattr(args, f.name)
        return cls(**values)

    # -- consumption ----------------------------------------------------

    @property
    def use_cache(self) -> bool:
        return not self.no_cache

    def retry_policy(self):
        """The :class:`~repro.retry.RetryPolicy` these flags describe."""
        from repro.retry import RetryPolicy

        return RetryPolicy(
            max_attempts=max(0, self.retries) + 1, timeout=self.cell_timeout
        )

    def sim_options(self):
        """``SimOptions`` for ``--sim-backend``, or ``None`` if unset."""
        if self.sim_backend is None:
            return None
        from repro.cachesim.options import SimOptions

        return SimOptions(backend=self.sim_backend)

    def install(self, progress: bool = True):
        """Install the process-wide engine defaults; returns the engine.

        The one call every engine-bearing subcommand makes — keeps
        ``repro serve`` and the one-shot commands behaviourally
        identical for the whole flag family.
        """
        from repro.api import configure

        return configure(
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            use_cache=self.use_cache,
            progress=progress,
            retry=self.retry_policy(),
            strict=self.strict,
            sim_options=self.sim_options(),
            cache_quota=self.cache_quota,
        )


def cli_parent(groups: tuple[str, ...] = ("engine", "obs")) -> argparse.ArgumentParser:
    """An argparse *parent* declaring the requested flag groups.

    Built field-by-field from :class:`EngineCLIOptions`, so a flag's
    name, type, default and help exist exactly once in the codebase.
    Pass the result via ``add_parser(..., parents=[...])``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    for group in groups:
        if group not in ("engine", "obs"):
            raise ValueError(f"unknown flag group {group!r}")
        section = parent.add_argument_group(f"{group} options")
        for f in dataclasses.fields(EngineCLIOptions):
            meta = f.metadata.get("argparse") if f.metadata else None
            if meta is None or f.metadata.get("group") != group:
                continue
            flag = "--" + f.name.replace("_", "-")
            section.add_argument(flag, default=f.default, **meta)
        if group == "engine":
            mode = section.add_mutually_exclusive_group()
            mode.add_argument(
                "--strict",
                dest="strict",
                action="store_true",
                default=True,
                help="abort on any permanently failed cell (default)",
            )
            mode.add_argument(
                "--best-effort",
                dest="strict",
                action="store_false",
                help="keep going on cell failures; report them and exit non-zero",
            )
    return parent
