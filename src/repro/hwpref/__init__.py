"""Hardware prefetcher models (AMD-like stride, Intel-like streamer)."""

from repro.hwpref.base import HardwarePrefetcher, NullPrefetcher, PrefetchRequest
from repro.hwpref.ghb import GHBPrefetcher
from repro.hwpref.nextline import AdjacentLinePrefetcher
from repro.hwpref.stride_pref import PCStridePrefetcher
from repro.hwpref.streamer import StreamerPrefetcher, amd_hw_prefetcher, intel_hw_prefetcher

__all__ = [
    "HardwarePrefetcher",
    "NullPrefetcher",
    "PrefetchRequest",
    "PCStridePrefetcher",
    "GHBPrefetcher",
    "AdjacentLinePrefetcher",
    "StreamerPrefetcher",
    "amd_hw_prefetcher",
    "intel_hw_prefetcher",
]
