"""Hardware prefetcher models (AMD-like stride, Intel-like streamer)."""

from repro.hwpref.base import (
    DEFAULT_TUNING,
    HardwarePrefetcher,
    NullPrefetcher,
    PrefetchRequest,
    PrefetchTuning,
    throttle_factor,
)
from repro.hwpref.ghb import GHBPrefetcher
from repro.hwpref.nextline import AdjacentLinePrefetcher
from repro.hwpref.stride_pref import PCStridePrefetcher
from repro.hwpref.streamer import StreamerPrefetcher, amd_hw_prefetcher, intel_hw_prefetcher
from repro.hwpref.xcore import (
    CrossCoreLLCPrefetcher,
    IndexRegion,
    cross_core_prefetcher_for,
    index_directory_for,
)

__all__ = [
    "HardwarePrefetcher",
    "NullPrefetcher",
    "PrefetchRequest",
    "PrefetchTuning",
    "DEFAULT_TUNING",
    "throttle_factor",
    "PCStridePrefetcher",
    "GHBPrefetcher",
    "AdjacentLinePrefetcher",
    "StreamerPrefetcher",
    "amd_hw_prefetcher",
    "intel_hw_prefetcher",
    "CrossCoreLLCPrefetcher",
    "IndexRegion",
    "cross_core_prefetcher_for",
    "index_directory_for",
]
