"""Cross-core (helper) LLC prefetcher for index-array indirection.

The paper's hardware prefetchers are per-core stride/stream engines and
its software rewrite targets the owning core's cache; neither helps the
``A[B[i]]`` gathers that dominate graph analytics.  This model follows
the *helper-prefetcher* school (Pickle-style): a small engine near the
LLC watches the *index* walk of a registered ``A[B[i]]`` pair, resolves
the index values the program is about to consume, and issues prefetches
for ``A[B[i + d]]`` into the **shared LLC only** (``fill_l2=False``) —
the data arrives on chip without polluting any core's private cache, so
whichever core consumes it next (the same one, or a neighbour in a
parallel run) takes an LLC hit instead of a DRAM access.

Index values are *input data* of the workload model: an
:class:`~repro.isa.instructions.IndexedAccess` owns an ``index_seed``
from which both the interpreter and this prefetcher reconstruct the same
``B`` array (:func:`~repro.trace.synthesis.index_array_values`).  That
mirrors real helper prefetchers, which read the index array out of the
cache — here the read is a seeded recomputation.

The engine keys on the index load's PC.  A next-issue pointer per pair
suppresses re-issues while the walk advances monotonically and resets
when the walk jumps (rewind or wrap), so steady state issues one new
line per demand index access — the same discipline the streamer models
use.  Coordinator feedback (:class:`~repro.hwpref.base.PrefetchTuning`)
applies as everywhere else: ``degree_scale``/utilisation throttle the
degree, ``distance_scale`` the run-ahead, ``nta_bypass`` marks fills to
skip even the LLC, ``enabled=False`` gates the engine off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ProgramError
from repro.hwpref.base import _EMPTY_BATCH, HardwarePrefetcher, PrefetchRequest

if TYPE_CHECKING:  # isa imports cachesim imports hwpref — defer the cycle
    from repro.config import MachineConfig
    from repro.isa.program import Program

__all__ = [
    "IndexRegion",
    "CrossCoreLLCPrefetcher",
    "index_directory_for",
    "cross_core_prefetcher_for",
]


@dataclass(frozen=True)
class IndexRegion:
    """One registered ``A[B[i]]`` pair: where ``B`` lives, what it indexes.

    ``index_values()`` reconstructs the ``B`` array contents exactly as
    the interpreter materialises them — both sides are pure functions of
    ``index_seed``.
    """

    index_pc: int
    index_base: int
    index_elem_bytes: int
    n_indices: int
    index_seed: int
    data_base: int
    data_elem_bytes: int
    n_slots: int
    data_pc: int

    def __post_init__(self) -> None:
        if self.index_elem_bytes <= 0 or self.data_elem_bytes <= 0:
            raise ProgramError("element sizes must be positive")
        if self.n_indices <= 0 or self.n_slots <= 0:
            raise ProgramError("n_indices and n_slots must be positive")

    def index_values(self) -> np.ndarray:
        from repro.trace.synthesis import index_array_values

        return index_array_values(self.index_seed, self.n_indices, self.n_slots)

    def position_of(self, addr: int | np.ndarray) -> int | np.ndarray:
        """Element position of a demand access into the index array."""
        return ((addr - self.index_base) // self.index_elem_bytes) % self.n_indices


def index_directory_for(program: Program) -> dict[int, IndexRegion]:
    """Index-load PC → :class:`IndexRegion` for every resolvable pair.

    The structural pairing is :meth:`~repro.isa.program.Program.indirect_pairs`;
    this adds the geometry the hardware needs to resolve future indices.
    """
    from repro.isa.instructions import IndexedAccess, Load

    pairs = program.indirect_pairs()
    if not pairs:
        return {}
    mapping = program.pc_map()
    by_pc: dict[int, IndexedAccess] = {}
    for kernel in program.kernels:
        for instr in kernel.mem_instructions:
            if isinstance(instr, Load) and isinstance(instr.pattern, IndexedAccess):
                by_pc[mapping[(kernel.name, instr.label)]] = instr.pattern
    directory: dict[int, IndexRegion] = {}
    for data_pc, (index_pc, _stride) in pairs.items():
        pat = by_pc[data_pc]
        directory[index_pc] = IndexRegion(
            index_pc=index_pc,
            index_base=pat.index_base,
            index_elem_bytes=pat.index_elem_bytes,
            n_indices=pat.n_indices,
            index_seed=pat.index_seed,
            data_base=pat.base,
            data_elem_bytes=pat.elem_bytes,
            n_slots=pat.n_slots,
            data_pc=data_pc,
        )
    return directory


class CrossCoreLLCPrefetcher(HardwarePrefetcher):
    """Helper prefetcher resolving ``B[i+d]`` into LLC fills of ``A[B[i+d]]``.

    Parameters
    ----------
    regions:
        Index directory (index-load PC → :class:`IndexRegion`), typically
        :func:`index_directory_for`.
    line_bytes:
        LLC line size for address→line conversion.
    degree:
        Consecutive future positions covered per demand index access.
    ahead:
        Run-ahead distance in index *elements* (scaled by the tuning's
        ``distance_scale``).
    """

    name = "hw-xcore"

    def __init__(
        self,
        regions: dict[int, IndexRegion],
        line_bytes: int = 64,
        degree: int = 4,
        ahead: int = 16,
        utilisation: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(utilisation)
        if degree <= 0 or ahead <= 0:
            raise ValueError("degree and ahead must be positive")
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.regions = dict(regions)
        self.line_bytes = line_bytes
        self.degree = degree
        self.ahead = ahead
        self._values: dict[int, np.ndarray] = {}
        self._next: dict[int, int] = {}

    # -- resolution ----------------------------------------------------

    def _region_values(self, region: IndexRegion) -> np.ndarray:
        vals = self._values.get(region.index_pc)
        if vals is None:
            vals = region.index_values()
            self._values[region.index_pc] = vals
        return vals

    def _resolve(self, region: IndexRegion, positions: np.ndarray) -> np.ndarray:
        """Target *lines* of ``A[B[pos]]`` for future index positions.

        Separated out so the validation self-test can break exactly this
        step (issuing unresolved garbage) and check the invariants notice.
        """
        vals = self._region_values(region)
        slots = vals[positions % region.n_indices]
        addrs = region.data_base + slots * region.data_elem_bytes
        return addrs // self.line_bytes

    # -- scalar path ---------------------------------------------------

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        region = self.regions.get(pc)
        if region is None:
            return []
        factor = self._throttle_factor()
        if factor <= 0.0:
            return []
        degree = max(1, round(self.degree * factor))
        ahead = max(1, round(self.ahead * self._tuning.distance_scale))
        start = int(region.position_of(addr)) + ahead
        hi = start + degree - 1
        nxt = self._next.get(pc)
        # Monotone advance: resume at the pointer; a jump (rewind or
        # wrap past the array end) falls outside the window and resets.
        lo = nxt if nxt is not None and start < nxt <= hi + 1 else start
        self._next[pc] = hi + 1
        if lo > hi:
            return []
        lines = self._resolve(region, np.arange(lo, hi + 1, dtype=np.int64))
        return [self._request(int(t), fill_l2=False) for t in lines]

    # -- batched path --------------------------------------------------

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized pointer walk, equivalent to per-access ``observe``.

        Because the pointer after every access is always ``start +
        degree`` regardless of how much was issued, the carried state
        needs no sequential scan: access ``k`` resumes from access
        ``k-1``'s window end, elementwise.
        """
        if not self.batch_safe:
            return super().observe_batch(pcs, addrs, lines, l1_hits)
        if len(pcs) == 0 or not self.regions:
            return _EMPTY_BATCH
        pcs = np.ascontiguousarray(pcs, dtype=np.int64)
        addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        degree = self.degree
        ahead = self.ahead
        ev_parts: list[np.ndarray] = []
        tgt_parts: list[np.ndarray] = []
        for pc, region in self.regions.items():
            idx = np.flatnonzero(pcs == pc)
            if len(idx) == 0:
                continue
            start = region.position_of(addrs[idx]).astype(np.int64) + ahead
            hi = start + degree - 1
            prev_next = np.empty(len(idx), dtype=np.int64)
            prev_next[1:] = start[:-1] + degree
            nxt = self._next.get(pc)
            prev_next[0] = nxt if nxt is not None else start[0] - degree - 1
            resume = (start < prev_next) & (prev_next <= hi + 1)
            lo = np.where(resume, prev_next, start)
            self._next[pc] = int(start[-1]) + degree
            counts = hi - lo + 1
            emit = counts > 0
            if not emit.any():
                continue
            lo_e = lo[emit]
            counts_e = counts[emit]
            ends = np.cumsum(counts_e)
            total = int(ends[-1])
            run_id = np.repeat(np.arange(len(counts_e)), counts_e)
            offsets = np.arange(total) - (ends - counts_e)[run_id]
            positions = lo_e[run_id] + offsets
            ev_parts.append(np.repeat(idx[emit], counts_e))
            tgt_parts.append(self._resolve(region, positions))
        if not ev_parts:
            return _EMPTY_BATCH
        ev = np.concatenate(ev_parts)
        tgt = np.concatenate(tgt_parts)
        order = np.argsort(ev, kind="stable")
        return ev[order], tgt[order], np.zeros(len(ev), dtype=bool)

    def reset(self) -> None:
        self._next.clear()


def cross_core_prefetcher_for(
    program: Program,
    machine: MachineConfig | None = None,
    utilisation: Callable[[], float] | None = None,
    degree: int = 4,
    ahead: int = 16,
) -> CrossCoreLLCPrefetcher:
    """Build the helper prefetcher for a program's resolvable pairs.

    Programs without any ``A[B[i]]`` pair get an engine with an empty
    directory — it observes everything and issues nothing, so the config
    degenerates to the baseline (the honest outcome for e.g. ``bfs``,
    whose visitation order is not index-array indirection).
    """
    line_bytes = machine.line_bytes if machine is not None else 64
    return CrossCoreLLCPrefetcher(
        index_directory_for(program),
        line_bytes=line_bytes,
        degree=degree,
        ahead=ahead,
        utilisation=utilisation,
    )
