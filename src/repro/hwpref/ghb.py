"""Global History Buffer prefetcher with PC-localised delta correlation.

An extension beyond the paper's two machine models: the GHB/PC-DC
prefetcher of Nesbit & Smith (HPCA'04), the classic answer to access
patterns with *repeating but non-constant* deltas (e.g. the
+8,+8,+48,+8,+8,+48… walk of an array of structs accessed field-wise).
A reference-prediction-table prefetcher sees no single dominant stride
there and stays silent; delta correlation finds the repeating delta
*sequence* and replays it.

Mechanism, per load PC:

1. keep the recent history of addresses (the per-PC slice of the GHB);
2. on each access, compute the latest pair of deltas ``(d₋₂, d₋₁)``;
3. search the history for the previous occurrence of that pair;
4. replay the deltas that followed it, issuing up to ``degree``
   prefetches along the predicted path.

Used by the prefetcher-comparison ablation
(``benchmarks/bench_prefetcher_comparison.py``) and available to any
experiment via ``CacheHierarchy(prefetcher=GHBPrefetcher(...))``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.hwpref.base import _EMPTY_BATCH, HardwarePrefetcher, PrefetchRequest

__all__ = ["GHBPrefetcher"]


class GHBPrefetcher(HardwarePrefetcher):
    """GHB PC/DC (delta-correlation) prefetcher.

    Parameters
    ----------
    line_bytes:
        Cache line size for converting predicted addresses to lines.
    history:
        Addresses of each PC's history window (GHB slice length).
    degree:
        Maximum prefetches replayed per trigger.
    table_size:
        Maximum tracked PCs (FIFO replacement).
    """

    name = "hw-ghb"

    def __init__(
        self,
        line_bytes: int = 64,
        history: int = 16,
        degree: int = 4,
        table_size: int = 256,
        utilisation: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(utilisation)
        if history < 4:
            raise ValueError("history must be at least 4")
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.line_bytes = line_bytes
        self.history = history
        self.degree = degree
        self.table_size = table_size
        self._table: dict[int, deque[int]] = {}

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        hist = self._table.get(pc)
        if hist is None:
            if len(self._table) >= self.table_size:
                self._table.pop(next(iter(self._table)))
            hist = deque(maxlen=self.history)
            self._table[pc] = hist
        hist.append(addr)
        if len(hist) < 4:
            return []

        addrs = list(hist)
        deltas = [b - a for a, b in zip(addrs, addrs[1:])]
        key = (deltas[-2], deltas[-1])
        # Find the most recent earlier occurrence of the delta pair.  The
        # newest candidate is i = len(deltas) - 2, whose pair overlaps
        # the key by one delta — exactly the match a constant stride
        # produces first, so starting any lower detects streams one
        # observation late.
        match = -1
        for i in range(len(deltas) - 2, 0, -1):
            if (deltas[i - 1], deltas[i]) == key:
                match = i
                break
        if match < 0:
            return []

        factor = self._throttle_factor()
        if factor <= 0.0:
            return []
        degree = max(1, round(self.degree * factor))
        # replay the deltas that followed the matched pair
        replay = deltas[match + 1 : match + 1 + degree]
        if not replay:
            return []
        requests: list[PrefetchRequest] = []
        seen = {line}
        predicted = addr
        for delta in replay:
            predicted += delta
            target = predicted // self.line_bytes
            if target >= 0 and target not in seen:
                seen.add(target)
                requests.append(self._request(target))
        return requests

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched observe: per-PC vectorised delta correlation.

        GHB state factors cleanly by PC (one history deque each), so the
        batch is grouped by PC and each group replayed with array ops:
        the delta-pair search has a bounded lookback (``history - 1``
        deltas), which unrolls into at most ``history - 2`` shifted
        whole-group comparisons, and the replay gather is a fixed
        ``(group, degree)`` window.  Table insertion order is preserved
        by pre-inserting new PCs in first-occurrence order; when the
        batch would overflow the FIFO table (eviction order depends on
        the exact interleaving) the method falls back to a flat scalar
        loop with identical semantics.
        """
        if not self.batch_safe:
            return super().observe_batch(pcs, addrs, lines, l1_hits)
        n = len(pcs)
        table = self._table
        if n < 64:
            return self._observe_batch_flat(pcs, addrs, lines)
        order = np.argsort(pcs, kind="stable")
        sp = pcs[order]
        uniq, start, counts = np.unique(sp, return_index=True, return_counts=True)
        firsts = order[start]
        new_sel = np.fromiter(
            (pc not in table for pc in uniq.tolist()), dtype=bool, count=len(uniq)
        )
        if len(table) + int(np.count_nonzero(new_sel)) > self.table_size:
            return self._observe_batch_flat(pcs, addrs, lines)
        history = self.history
        for pc in uniq[new_sel][np.argsort(firsts[new_sel])].tolist():
            table[pc] = deque(maxlen=history)

        window = history - 1  # deltas visible from one access
        degree = self.degree
        line_bytes = self.line_bytes
        ks = np.arange(degree)
        ev_out: list[np.ndarray] = []
        tgt_out: list[np.ndarray] = []
        for gi in range(len(uniq)):
            m = int(counts[gi])
            s0 = int(start[gi])
            g_idx = order[s0 : s0 + m]
            hist = table[int(uniq[gi])]
            n_prev = len(hist)
            a_group = np.concatenate(
                (np.fromiter(hist, dtype=np.int64, count=n_prev), addrs[g_idx])
            )
            tail = a_group[-history:]
            hist.clear()
            hist.extend(tail.tolist())
            if n_prev + m < 4:
                continue
            d = np.diff(a_group)
            t = n_prev + np.arange(m)
            valid = t >= 3
            p = np.maximum(0, t - window)
            key1 = d[np.maximum(t - 1, 0)]
            key0 = d[np.maximum(t - 2, 0)]
            # Most-recent-first pair search, unrolled over the bounded
            # offset range: offset o means candidate position g = t - o.
            best_o = np.zeros(m, dtype=np.int64)
            found = np.zeros(m, dtype=bool)
            for o in range(2, window + 1):
                g = t - o
                cand_o = valid & (g >= p + 1)
                if not cand_o.any():
                    break
                g_c = np.maximum(g, 1)
                hit_o = cand_o & ~found & (d[g_c] == key1) & (d[g_c - 1] == key0)
                best_o[hit_o] = o
                found |= hit_o
            if not found.any():
                continue
            g_match = t - best_o
            # Replay window: deltas g+1 .. min(g+degree, t-1), cumulated
            # onto the trigger address.
            ridx = g_match[:, None] + 1 + ks[None, :]
            rvalid = found[:, None] & (ridx <= (t - 1)[:, None])
            rd = np.where(rvalid, d[np.clip(ridx, 0, len(d) - 1)], 0)
            predicted = addrs[g_idx][:, None] + np.cumsum(rd, axis=1)
            targets = predicted // line_bytes
            base_line = lines[g_idx]
            cand = rvalid & (targets >= 0) & (targets != base_line[:, None])
            keep = cand.copy()
            for k in range(1, degree):
                dup_k = np.zeros(m, dtype=bool)
                for j in range(k):
                    dup_k |= cand[:, j] & (targets[:, j] == targets[:, k])
                keep[:, k] &= ~dup_k
            rr, cc = np.nonzero(keep)
            if len(rr):
                ev_out.append(g_idx[rr])
                tgt_out.append(targets[rr, cc])
        if not ev_out:
            return _EMPTY_BATCH
        ev = np.concatenate(ev_out)
        tgt = np.concatenate(tgt_out)
        o = np.argsort(ev, kind="stable")
        return ev[o], tgt[o], np.ones(len(ev), dtype=bool)

    def _observe_batch_flat(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat scalar loop fallback (FIFO-eviction-exact)."""
        table = self._table
        table_size = self.table_size
        history = self.history
        degree = self.degree
        line_bytes = self.line_bytes
        ev: list[int] = []
        targets: list[int] = []
        pcs_l = pcs.tolist()
        addrs_l = addrs.tolist()
        lines_l = lines.tolist()
        for i in range(len(pcs_l)):
            pc = pcs_l[i]
            addr = addrs_l[i]
            hist = table.get(pc)
            if hist is None:
                if len(table) >= table_size:
                    table.pop(next(iter(table)))
                hist = deque(maxlen=history)
                table[pc] = hist
            hist.append(addr)
            if len(hist) < 4:
                continue
            addr_list = list(hist)
            deltas = [b - a for a, b in zip(addr_list, addr_list[1:])]
            key0 = deltas[-2]
            key1 = deltas[-1]
            match = -1
            for j in range(len(deltas) - 2, 0, -1):
                if deltas[j] == key1 and deltas[j - 1] == key0:
                    match = j
                    break
            if match < 0:
                continue
            replay = deltas[match + 1 : match + 1 + degree]
            if not replay:
                continue
            line = lines_l[i]
            seen = {line}
            predicted = addr
            for delta in replay:
                predicted += delta
                target = predicted // line_bytes
                if target >= 0 and target not in seen:
                    seen.add(target)
                    ev.append(i)
                    targets.append(target)
        if not ev:
            return _EMPTY_BATCH
        return (
            np.asarray(ev, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            np.ones(len(ev), dtype=bool),
        )

    def reset(self) -> None:
        self._table.clear()
