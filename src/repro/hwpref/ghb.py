"""Global History Buffer prefetcher with PC-localised delta correlation.

An extension beyond the paper's two machine models: the GHB/PC-DC
prefetcher of Nesbit & Smith (HPCA'04), the classic answer to access
patterns with *repeating but non-constant* deltas (e.g. the
+8,+8,+48,+8,+8,+48… walk of an array of structs accessed field-wise).
A reference-prediction-table prefetcher sees no single dominant stride
there and stays silent; delta correlation finds the repeating delta
*sequence* and replays it.

Mechanism, per load PC:

1. keep the recent history of addresses (the per-PC slice of the GHB);
2. on each access, compute the latest pair of deltas ``(d₋₂, d₋₁)``;
3. search the history for the previous occurrence of that pair;
4. replay the deltas that followed it, issuing up to ``degree``
   prefetches along the predicted path.

Used by the prefetcher-comparison ablation
(``benchmarks/bench_prefetcher_comparison.py``) and available to any
experiment via ``CacheHierarchy(prefetcher=GHBPrefetcher(...))``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.hwpref.base import HardwarePrefetcher, PrefetchRequest

__all__ = ["GHBPrefetcher"]


class GHBPrefetcher(HardwarePrefetcher):
    """GHB PC/DC (delta-correlation) prefetcher.

    Parameters
    ----------
    line_bytes:
        Cache line size for converting predicted addresses to lines.
    history:
        Addresses of each PC's history window (GHB slice length).
    degree:
        Maximum prefetches replayed per trigger.
    table_size:
        Maximum tracked PCs (FIFO replacement).
    """

    name = "hw-ghb"

    def __init__(
        self,
        line_bytes: int = 64,
        history: int = 16,
        degree: int = 4,
        table_size: int = 256,
        utilisation: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(utilisation)
        if history < 4:
            raise ValueError("history must be at least 4")
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.line_bytes = line_bytes
        self.history = history
        self.degree = degree
        self.table_size = table_size
        self._table: dict[int, deque[int]] = {}

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        hist = self._table.get(pc)
        if hist is None:
            if len(self._table) >= self.table_size:
                self._table.pop(next(iter(self._table)))
            hist = deque(maxlen=self.history)
            self._table[pc] = hist
        hist.append(addr)
        if len(hist) < 4:
            return []

        addrs = list(hist)
        deltas = [b - a for a, b in zip(addrs, addrs[1:])]
        key = (deltas[-2], deltas[-1])
        # Find the most recent earlier occurrence of the delta pair.  The
        # newest candidate is i = len(deltas) - 2, whose pair overlaps
        # the key by one delta — exactly the match a constant stride
        # produces first, so starting any lower detects streams one
        # observation late.
        match = -1
        for i in range(len(deltas) - 2, 0, -1):
            if (deltas[i - 1], deltas[i]) == key:
                match = i
                break
        if match < 0:
            return []

        degree = max(1, round(self.degree * self._throttle_factor()))
        # replay the deltas that followed the matched pair
        replay = deltas[match + 1 : match + 1 + degree]
        if not replay:
            return []
        requests: list[PrefetchRequest] = []
        seen = {line}
        predicted = addr
        for delta in replay:
            predicted += delta
            target = predicted // self.line_bytes
            if target >= 0 and target not in seen:
                seen.add(target)
                requests.append(PrefetchRequest(target))
        return requests

    def reset(self) -> None:
        self._table.clear()
