"""Hardware prefetcher interface.

A hardware prefetcher observes the demand-access stream (program counter,
byte address, line number, and whether the access hit in L1) and returns
the cache lines it wants fetched.  The cache hierarchy issues these fills
into the prefetcher's ``fill_level`` and charges their off-chip traffic —
speculative fetches are exactly how the paper's hardware baselines waste
shared resources.

Prefetchers may be *throttled*: when constructed with a ``utilisation``
callback (typically :meth:`repro.cachesim.bandwidth.BandwidthModel.utilisation`),
implementations reduce their aggressiveness as off-chip utilisation
rises, mirroring how commodity parts back off under contention (and, as
the paper observes, still emit significant useless traffic).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["PrefetchRequest", "HardwarePrefetcher", "NullPrefetcher"]

#: Empty batch result, shared by implementations with nothing to issue.
_EMPTY_BATCH = (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=bool),
)


@dataclass(frozen=True)
class PrefetchRequest:
    """One line the hardware prefetcher wants brought on chip."""

    line: int
    fill_l2: bool = True

    def __post_init__(self) -> None:
        if self.line < 0:
            raise ValueError("prefetch line must be non-negative")


class HardwarePrefetcher(ABC):
    """Base class for hardware prefetcher models."""

    #: name used in experiment reports
    name: str = "hw"

    def __init__(self, utilisation: Callable[[], float] | None = None) -> None:
        self._utilisation = utilisation

    @abstractmethod
    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        """React to one demand access; return lines to prefetch."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all training state (between runs)."""

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Observe a run of demand accesses at once.

        Returns ``(ev, lines, fill_l2)``: for each issued request, the
        index of the triggering access within this batch (non-decreasing;
        requests for the same access appear in issue order), the target
        line, and whether it fills L2.  Must be equivalent to calling
        :meth:`observe` once per access in order — this default does
        exactly that; subclasses override it with vectorized
        implementations.
        """
        ev: list[int] = []
        out_lines: list[int] = []
        fill: list[bool] = []
        observe = self.observe
        pcs_l = pcs.tolist()
        addrs_l = addrs.tolist()
        lines_l = lines.tolist()
        hits_l = l1_hits.tolist()
        for i in range(len(lines_l)):
            for req in observe(pcs_l[i], addrs_l[i], lines_l[i], hits_l[i]):
                ev.append(i)
                out_lines.append(req.line)
                fill.append(req.fill_l2)
        if not ev:
            return _EMPTY_BATCH
        return (
            np.asarray(ev, dtype=np.int64),
            np.asarray(out_lines, dtype=np.int64),
            np.asarray(fill, dtype=bool),
        )

    @property
    def batch_safe(self) -> bool:
        """Whether ``observe_batch`` is legal for whole-run batching.

        Throttled prefetchers read time-varying bandwidth utilisation per
        access, which a single batched call cannot reproduce, so they
        must be driven through the scalar :meth:`observe` path.
        """
        return self._utilisation is None

    def _throttle_factor(self) -> float:
        """Scale factor in (0, 1] applied to prefetch degree.

        Linearly backs off from full aggressiveness at 70 % utilisation to
        a floor of 25 % at saturation.  Subclasses multiply their degree
        by this factor; without a utilisation callback it is always 1.
        """
        if self._utilisation is None:
            return 1.0
        rho = self._utilisation()
        if rho <= 0.70:
            return 1.0
        span = (rho - 0.70) / 0.30
        return max(0.25, 1.0 - 0.75 * min(span, 1.0))


class NullPrefetcher(HardwarePrefetcher):
    """Hardware prefetching disabled (the paper's baseline)."""

    name = "none"

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        return []

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return _EMPTY_BATCH

    def reset(self) -> None:
        pass
