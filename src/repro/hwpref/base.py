"""Hardware prefetcher interface.

A hardware prefetcher observes the demand-access stream (program counter,
byte address, line number, and whether the access hit in L1) and returns
the cache lines it wants fetched.  The cache hierarchy issues these fills
into the prefetcher's ``fill_level`` and charges their off-chip traffic —
speculative fetches are exactly how the paper's hardware baselines waste
shared resources.

Prefetchers may be *throttled*: when constructed with a ``utilisation``
callback (typically :meth:`repro.cachesim.bandwidth.BandwidthModel.utilisation`),
implementations reduce their aggressiveness as off-chip utilisation
rises, mirroring how commodity parts back off under contention (and, as
the paper observes, still emit significant useless traffic).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "PrefetchRequest",
    "PrefetchTuning",
    "DEFAULT_TUNING",
    "HardwarePrefetcher",
    "NullPrefetcher",
    "throttle_factor",
]

#: Empty batch result, shared by implementations with nothing to issue.
_EMPTY_BATCH = (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=bool),
)


def throttle_factor(rho: float) -> float:
    """Aggressiveness kept by a hardware prefetcher at utilisation ``rho``.

    The one canonical back-off curve: full aggressiveness below 70 %
    controller utilisation, linear back-off to a 25 % floor at
    saturation.  Both the per-access prefetcher models (via
    :meth:`HardwarePrefetcher._throttle_factor`) and the analytic
    contention model (:mod:`repro.multicore.contention`) evaluate this
    same function, so the two paths cannot drift.
    """
    if rho <= 0.70:
        return 1.0
    span = (rho - 0.70) / 0.30
    return max(0.25, 1.0 - 0.75 * min(span, 1.0))


@dataclass(frozen=True)
class PrefetchRequest:
    """One line the hardware prefetcher wants brought on chip."""

    line: int
    fill_l2: bool = True
    #: Skip the LLC on the fill (non-temporal), leaving shared space to
    #: neighbours — set when a coordinator retargets the prefetcher.
    llc_bypass: bool = False

    def __post_init__(self) -> None:
        if self.line < 0:
            raise ValueError("prefetch line must be non-negative")


@dataclass(frozen=True)
class PrefetchTuning:
    """Dynamic reconfiguration knobs a coordinator can set per core.

    ``degree_scale`` multiplies the model's native degree/back-off
    factor, ``distance_scale`` its prefetch distance; ``nta_bypass``
    makes issued fills skip the shared LLC; ``enabled=False`` gates the
    prefetcher off entirely.  The default tuning is a no-op: every model
    behaves bit-identically to an untuned prefetcher.
    """

    degree_scale: float = 1.0
    distance_scale: float = 1.0
    nta_bypass: bool = False
    enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.degree_scale <= 1.0:
            raise ValueError("degree_scale must be in [0, 1]")
        if not 0.0 < self.distance_scale <= 4.0:
            raise ValueError("distance_scale must be in (0, 4]")


#: The identity tuning (see :class:`PrefetchTuning`).
DEFAULT_TUNING = PrefetchTuning()


class HardwarePrefetcher(ABC):
    """Base class for hardware prefetcher models."""

    #: name used in experiment reports
    name: str = "hw"

    def __init__(self, utilisation: Callable[[], float] | None = None) -> None:
        self._utilisation = utilisation
        self._tuning = DEFAULT_TUNING

    @property
    def tuning(self) -> PrefetchTuning:
        """The currently applied dynamic tuning."""
        return self._tuning

    def apply_tuning(self, tuning: PrefetchTuning) -> None:
        """Reconfigure aggressiveness at a control-epoch boundary.

        Takes effect on the next :meth:`observe` call; composite models
        forward it to every component.
        """
        self._tuning = tuning

    def _request(self, line: int, fill_l2: bool = True) -> PrefetchRequest:
        """Build a request that honours the current tuning's NTA bypass."""
        return PrefetchRequest(line, fill_l2, llc_bypass=self._tuning.nta_bypass)

    @abstractmethod
    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        """React to one demand access; return lines to prefetch."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all training state (between runs)."""

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Observe a run of demand accesses at once.

        Returns ``(ev, lines, fill_l2)``: for each issued request, the
        index of the triggering access within this batch (non-decreasing;
        requests for the same access appear in issue order), the target
        line, and whether it fills L2.  Must be equivalent to calling
        :meth:`observe` once per access in order — this default does
        exactly that; subclasses override it with vectorized
        implementations.
        """
        ev: list[int] = []
        out_lines: list[int] = []
        fill: list[bool] = []
        observe = self.observe
        pcs_l = pcs.tolist()
        addrs_l = addrs.tolist()
        lines_l = lines.tolist()
        hits_l = l1_hits.tolist()
        for i in range(len(lines_l)):
            for req in observe(pcs_l[i], addrs_l[i], lines_l[i], hits_l[i]):
                ev.append(i)
                out_lines.append(req.line)
                fill.append(req.fill_l2)
        if not ev:
            return _EMPTY_BATCH
        return (
            np.asarray(ev, dtype=np.int64),
            np.asarray(out_lines, dtype=np.int64),
            np.asarray(fill, dtype=bool),
        )

    @property
    def batch_safe(self) -> bool:
        """Whether ``observe_batch`` is legal for whole-run batching.

        Throttled prefetchers read time-varying bandwidth utilisation per
        access, which a single batched call cannot reproduce, so they
        must be driven through the scalar :meth:`observe` path.  The
        same holds for coordinator-tuned prefetchers: the batched result
        tuple carries no bypass channel and tuning may change between
        epochs, so any non-default tuning forces the scalar path too.
        """
        return self._utilisation is None and self._tuning == DEFAULT_TUNING

    def _throttle_factor(self) -> float:
        """Scale factor in [0, 1] applied to prefetch degree.

        Combines the shared utilisation back-off curve
        (:func:`throttle_factor`) with the coordinator's
        ``degree_scale``; ``enabled=False`` yields 0 (models must then
        issue nothing).  Without a utilisation callback or tuning it is
        always 1.
        """
        tuning = self._tuning
        if not tuning.enabled:
            return 0.0
        if self._utilisation is None:
            return tuning.degree_scale
        return tuning.degree_scale * throttle_factor(self._utilisation())


class NullPrefetcher(HardwarePrefetcher):
    """Hardware prefetching disabled (the paper's baseline)."""

    name = "none"

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        return []

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return _EMPTY_BATCH

    def reset(self) -> None:
        pass
