"""Hardware prefetcher interface.

A hardware prefetcher observes the demand-access stream (program counter,
byte address, line number, and whether the access hit in L1) and returns
the cache lines it wants fetched.  The cache hierarchy issues these fills
into the prefetcher's ``fill_level`` and charges their off-chip traffic —
speculative fetches are exactly how the paper's hardware baselines waste
shared resources.

Prefetchers may be *throttled*: when constructed with a ``utilisation``
callback (typically :meth:`repro.cachesim.bandwidth.BandwidthModel.utilisation`),
implementations reduce their aggressiveness as off-chip utilisation
rises, mirroring how commodity parts back off under contention (and, as
the paper observes, still emit significant useless traffic).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

__all__ = ["PrefetchRequest", "HardwarePrefetcher", "NullPrefetcher"]


@dataclass(frozen=True)
class PrefetchRequest:
    """One line the hardware prefetcher wants brought on chip."""

    line: int
    fill_l2: bool = True

    def __post_init__(self) -> None:
        if self.line < 0:
            raise ValueError("prefetch line must be non-negative")


class HardwarePrefetcher(ABC):
    """Base class for hardware prefetcher models."""

    #: name used in experiment reports
    name: str = "hw"

    def __init__(self, utilisation: Callable[[], float] | None = None) -> None:
        self._utilisation = utilisation

    @abstractmethod
    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        """React to one demand access; return lines to prefetch."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all training state (between runs)."""

    def _throttle_factor(self) -> float:
        """Scale factor in (0, 1] applied to prefetch degree.

        Linearly backs off from full aggressiveness at 70 % utilisation to
        a floor of 25 % at saturation.  Subclasses multiply their degree
        by this factor; without a utilisation callback it is always 1.
        """
        if self._utilisation is None:
            return 1.0
        rho = self._utilisation()
        if rho <= 0.70:
            return 1.0
        span = (rho - 0.70) / 0.30
        return max(0.25, 1.0 - 0.75 * min(span, 1.0))


class NullPrefetcher(HardwarePrefetcher):
    """Hardware prefetching disabled (the paper's baseline)."""

    name = "none"

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        return []

    def reset(self) -> None:
        pass
