"""Adjacent-line (buddy) prefetcher.

On every L1 miss it fetches the other half of the aligned 128-byte pair
(line XOR 1).  Intel parts pair this "spatial" prefetcher with the
streamer; it is cheap and helps spatially-local codes, but on scattered
misses half its fetches are pure waste — the paper credits it for cigar's
speedup under Intel hardware prefetching (useful buddies) while it also
contributes to Intel's 628 % cigar traffic blow-up.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hwpref.base import HardwarePrefetcher, PrefetchRequest

__all__ = ["AdjacentLinePrefetcher"]


class AdjacentLinePrefetcher(HardwarePrefetcher):
    """Fetch the buddy line of every L1 miss."""

    name = "hw-adjacent"

    def __init__(
        self,
        on_miss_only: bool = True,
        utilisation: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(utilisation)
        self.on_miss_only = on_miss_only

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        if self.on_miss_only and l1_hit:
            return []
        if self._throttle_factor() < 0.5:
            # Under heavy contention the spatial prefetcher is the first
            # to be gated off.
            return []
        return [PrefetchRequest(line ^ 1)]

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._utilisation is not None:
            # Throttled: per-access gating is time-dependent; use the
            # scalar fallback so behaviour matches observe().
            return super().observe_batch(pcs, addrs, lines, l1_hits)
        if self.on_miss_only:
            ev = np.nonzero(~np.asarray(l1_hits, dtype=bool))[0].astype(np.int64)
            targets = np.asarray(lines, dtype=np.int64)[ev] ^ 1
        else:
            ev = np.arange(len(lines), dtype=np.int64)
            targets = np.asarray(lines, dtype=np.int64) ^ 1
        return ev, targets, np.ones(len(ev), dtype=bool)

    def reset(self) -> None:
        pass
