"""Adjacent-line (buddy) prefetcher.

On every L1 miss it fetches the other half of the aligned 128-byte pair
(line XOR 1).  Intel parts pair this "spatial" prefetcher with the
streamer; it is cheap and helps spatially-local codes, but on scattered
misses half its fetches are pure waste — the paper credits it for cigar's
speedup under Intel hardware prefetching (useful buddies) while it also
contributes to Intel's 628 % cigar traffic blow-up.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hwpref.base import HardwarePrefetcher, PrefetchRequest

__all__ = ["AdjacentLinePrefetcher"]


class AdjacentLinePrefetcher(HardwarePrefetcher):
    """Fetch the buddy line of every L1 miss."""

    name = "hw-adjacent"

    def __init__(
        self,
        on_miss_only: bool = True,
        utilisation: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(utilisation)
        self.on_miss_only = on_miss_only
        self._duty = 0.0

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        if self.on_miss_only and l1_hit:
            return []
        # Duty-cycled back-off: issue buddies on a deterministic fraction
        # of eligible accesses equal to the throttle factor, so the
        # documented linear-to-25%-floor curve holds in expectation over
        # any utilisation band (no cliff, no RNG).  At factor 1.0 the
        # accumulator fires on every access.
        factor = self._throttle_factor()
        if factor <= 0.0:
            return []
        self._duty += factor
        if self._duty < 1.0 - 1e-9:
            return []
        self._duty -= 1.0
        return [self._request(line ^ 1)]

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not self.batch_safe:
            # Throttled or tuned: per-access gating is time-dependent;
            # use the scalar fallback so behaviour matches observe().
            return super().observe_batch(pcs, addrs, lines, l1_hits)
        if self.on_miss_only:
            ev = np.nonzero(~np.asarray(l1_hits, dtype=bool))[0].astype(np.int64)
            targets = np.asarray(lines, dtype=np.int64)[ev] ^ 1
        else:
            ev = np.arange(len(lines), dtype=np.int64)
            targets = np.asarray(lines, dtype=np.int64) ^ 1
        return ev, targets, np.ones(len(ev), dtype=bool)

    def reset(self) -> None:
        self._duty = 0.0
