"""Streamer prefetcher and composite machine prefetchers.

:class:`StreamerPrefetcher` models the Intel Sandy Bridge L2 "streamer":
it tracks access streams within 4 kB pages, detects a direction from the
first few line accesses, and then runs ahead of the stream with a degree
that grows with confidence.  Combined with the adjacent-line prefetcher
(:mod:`repro.hwpref.nextline`) this reproduces the aggressive behaviour
the paper measures on the i7-2600K: excellent single-thread speedups on
regular codes, but large speculative overshoot — every detected stream is
extended past its true end, and scattered misses drag in buddy lines.

:func:`amd_hw_prefetcher` / :func:`intel_hw_prefetcher` build the per-
machine composites used throughout the evaluation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hwpref.base import _EMPTY_BATCH, HardwarePrefetcher, PrefetchRequest
from repro.hwpref.nextline import AdjacentLinePrefetcher
from repro.hwpref.stride_pref import PCStridePrefetcher

__all__ = [
    "StreamerPrefetcher",
    "CompositePrefetcher",
    "amd_hw_prefetcher",
    "intel_hw_prefetcher",
]


class _Stream:
    __slots__ = ("last_line", "direction", "confidence")

    def __init__(self, line: int) -> None:
        self.last_line = line
        self.direction = 0
        self.confidence = 0


class StreamerPrefetcher(HardwarePrefetcher):
    """Page-local stream detector with confidence-scaled degree.

    Parameters
    ----------
    line_bytes:
        Cache line size in bytes.
    page_bytes:
        Tracking granularity (streams do not cross pages).
    max_degree:
        Lines fetched ahead at full confidence.
    max_streams:
        Concurrently tracked pages (FIFO replacement).
    cross_page:
        If True, a confident stream continues prefetching into the next
        page — the over-aggressive behaviour that inflates traffic.
    """

    name = "hw-streamer"

    def __init__(
        self,
        line_bytes: int = 64,
        page_bytes: int = 4096,
        max_degree: int = 4,
        max_streams: int = 32,
        cross_page: bool = True,
        utilisation: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(utilisation)
        if max_degree <= 0:
            raise ValueError("max_degree must be positive")
        self.line_bytes = line_bytes
        self.lines_per_page = max(1, page_bytes // line_bytes)
        self.max_degree = max_degree
        self.max_streams = max_streams
        self.cross_page = cross_page
        self._streams: dict[int, _Stream] = {}

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        page = line // self.lines_per_page
        stream = self._streams.get(page)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                self._streams.pop(next(iter(self._streams)))
            self._streams[page] = _Stream(line)
            return []

        delta = line - stream.last_line
        stream.last_line = line
        if delta == 0:
            return []
        direction = 1 if delta > 0 else -1
        if direction == stream.direction:
            stream.confidence = min(stream.confidence + 1, 8)
        else:
            stream.direction = direction
            stream.confidence = 1
            return []

        factor = self._throttle_factor()
        if factor <= 0.0:
            return []
        # The run-ahead window widens with confidence: a proven stream is
        # kept `max_degree` lines ahead of demand.  Resident lines are
        # filtered by the hierarchy, so in steady state only the window's
        # leading edge causes fills.
        window = max(1, round(stream.confidence * self.max_degree / 4 * factor))
        requests: list[PrefetchRequest] = []
        for k in range(1, window + 1):
            target = line + direction * k
            if target < 0:
                break
            if not self.cross_page and target // self.lines_per_page != page:
                break
            requests.append(self._request(target))
        return requests

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched observe: one flat loop over the run.

        The FIFO page table (``max_streams``) makes stream tracking
        order-sensitive across pages, so this stays a loop — but a flat
        one with local bindings and no per-request object construction,
        several times cheaper than ``observe()`` per event.
        """
        if not self.batch_safe:
            return super().observe_batch(pcs, addrs, lines, l1_hits)
        streams = self._streams
        lpp = self.lines_per_page
        max_streams = self.max_streams
        quarter_degree = self.max_degree / 4
        cross_page = self.cross_page
        ev: list[int] = []
        targets: list[int] = []
        for i, line in enumerate(lines.tolist()):
            page = line // lpp
            stream = streams.get(page)
            if stream is None:
                if len(streams) >= max_streams:
                    streams.pop(next(iter(streams)))
                streams[page] = _Stream(line)
                continue
            delta = line - stream.last_line
            stream.last_line = line
            if delta == 0:
                continue
            direction = 1 if delta > 0 else -1
            if direction != stream.direction:
                stream.direction = direction
                stream.confidence = 1
                continue
            confidence = stream.confidence
            if confidence < 8:
                confidence += 1
                stream.confidence = confidence
            window = max(1, round(confidence * quarter_degree))
            for k in range(1, window + 1):
                target = line + direction * k
                if target < 0:
                    break
                if not cross_page and target // lpp != page:
                    break
                ev.append(i)
                targets.append(target)
        if not ev:
            return _EMPTY_BATCH
        return (
            np.asarray(ev, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            np.ones(len(ev), dtype=bool),
        )

    def reset(self) -> None:
        self._streams.clear()


class CompositePrefetcher(HardwarePrefetcher):
    """Union of several prefetcher components (deduplicated per access)."""

    def __init__(self, components: list[HardwarePrefetcher], name: str = "hw-composite") -> None:
        super().__init__(None)
        if not components:
            raise ValueError("CompositePrefetcher needs at least one component")
        self.components = components
        self.name = name

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        seen: set[int] = set()
        out: list[PrefetchRequest] = []
        for comp in self.components:
            for req in comp.observe(pc, addr, line, l1_hit):
                if req.line not in seen:
                    seen.add(req.line)
                    out.append(req)
        return out

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenate component batches, dedup per access deterministically.

        Per access, the first component to request a line wins (same rule
        as the scalar path); later duplicates are dropped.
        """
        parts = [c.observe_batch(pcs, addrs, lines, l1_hits) for c in self.components]
        parts = [p for p in parts if len(p[0])]
        if not parts:
            return _EMPTY_BATCH
        if len(parts) == 1:
            ev, tgt, fill = parts[0]
        else:
            comp_id = np.concatenate(
                [np.full(len(p[0]), c, dtype=np.int64) for c, p in enumerate(parts)]
            )
            ev = np.concatenate([p[0] for p in parts])
            tgt = np.concatenate([p[1] for p in parts])
            fill = np.concatenate([p[2] for p in parts])
            order = np.lexsort((comp_id, ev))
            ev = ev[order]
            tgt = tgt[order]
            fill = fill[order]
        # Drop per-access duplicate lines, keeping the earliest request.
        seq = np.arange(len(ev))
        by_line = np.lexsort((seq, tgt, ev))
        dup = np.zeros(len(ev), dtype=bool)
        same = (ev[by_line][1:] == ev[by_line][:-1]) & (tgt[by_line][1:] == tgt[by_line][:-1])
        dup[by_line[1:][same]] = True
        if dup.any():
            keep = ~dup
            ev = ev[keep]
            tgt = tgt[keep]
            fill = fill[keep]
        return ev, tgt, fill

    @property
    def batch_safe(self) -> bool:
        return super().batch_safe and all(c.batch_safe for c in self.components)

    def apply_tuning(self, tuning) -> None:
        super().apply_tuning(tuning)
        for comp in self.components:
            comp.apply_tuning(tuning)

    def reset(self) -> None:
        for comp in self.components:
            comp.reset()


def amd_hw_prefetcher(
    line_bytes: int = 64,
    utilisation: Callable[[], float] | None = None,
) -> HardwarePrefetcher:
    """AMD Phenom II model: per-PC stride prefetcher only.

    No adjacent-line component — which is why cigar gains nothing and
    loses cache space under AMD hardware prefetching (paper §VII-A).
    The low training threshold makes it eager: any repeated stride fires,
    so loosely-regular access (gathers, bursts) triggers speculative
    fetches that inflate traffic.
    """
    return PCStridePrefetcher(
        line_bytes=line_bytes,
        degree=2,
        distance_lines=2,
        train_threshold=1,
        max_ramp=3,
        utilisation=utilisation,
    )


def intel_hw_prefetcher(
    line_bytes: int = 64,
    utilisation: Callable[[], float] | None = None,
) -> HardwarePrefetcher:
    """Intel Sandy Bridge model: streamer + adjacent-line prefetchers."""
    return CompositePrefetcher(
        [
            StreamerPrefetcher(
                line_bytes=line_bytes,
                max_degree=8,
                cross_page=False,
                utilisation=utilisation,
            ),
            AdjacentLinePrefetcher(utilisation=utilisation),
        ],
        name="hw-intel",
    )
