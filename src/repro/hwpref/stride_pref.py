"""Per-PC stride prefetcher (reference prediction table).

Models the AMD Phenom II family's data prefetcher: a table indexed by the
program counter tracks the last address and last stride of each load.
Two consecutive matching strides train an entry; a trained entry issues
``degree`` prefetches ``distance`` strides ahead of the demand stream.

This design is fast to train and very effective on long regular streams,
but it is exactly the prefetcher that cigar's *short-lived* strided
bursts defeat: the bursts are long enough to train the table, after which
the prefetcher runs ahead of a stream that is about to end, fetching data
the program never touches (paper §VII-A reports an 11 % slowdown).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hwpref.base import _EMPTY_BATCH, HardwarePrefetcher, PrefetchRequest

__all__ = ["PCStridePrefetcher"]


class _Entry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, addr: int) -> None:
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0


class PCStridePrefetcher(HardwarePrefetcher):
    """Reference-prediction-table stride prefetcher.

    Lookahead is expressed in *cache lines*: once trained, the prefetcher
    keeps a window of ``degree`` lines starting ``distance_lines`` ahead
    of the demand stream filled, with the effective distance ramping up
    with confidence (real prefetchers start conservatively and run
    further ahead as a stream proves stable).  Because already-resident
    lines are filtered by the hierarchy, the steady-state cost is about
    one new fill per demanded line — plus the overshoot past stream ends
    that makes the scheme wasteful on short streams.

    Parameters
    ----------
    line_bytes:
        Cache line size, for converting predicted addresses to lines.
    degree:
        Width of the prefetch window in lines per trained access.
    distance_lines:
        Base lookahead (in lines) of the window at minimum confidence;
        scales up to 4x with confidence.
    train_threshold:
        Consecutive matching strides required before issuing.
    table_size:
        Maximum tracked PCs (FIFO replacement beyond this).
    """

    name = "hw-stride"

    def __init__(
        self,
        line_bytes: int = 64,
        degree: int = 2,
        distance_lines: int = 3,
        train_threshold: int = 2,
        table_size: int = 256,
        max_ramp: int = 4,
        utilisation: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(utilisation)
        if degree <= 0 or distance_lines <= 0 or train_threshold <= 0:
            raise ValueError("degree, distance_lines and train_threshold must be positive")
        if max_ramp <= 0:
            raise ValueError("max_ramp must be positive")
        self.line_bytes = line_bytes
        self.degree = degree
        self.distance_lines = distance_lines
        self.max_ramp = max_ramp
        self.train_threshold = train_threshold
        self.table_size = table_size
        self._table: dict[int, _Entry] = {}

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # FIFO replacement: drop the oldest trained PC.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _Entry(addr)
            return []

        stride = addr - entry.last_addr
        entry.last_addr = addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 8)
        else:
            entry.stride = stride
            entry.confidence = 1
            return []

        if entry.confidence < self.train_threshold:
            return []

        factor = self._throttle_factor()
        if factor <= 0.0:
            return []
        direction = 1 if stride > 0 else -1
        # Strides below a line advance one line per several accesses;
        # larger strides skip `step` lines per access.
        step = max(1, abs(stride) // self.line_bytes)
        ramp = min(self.max_ramp, entry.confidence - self.train_threshold + 1)
        distance = max(1, round(self.distance_lines * ramp * self._tuning.distance_scale))
        degree = max(1, round(self.degree * factor))
        requests: list[PrefetchRequest] = []
        for k in range(degree):
            target = line + direction * step * (distance + k)
            if target >= 0 and target != line:
                requests.append(self._request(target))
        return requests

    def observe_batch(
        self,
        pcs: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        l1_hits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized per-PC stride training and issue.

        Confidence after each non-zero stride is a function of its run
        of equal consecutive strides, so a whole batch trains with
        grouped array arithmetic.  Falls back to the scalar loop when
        throttled (time-dependent degree) or when the table would
        overflow mid-batch (FIFO evictions are order-sensitive).
        """
        if not self.batch_safe:
            return super().observe_batch(pcs, addrs, lines, l1_hits)
        pcs = np.ascontiguousarray(pcs, dtype=np.int64)
        addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        if len(pcs) == 0:
            return _EMPTY_BATCH
        order = np.argsort(pcs, kind="stable")
        uniq, starts = np.unique(pcs[order], return_index=True)
        new_pcs = sum(1 for p in uniq.tolist() if p not in self._table)
        if len(self._table) + new_pcs > self.table_size:
            return super().observe_batch(pcs, addrs, lines, l1_hits)

        degree = self.degree
        thr = self.train_threshold
        ev_parts: list[np.ndarray] = []
        tgt_parts: list[np.ndarray] = []
        # Insert brand-new PCs in first-occurrence order so future FIFO
        # evictions replay identically to the scalar path.
        first_seen = {int(p): int(order[s]) for p, s in zip(uniq.tolist(), starts.tolist())}
        for p in sorted(first_seen, key=first_seen.get):
            if p not in self._table:
                self._table[p] = _Entry(0)
                self._table[p].last_addr = None  # type: ignore[assignment]

        bounds = np.append(starts, len(pcs))
        for g, p in enumerate(uniq.tolist()):
            idx = order[bounds[g] : bounds[g + 1]]
            idx.sort()
            a = addrs[idx]
            entry = self._table[p]
            if entry.last_addr is None:
                # Created above: the first access trains, issues nothing.
                entry.last_addr = int(a[0])
                entry.stride = 0
                entry.confidence = 0
                if len(a) == 1:
                    continue
                prev = a[:-1]
                cur = a[1:]
                cur_idx = idx[1:]
            else:
                prev = np.concatenate(([entry.last_addr], a[:-1]))
                cur = a
                cur_idx = idx
            strides = cur - prev
            entry.last_addr = int(a[-1])
            nz = strides != 0
            if not nz.any():
                continue
            s = strides[nz]
            s_idx = cur_idx[nz]
            s_lines = lines[s_idx]
            m = len(s)
            # Run decomposition over equal consecutive strides; run 0 may
            # continue the entry's trained stride and inherit confidence.
            new_run = np.empty(m, dtype=bool)
            new_run[0] = int(s[0]) != entry.stride
            new_run[1:] = s[1:] != s[:-1]
            pos = np.arange(m)
            run_start = np.maximum.accumulate(np.where(new_run, pos, 0))
            k_in_run = pos - run_start
            base = np.zeros(m, dtype=np.int64)
            if not new_run[0]:
                base[run_start == 0] = entry.confidence
            conf = np.minimum(base + 1 + k_in_run, 8)
            entry.stride = int(s[-1])
            entry.confidence = int(conf[-1])
            issue = (~new_run) | (~new_run[0] & (run_start == 0))
            issue &= conf >= thr
            if not issue.any():
                continue
            si = s[issue]
            direction = np.where(si > 0, 1, -1)
            step = np.maximum(1, np.abs(si) // self.line_bytes)
            ramp = np.minimum(self.max_ramp, conf[issue] - thr + 1)
            distance = self.distance_lines * ramp
            base_line = s_lines[issue]
            targets = (
                base_line[:, None]
                + direction[:, None] * step[:, None] * (distance[:, None] + np.arange(degree))
            )
            valid = (targets >= 0) & (targets != base_line[:, None])
            ev_rep = np.repeat(s_idx[issue], degree).reshape(-1, degree)
            ev_parts.append(ev_rep[valid])
            tgt_parts.append(targets[valid])

        if not ev_parts:
            return _EMPTY_BATCH
        ev = np.concatenate(ev_parts)
        tgt = np.concatenate(tgt_parts)
        final = np.argsort(ev, kind="stable")
        ev = ev[final]
        tgt = tgt[final]
        return ev, tgt, np.ones(len(ev), dtype=bool)

    def reset(self) -> None:
        self._table.clear()
