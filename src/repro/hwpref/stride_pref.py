"""Per-PC stride prefetcher (reference prediction table).

Models the AMD Phenom II family's data prefetcher: a table indexed by the
program counter tracks the last address and last stride of each load.
Two consecutive matching strides train an entry; a trained entry issues
``degree`` prefetches ``distance`` strides ahead of the demand stream.

This design is fast to train and very effective on long regular streams,
but it is exactly the prefetcher that cigar's *short-lived* strided
bursts defeat: the bursts are long enough to train the table, after which
the prefetcher runs ahead of a stream that is about to end, fetching data
the program never touches (paper §VII-A reports an 11 % slowdown).
"""

from __future__ import annotations

from typing import Callable

from repro.hwpref.base import HardwarePrefetcher, PrefetchRequest

__all__ = ["PCStridePrefetcher"]


class _Entry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, addr: int) -> None:
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0


class PCStridePrefetcher(HardwarePrefetcher):
    """Reference-prediction-table stride prefetcher.

    Lookahead is expressed in *cache lines*: once trained, the prefetcher
    keeps a window of ``degree`` lines starting ``distance_lines`` ahead
    of the demand stream filled, with the effective distance ramping up
    with confidence (real prefetchers start conservatively and run
    further ahead as a stream proves stable).  Because already-resident
    lines are filtered by the hierarchy, the steady-state cost is about
    one new fill per demanded line — plus the overshoot past stream ends
    that makes the scheme wasteful on short streams.

    Parameters
    ----------
    line_bytes:
        Cache line size, for converting predicted addresses to lines.
    degree:
        Width of the prefetch window in lines per trained access.
    distance_lines:
        Base lookahead (in lines) of the window at minimum confidence;
        scales up to 4x with confidence.
    train_threshold:
        Consecutive matching strides required before issuing.
    table_size:
        Maximum tracked PCs (FIFO replacement beyond this).
    """

    name = "hw-stride"

    def __init__(
        self,
        line_bytes: int = 64,
        degree: int = 2,
        distance_lines: int = 3,
        train_threshold: int = 2,
        table_size: int = 256,
        max_ramp: int = 4,
        utilisation: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(utilisation)
        if degree <= 0 or distance_lines <= 0 or train_threshold <= 0:
            raise ValueError("degree, distance_lines and train_threshold must be positive")
        if max_ramp <= 0:
            raise ValueError("max_ramp must be positive")
        self.line_bytes = line_bytes
        self.degree = degree
        self.distance_lines = distance_lines
        self.max_ramp = max_ramp
        self.train_threshold = train_threshold
        self.table_size = table_size
        self._table: dict[int, _Entry] = {}

    def observe(self, pc: int, addr: int, line: int, l1_hit: bool) -> list[PrefetchRequest]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # FIFO replacement: drop the oldest trained PC.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _Entry(addr)
            return []

        stride = addr - entry.last_addr
        entry.last_addr = addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 8)
        else:
            entry.stride = stride
            entry.confidence = 1
            return []

        if entry.confidence < self.train_threshold:
            return []

        direction = 1 if stride > 0 else -1
        # Strides below a line advance one line per several accesses;
        # larger strides skip `step` lines per access.
        step = max(1, abs(stride) // self.line_bytes)
        ramp = min(self.max_ramp, entry.confidence - self.train_threshold + 1)
        distance = self.distance_lines * ramp
        degree = max(1, round(self.degree * self._throttle_factor()))
        requests: list[PrefetchRequest] = []
        for k in range(degree):
            target = line + direction * step * (distance + k)
            if target >= 0 and target != line:
                requests.append(PrefetchRequest(target))
        return requests

    def reset(self) -> None:
        self._table.clear()
