"""Mixed-workload performance metrics (paper §VII-C/D).

The paper reports three metrics over each 4-application mix, all
relative to the *baseline mix* (original programs, hardware prefetching
off):

* **Weighted speedup (throughput)** — arithmetic mean of per-application
  speedups.
* **Fair-Speedup (FS)** — harmonic mean of per-application speedups,
  which penalises mixes that speed some applications up by slowing
  others down::

      FS = N / sum_i (T_i(prefetching) / T_i(base))

* **QoS** — cumulative slowdown, the sum over applications of
  ``min(0, T_base/T_pref − 1)``; 0 means no application ever regressed.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExperimentError

__all__ = ["weighted_speedup", "fair_speedup", "qos_degradation", "per_app_speedups"]


def per_app_speedups(
    base_cycles: Sequence[float], opt_cycles: Sequence[float]
) -> list[float]:
    """Per-application speedups ``T_base / T_opt`` for one mix."""
    if len(base_cycles) != len(opt_cycles) or not base_cycles:
        raise ExperimentError("mismatched or empty cycle vectors")
    if any(c <= 0 for c in base_cycles) or any(c <= 0 for c in opt_cycles):
        raise ExperimentError("cycles must be positive")
    return [b / o for b, o in zip(base_cycles, opt_cycles)]


def weighted_speedup(
    base_cycles: Sequence[float], opt_cycles: Sequence[float]
) -> float:
    """Throughput metric: mean per-application speedup over the baseline mix."""
    speedups = per_app_speedups(base_cycles, opt_cycles)
    return sum(speedups) / len(speedups)


def fair_speedup(base_cycles: Sequence[float], opt_cycles: Sequence[float]) -> float:
    """Harmonic-mean speedup (paper's FS, balancing fairness and speed)."""
    speedups = per_app_speedups(base_cycles, opt_cycles)
    return len(speedups) / sum(1.0 / s for s in speedups)


def qos_degradation(
    base_cycles: Sequence[float], opt_cycles: Sequence[float]
) -> float:
    """Cumulative slowdown (≤ 0; 0 = no application slowed down)."""
    speedups = per_app_speedups(base_cycles, opt_cycles)
    return sum(min(0.0, s - 1.0) for s in speedups)
