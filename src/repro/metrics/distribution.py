"""Sorted distribution series for the paper's Fig. 7 / Fig. 9 plots.

The paper presents mixed-workload results as *sorted distribution
functions*: each configuration's 180 per-mix values sorted
independently, plotted against the run percentile.  "In 60 % of the
mixes, our method improves throughput by at least 14 %" is read off such
a curve at x = 60 %.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ExperimentError

__all__ = ["sorted_distribution", "value_at_percentile", "fraction_at_least"]


def sorted_distribution(values: Sequence[float], descending: bool = True) -> np.ndarray:
    """Values sorted for a distribution-function plot.

    Descending order matches the paper's speedup panels ("at least X in
    Y % of runs"); ascending suits lower-is-better metrics.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ExperimentError("empty distribution")
    arr = np.sort(arr)
    return arr[::-1] if descending else arr


def value_at_percentile(values: Sequence[float], pct: float, descending: bool = True) -> float:
    """The distribution's value at percentile ``pct`` ∈ [0, 100].

    With ``descending=True`` this answers "what does the best ``pct`` %
    of runs achieve at least?".
    """
    if not 0.0 <= pct <= 100.0:
        raise ExperimentError("pct must be in [0, 100]")
    dist = sorted_distribution(values, descending)
    idx = min(len(dist) - 1, int(round(pct / 100.0 * (len(dist) - 1))))
    return float(dist[idx])


def fraction_at_least(values: Sequence[float], threshold: float) -> float:
    """Fraction of runs achieving at least ``threshold``."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ExperimentError("empty distribution")
    return float(np.mean(arr >= threshold))
