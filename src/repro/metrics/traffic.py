"""Off-chip traffic and bandwidth accounting helpers (Figs. 5–6)."""

from __future__ import annotations

from repro.cachesim.stats import RunStats
from repro.config import MachineConfig
from repro.errors import ExperimentError

__all__ = ["traffic_increase", "bandwidth_gbs", "traffic_reduction_vs"]


def traffic_increase(baseline: RunStats, optimised: RunStats) -> float:
    """Fractional change of off-chip bytes vs the baseline run.

    Positive values waste shared LLC space and bandwidth (paper Fig. 5);
    negative values mean the configuration moved *less* data than the
    original program — the cache-bypassing retention effect.
    """
    if baseline.dram_bytes == 0:
        raise ExperimentError("baseline moved no data; traffic ratio undefined")
    return optimised.dram_bytes / baseline.dram_bytes - 1.0


def traffic_reduction_vs(reference: RunStats, ours: RunStats) -> float:
    """Fraction of the reference's traffic that ``ours`` avoided.

    The paper's headline "44 % less off-chip traffic than hardware
    prefetching on AMD" is this metric with ``reference`` = the HW run.
    """
    if reference.dram_bytes == 0:
        raise ExperimentError("reference moved no data")
    return 1.0 - ours.dram_bytes / reference.dram_bytes


def bandwidth_gbs(stats: RunStats, machine: MachineConfig) -> float:
    """Average off-chip bandwidth of a run in GB/s (paper Fig. 6)."""
    return stats.bandwidth_gbs(machine.freq_ghz)
