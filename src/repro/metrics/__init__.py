"""Evaluation metrics: throughput, fairness, QoS, traffic, distributions."""

from repro.metrics.distribution import (
    fraction_at_least,
    sorted_distribution,
    value_at_percentile,
)
from repro.metrics.throughput import (
    fair_speedup,
    per_app_speedups,
    qos_degradation,
    weighted_speedup,
)
from repro.metrics.traffic import bandwidth_gbs, traffic_increase, traffic_reduction_vs

__all__ = [
    "weighted_speedup",
    "fair_speedup",
    "qos_degradation",
    "per_app_speedups",
    "traffic_increase",
    "traffic_reduction_vs",
    "bandwidth_gbs",
    "sorted_distribution",
    "value_at_percentile",
    "fraction_at_least",
]
