"""Parametric synthetic workload generation.

Beyond the 12 hand-built benchmark models, downstream users (and our
own property tests) need arbitrary workloads with controlled
characteristics: "60 % streaming, 30 % pointer chasing, 50 MB
footprint".  :func:`generate_workload` builds a mini-IR program from a
:class:`WorkloadRecipe`, deterministically from a seed — the fuzzing
surface for the whole analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.isa.instructions import (
    BFSAccess,
    BurstAccess,
    ChaseAccess,
    CSRAccess,
    GatherAccess,
    HashProbeAccess,
    IndexedAccess,
    Load,
    Store,
    StridedAccess,
)
from repro.isa.program import Kernel, Program

__all__ = ["WorkloadRecipe", "generate_workload"]

MB = 1024 * 1024

#: Address window reserved for generated workloads, far above both the
#: built-in benchmarks and the parallel suites.
_GENERATOR_BASE = 128 << 30


@dataclass(frozen=True)
class WorkloadRecipe:
    """Mixture weights and sizing for a generated workload.

    Weights need not sum to one; they are normalised.  Each non-zero
    component contributes at least one instruction.

    The graph family (``csr``/``bfs``/``hash``/``indirect`` weights)
    adds graph-analytics shapes.  An ``indirect`` slot emits the two
    instructions of an ``A[B[i]]`` pair — the strided index walk *and*
    the data gather — so the generated body holds one extra instruction
    per indirect slot beyond ``n_instructions``.
    """

    stream_weight: float = 1.0
    chase_weight: float = 0.0
    gather_weight: float = 0.0
    burst_weight: float = 0.0
    store_weight: float = 0.0
    csr_weight: float = 0.0
    bfs_weight: float = 0.0
    hash_weight: float = 0.0
    indirect_weight: float = 0.0
    footprint_bytes: int = 16 * MB
    n_instructions: int = 6
    trips: int = 50_000
    stride_bytes: int = 16
    gather_locality: float = 0.5
    burst_len: int = 8
    avg_degree: int = 8
    work_per_memop: float = 5.0
    mlp: float = 4.0

    def __post_init__(self) -> None:
        weights = (
            self.stream_weight,
            self.chase_weight,
            self.gather_weight,
            self.burst_weight,
            self.store_weight,
            self.csr_weight,
            self.bfs_weight,
            self.hash_weight,
            self.indirect_weight,
        )
        if any(w < 0 for w in weights):
            raise WorkloadError("mixture weights must be non-negative")
        if sum(weights) <= 0:
            raise WorkloadError("at least one mixture weight must be positive")
        if self.n_instructions <= 0:
            raise WorkloadError("n_instructions must be positive")
        if self.trips <= 0:
            raise WorkloadError("trips must be positive")
        if self.footprint_bytes < 64 * 1024:
            raise WorkloadError("footprint must be at least 64 kB")
        if self.stride_bytes == 0:
            raise WorkloadError("stride_bytes must be non-zero")
        if not 0.0 <= self.gather_locality < 1.0:
            raise WorkloadError("gather_locality must be in [0, 1)")
        if self.burst_len <= 0:
            raise WorkloadError("burst_len must be positive")
        if self.avg_degree <= 0:
            raise WorkloadError("avg_degree must be positive")


def _allocate(weights: dict[str, float], slots: int) -> dict[str, int]:
    """Largest-remainder apportionment of instruction slots."""
    total = sum(weights.values())
    shares = {k: w / total * slots for k, w in weights.items() if w > 0}
    counts = {k: int(v) for k, v in shares.items()}
    # every positive component gets at least one slot if room remains
    for k in shares:
        if counts[k] == 0:
            counts[k] = 1
    while sum(counts.values()) > slots:
        biggest = max(counts, key=lambda k: counts[k])
        counts[biggest] -= 1
    remainders = sorted(
        shares, key=lambda k: shares[k] - counts[k], reverse=True
    )
    i = 0
    while sum(counts.values()) < slots:
        counts[remainders[i % len(remainders)]] += 1
        i += 1
    return {k: v for k, v in counts.items() if v > 0}


def generate_workload(
    recipe: WorkloadRecipe,
    seed: int = 0,
    name: str = "generated",
) -> Program:
    """Build a program realising ``recipe``, deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    counts = _allocate(
        {
            "stream": recipe.stream_weight,
            "chase": recipe.chase_weight,
            "gather": recipe.gather_weight,
            "burst": recipe.burst_weight,
            "store": recipe.store_weight,
            "csr": recipe.csr_weight,
            "bfs": recipe.bfs_weight,
            "hash": recipe.hash_weight,
            "indirect": recipe.indirect_weight,
        },
        recipe.n_instructions,
    )

    base = _GENERATOR_BASE + (seed % 4096) * (64 << 30)
    region = recipe.footprint_bytes
    body = []
    slot = 0

    def arr() -> int:
        nonlocal slot
        addr = base + slot * (2 * region + 20_544)
        slot += 1
        return addr

    for i in range(counts.get("stream", 0)):
        body.append(
            Load(f"stream{i}", StridedAccess(arr(), recipe.stride_bytes, wrap_bytes=region))
        )
    for i in range(counts.get("chase", 0)):
        nodes = max(64, region // 64)
        body.append(Load(f"chase{i}", ChaseAccess(arr(), nodes, 64)))
    for i in range(counts.get("gather", 0)):
        body.append(
            Load(f"gather{i}", GatherAccess(arr(), region, locality=recipe.gather_locality))
        )
    for i in range(counts.get("burst", 0)):
        burst_region = max(region, recipe.burst_len * abs(recipe.stride_bytes) * 4)
        body.append(
            Load(
                f"burst{i}",
                BurstAccess(arr(), burst_region, recipe.burst_len, recipe.stride_bytes),
            )
        )
    for i in range(counts.get("store", 0)):
        body.append(
            Store(f"store{i}", StridedAccess(arr(), recipe.stride_bytes, wrap_bytes=region))
        )
    # Graph components append after the legacy ones and draw from the
    # rng only when present, so recipes without graph weights generate
    # bit-identical programs to earlier releases.
    for i in range(counts.get("csr", 0)):
        nodes = max(64, region // (recipe.avg_degree * 8))
        body.append(Load(f"csr{i}", CSRAccess(arr(), nodes, recipe.avg_degree, 8)))
    for i in range(counts.get("bfs", 0)):
        nodes = max(64, min(region // 64, 8192))
        body.append(Load(f"bfs{i}", BFSAccess(arr(), nodes, max(2, recipe.avg_degree // 2), 64)))
    for i in range(counts.get("hash", 0)):
        buckets = max(64, region // 64)
        body.append(Load(f"hash{i}", HashProbeAccess(arr(), buckets, 2, 64)))
    for i in range(counts.get("indirect", 0)):
        idx_base = arr()
        n_indices = max(64, region // 16)
        index_seed = int(rng.integers(0, 2**31 - 1))
        body.append(
            Load(f"bidx{i}", StridedAccess(idx_base, 8, wrap_bytes=n_indices * 8))
        )
        body.append(
            Load(
                f"aval{i}",
                IndexedAccess(arr(), region, idx_base, n_indices, index_seed),
            )
        )

    # deterministic shuffle so component ordering is not systematic
    order = rng.permutation(len(body))
    body = tuple(body[int(j)] for j in order)

    return Program(
        name,
        (
            Kernel(
                "main",
                body,
                trips=recipe.trips,
                work_per_memop=recipe.work_per_memop,
                mlp=recipe.mlp,
            ),
        ),
    )
