"""Random mixed workloads (paper §VII-C).

The paper runs **180 randomly generated workload mixes**, each of four
randomly selected benchmarks on four cores.  Mix generation here is
deterministic: mix *i* of the canonical set is always the same four
benchmarks, so every experiment and test sees identical mixes.

For the varying-inputs study (§VII-D) each mix member is also assigned a
randomly selected *alternate* input set, again deterministically per
(mix id, slot).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import get_workload
from repro.workloads.spec2006 import ALL_SINGLE_CORE

__all__ = ["Mix", "generate_mixes", "PAPER_MIX_COUNT", "PAPER_MIX_SIZE", "fig8_mix"]

PAPER_MIX_COUNT = 180
PAPER_MIX_SIZE = 4

#: Seed of the canonical mix set; fixed so "mix 17" is stable forever.
_MIX_SEED = 0x5EED_2014


@dataclass(frozen=True)
class Mix:
    """One multiprogrammed workload: ``PAPER_MIX_SIZE`` benchmarks."""

    mix_id: int
    members: tuple[str, ...]
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.members) != len(self.inputs):
            raise WorkloadError("one input set per member required")

    def with_reference_inputs(self) -> "Mix":
        """The same mix with every member on its profiling input."""
        return Mix(self.mix_id, self.members, tuple("ref" for _ in self.members))


def generate_mixes(
    count: int = PAPER_MIX_COUNT,
    size: int = PAPER_MIX_SIZE,
    pool: tuple[str, ...] | None = None,
    vary_inputs: bool = False,
    seed: int = _MIX_SEED,
) -> list[Mix]:
    """The canonical deterministic mix set.

    Parameters
    ----------
    count, size:
        Number of mixes and applications per mix (paper: 180 × 4).
    pool:
        Benchmarks to draw from; defaults to all 12 single-core models.
    vary_inputs:
        If True, each member runs a randomly selected *non-reference*
        input (paper §VII-D); otherwise everything uses ``"ref"``.
    seed:
        Generator seed; the default yields the repository's canonical
        180 mixes.
    """
    if count <= 0 or size <= 0:
        raise WorkloadError("count and size must be positive")
    names = tuple(pool) if pool is not None else ALL_SINGLE_CORE
    if size > len(names):
        raise WorkloadError("mix size exceeds benchmark pool")
    rng = np.random.default_rng(seed)
    mixes: list[Mix] = []
    for mix_id in range(count):
        picks = rng.choice(len(names), size=size, replace=False)
        members = tuple(names[i] for i in picks)
        if vary_inputs:
            inputs = []
            for name in members:
                alts = [s for s in get_workload(name).inputs if s != "ref"]
                inputs.append(alts[int(rng.integers(len(alts)))])
            inputs = tuple(inputs)
        else:
            inputs = tuple("ref" for _ in members)
        mixes.append(Mix(mix_id, members, inputs))
    return mixes


def fig8_mix() -> Mix:
    """The mix the paper examines in detail (Fig. 8): cigar, gcc, lbm, libquantum."""
    return Mix(-1, ("cigar", "gcc", "lbm", "libquantum"), ("ref",) * 4)
