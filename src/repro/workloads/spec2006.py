"""Models of the paper's 12 evaluated benchmarks.

The paper evaluates the 11 SPEC CPU 2006 benchmarks with non-negligible
off-chip traffic plus the ``cigar`` genetic algorithm (Table I).  Real
SPEC binaries/inputs are unavailable here, so each benchmark is a mini-IR
program whose *pattern structure* reproduces the qualitative behaviour
the paper reports — which loads dominate the misses, whether they
stride, how big the working sets are, and how much instruction-level /
memory-level parallelism surrounds them.  The headline Table I numbers
(miss coverage, prefetch overhead) emerge from this structure rather
than being hard-coded:

* coverage is the share of L1 misses attributable to regularly-strided
  loads (libquantum ≈ all, omnetpp/xalan ≈ almost none);
* prefetch overhead per removed miss is driven by the stride:line ratio
  (an 8-byte stride executes ~8 prefetches per 64-byte line miss);
* every model also issues *hot* accesses to small L1-resident data
  (stack, hot structures) — these dilute the miss rate to realistic
  levels and exercise MDDLI's cost/benefit rejection path.

Streaming benchmarks carry a :class:`~repro.isa.instructions.SweepAccess`
region whose pass lengths straddle the LLC sizes: in the baseline the
streams' LLC pollution pushes part of its reuse past the LLC (refetch
traffic), while under cache-bypassing prefetching the streams stay out
of the LLC and the region is retained — the paper's below-baseline
traffic mechanism (Fig. 5, "useful data retained ... instead of being
evicted and re-fetched").

Every address region is unique per benchmark (1 GiB windows) so mixes
never alias, and array bases are staggered so lockstep streams do not
artificially thrash a low-associativity L1.  Input sets scale working
sets the way real alternate inputs change a program's data, not its
code.
"""

from __future__ import annotations

from repro.isa.instructions import (
    BurstAccess,
    ChaseAccess,
    GatherAccess,
    Load,
    RandomAccess,
    Store,
    StridedAccess,
    SweepAccess,
)
from repro.isa.program import Kernel, Program
from repro.workloads.base import WorkloadSpec, register_workload

__all__ = ["SPEC_BENCHMARKS", "OTHER_BENCHMARKS", "ALL_SINGLE_CORE"]

MB = 1024 * 1024
KB = 1024


def _base(slot: int) -> int:
    """Distinct 2 GiB address window per benchmark region.

    Wide enough that a benchmark's staggered arrays (up to ~10 slots of
    128 MiB) never spill into a neighbour's window — mixes must not
    alias.
    """
    return (1 + slot) << 31


def _arr(base: int, k: int) -> int:
    """The k-th array inside a benchmark's window.

    Arrays are spaced 128 MiB apart plus a small odd offset so that
    concurrently-swept arrays land in *different* cache sets — real
    allocators never hand out perfectly set-aligned arrays, and without
    the stagger a low-associativity L1 would thrash artificially.
    """
    return base + k * (128 * MB + 20_544)


def _hot(base: int, k: int) -> Load:
    """An L1-resident access (stack/hot-structure traffic).

    16 kB fits every evaluated L1; after warm-up these never miss, so
    MDDLI's cost/benefit test rejects them — the filter the stride-
    centric baseline lacks.  Every other hot load is *strided* (a tight
    scan over a small buffer): stride-centric insertion prefetches for
    it anyway, paying α per execution for misses that do not exist —
    the source of the paper's "35 % fewer prefetch instructions"
    (Table I) advantage for MDDLI.
    """
    if k % 2 == 0:
        return Load(f"hot{k}", StridedAccess(_arr(base, 8 + k), 8, wrap_bytes=8 * KB))
    return Load(f"hot{k}", GatherAccess(_arr(base, 8 + k), 16 * KB, locality=0.0))


#: Pass lengths for the retained-reuse sweep regions.  The short pass
#: keeps part of the region's reuse mass well inside the LLC (so the
#: modelled miss-ratio curve is not flat and the analysis assigns a
#: *normal* prefetch), while the long pass's reuse only survives in the
#: LLC when the co-running streams bypass it — the paper's retention
#: mechanism.  Stream pollution multiplies the long pass's stack
#: distance past both LLCs in the baseline; bypassing brings it back
#: under 6/8 MB.
_SWEEP_REF = (512 * KB, 9 * MB // 2)
_SWEEP_TRAIN = (256 * KB, 2 * MB)
_SWEEP_ALT = (768 * KB, 11 * MB // 2)


def _sweep(input_set: str) -> tuple[int, ...]:
    return {"ref": _SWEEP_REF, "train": _SWEEP_TRAIN, "alt": _SWEEP_ALT}[input_set]


def _trips(n: float, scale: float) -> int:
    return max(16, int(n * scale))


# ----------------------------------------------------------------------
# streaming benchmarks
# ----------------------------------------------------------------------


def _libquantum(input_set: str, scale: float) -> Program:
    """Quantum register simulation: hot loop streaming 16 B structs.

    Nearly every miss comes from regularly-strided instructions (paper:
    99.9 % coverage, OH 4.9 ≈ four 16 B accesses per line plus slack);
    the footprint far exceeds the LLC, so stream lines are never reused
    from outer levels — the canonical NTA stream.
    """
    region = {"ref": 24 * MB, "train": 12 * MB, "alt": 36 * MB}[input_set]
    b = _base(1)
    body = (
        Load("reg", StridedAccess(_arr(b, 0), 16, wrap_bytes=region)),
        Load("amp", StridedAccess(_arr(b, 1), 16, wrap_bytes=region)),
        Load("tbl", SweepAccess(_arr(b, 3), _sweep(input_set), stride_bytes=64)),
        Store("out", StridedAccess(_arr(b, 2), 16, wrap_bytes=region)),
        _hot(b, 0),
        _hot(b, 1),
    )
    return Program(
        "libquantum",
        (Kernel("gates", body, _trips(130_000, scale), work_per_memop=10.0, mlp=10.0),),
    )


def _lbm(input_set: str, scale: float) -> Program:
    """Lattice-Boltzmann: wide streams with 32 B effective stride.

    OH ≈ 2 (two accesses per line) and near-total coverage; stores are a
    large traffic component (paper: big NT win).
    """
    region = {"ref": 30 * MB, "train": 15 * MB, "alt": 40 * MB}[input_set]
    b = _base(2)
    body = (
        Load("f_in", StridedAccess(_arr(b, 0), 32, wrap_bytes=region)),
        Load("f_nb", StridedAccess(_arr(b, 1), 32, wrap_bytes=region)),
        Load("geom", SweepAccess(_arr(b, 3), _sweep(input_set), stride_bytes=64)),
        Store("f_out", StridedAccess(_arr(b, 2), 32, wrap_bytes=region)),
        _hot(b, 0),
        _hot(b, 1),
    )
    return Program(
        "lbm",
        (Kernel("collide", body, _trips(130_000, scale), work_per_memop=16.0, mlp=12.0),),
    )


def _leslie3d(input_set: str, scale: float) -> Program:
    """CFD stencil: many 8 B-stride array sweeps (OH ≈ 10, cov ≈ 94 %)."""
    region = {"ref": 20 * MB, "train": 8 * MB, "alt": 28 * MB}[input_set]
    b = _base(3)
    body = (
        Load("u", StridedAccess(_arr(b, 0), 8, wrap_bytes=region)),
        Load("v", StridedAccess(_arr(b, 1), 8, wrap_bytes=region)),
        Load("w", StridedAccess(_arr(b, 2), 8, wrap_bytes=region)),
        Load("q", SweepAccess(_arr(b, 3), _sweep(input_set), stride_bytes=64)),
        Load("coef", GatherAccess(_arr(b, 5), 2 * MB, locality=0.92)),
        Store("r", StridedAccess(_arr(b, 4), 8, wrap_bytes=region)),
        _hot(b, 0),
    )
    return Program(
        "leslie3d",
        (Kernel("stencil", body, _trips(110_000, scale), work_per_memop=9.0, mlp=10.0),),
    )


def _gemsfdtd(input_set: str, scale: float) -> Program:
    """FDTD field updates: strided field arrays, mixed 8/16 B strides."""
    region = {"ref": 24 * MB, "train": 10 * MB, "alt": 32 * MB}[input_set]
    b = _base(4)
    body = (
        Load("ex", StridedAccess(_arr(b, 0), 8, wrap_bytes=region)),
        Load("hy", StridedAccess(_arr(b, 1), 16, wrap_bytes=region)),
        Load("hz", StridedAccess(_arr(b, 2), 8, wrap_bytes=region)),
        Load("coef", GatherAccess(_arr(b, 3), 2 * MB, locality=0.75)),
        Store("exn", StridedAccess(_arr(b, 4), 8, wrap_bytes=region)),
        _hot(b, 0),
    )
    return Program(
        "GemsFDTD",
        (Kernel("update", body, _trips(75_000, scale), work_per_memop=9.0, mlp=9.0),),
    )


def _milc(input_set: str, scale: float) -> Program:
    """Lattice QCD: su3-matrix sweeps (8 B stride) over a huge lattice."""
    region = {"ref": 26 * MB, "train": 12 * MB, "alt": 36 * MB}[input_set]
    b = _base(5)
    body = (
        Load("link", StridedAccess(_arr(b, 0), 8, wrap_bytes=region)),
        Load("site", StridedAccess(_arr(b, 1), 8, wrap_bytes=region)),
        Load("rand", RandomAccess(_arr(b, 2), 48 * KB)),
        Store("res", StridedAccess(_arr(b, 3), 8, wrap_bytes=region)),
        _hot(b, 0),
    )
    return Program(
        "milc",
        (Kernel("mult", body, _trips(85_000, scale), work_per_memop=9.0, mlp=9.0),),
    )


# ----------------------------------------------------------------------
# pointer-dominated benchmarks
# ----------------------------------------------------------------------


def _mcf(input_set: str, scale: float) -> Program:
    """Min-cost flow: arc-array strides + dependent node chasing.

    The strided arc scans are prefetchable (48 B arcs → OH ≈ 1.5); the
    network traversal is not.  Coverage lands near the paper's 36 %.
    Low surrounding work and MLP ≈ 2 make every chase miss expensive —
    which is why prefetching the strided part still buys mcf up to 28 %.
    """
    nodes = {"ref": 300_000, "train": 120_000, "alt": 420_000}[input_set]
    tree_pool = {"ref": 24_000, "train": 12_000, "alt": 32_000}[input_set]
    region = {"ref": 22 * MB, "train": 9 * MB, "alt": 30 * MB}[input_set]
    b = _base(6)
    body = (
        Load("arc1", StridedAccess(_arr(b, 0), 48, wrap_bytes=region)),
        Load("arc2", StridedAccess(_arr(b, 1), 48, wrap_bytes=region)),
        Load("node", ChaseAccess(_arr(b, 2), nodes, 64)),
        Load("hot_t", ChaseAccess(_arr(b, 3), 4_000, 64)),
        Load("tree", ChaseAccess(_arr(b, 4), tree_pool, 64)),
        _hot(b, 0),
    )
    return Program(
        "mcf",
        (Kernel("simplex", body, _trips(75_000, scale), work_per_memop=4.5, mlp=2.6),),
    )


def _omnetpp(input_set: str, scale: float) -> Program:
    """Discrete event simulation: heap/event-list chasing dominates.

    MDDLI *identifies* the chasing loads (89 % of misses) but they have
    no stride, so only the small message-buffer sweep is prefetchable —
    the paper's 9 % coverage story.
    """
    heap = {"ref": 160_000, "train": 60_000, "alt": 240_000}[input_set]
    b = _base(7)
    body = (
        Load("ev1", ChaseAccess(_arr(b, 0), heap, 64)),
        Load("ev2", ChaseAccess(_arr(b, 1), heap, 64)),
        Load("ev3", ChaseAccess(_arr(b, 2), heap // 3, 64)),
        Load("msg", StridedAccess(_arr(b, 3), 16, wrap_bytes=4 * MB)),
        Load("stat", GatherAccess(_arr(b, 4), 256 * KB, locality=0.8)),
        Store("log", GatherAccess(_arr(b, 5), 512 * KB, locality=0.8)),
        _hot(b, 0),
    )
    return Program(
        "omnetpp",
        (Kernel("events", body, _trips(65_000, scale), work_per_memop=4.5, mlp=2.0),),
    )


def _xalan(input_set: str, scale: float) -> Program:
    """XSLT processing: DOM-tree chasing; barely any stride opportunity.

    The strided string buffers live *just* beyond the AMD L1, so the few
    prefetches MDDLI's threshold lets through remove almost no misses —
    Table I's 73 prefetches per removed miss.
    """
    dom = {"ref": 110_000, "train": 40_000, "alt": 160_000}[input_set]
    buf = {"ref": 72 * KB, "train": 72 * KB, "alt": 80 * KB}[input_set]
    b = _base(8)
    body = (
        Load("dom1", ChaseAccess(_arr(b, 0), dom, 64)),
        Load("dom2", ChaseAccess(_arr(b, 1), dom, 64)),
        Load("attr", GatherAccess(_arr(b, 2), 3 * MB, locality=0.7)),
        Load("str", StridedAccess(_arr(b, 3), 8, wrap_bytes=buf)),
        Store("out", StridedAccess(_arr(b, 4), 8, wrap_bytes=buf)),
        _hot(b, 0),
    )
    return Program(
        "xalan",
        (Kernel("transform", body, _trips(70_000, scale), work_per_memop=5.0, mlp=2.2),),
    )


# ----------------------------------------------------------------------
# mixed-behaviour benchmarks
# ----------------------------------------------------------------------


def _gcc(input_set: str, scale: float) -> Program:
    """Compiler: IR-array sweeps (strided, coverable) + AST chasing."""
    ast = {"ref": 40_000, "train": 16_000, "alt": 64_000, "alt2": 28_000}[input_set]
    region = {"ref": 10 * MB, "train": 4 * MB, "alt": 16 * MB, "alt2": 7 * MB}[input_set]
    b = _base(9)
    body = (
        Load("ir1", BurstAccess(_arr(b, 0), region, burst_len=48, stride_bytes=16)),
        Load("ir2", BurstAccess(_arr(b, 1), region, burst_len=48, stride_bytes=16)),
        Load("ir3", BurstAccess(_arr(b, 2), region, burst_len=32, stride_bytes=32)),
        Load("ast", ChaseAccess(_arr(b, 3), ast, 64)),
        Load("sym", GatherAccess(_arr(b, 4), 2 * MB, locality=0.85)),
        Store("obj", BurstAccess(_arr(b, 5), region, burst_len=48, stride_bytes=16)),
        _hot(b, 0),
        _hot(b, 1),
    )
    return Program(
        "gcc",
        (Kernel("passes", body, _trips(65_000, scale), work_per_memop=6.0, mlp=3.0),),
    )


def _soplex(input_set: str, scale: float) -> Program:
    """Simplex LP: strided index arrays + gathered matrix values."""
    region = {"ref": 12 * MB, "train": 5 * MB, "alt": 18 * MB}[input_set]
    values = {"ref": 2 * MB, "train": 1 * MB, "alt": 3 * MB}[input_set]
    b = _base(10)
    body = (
        Load("idx1", StridedAccess(_arr(b, 0), 16, wrap_bytes=region)),
        Load("idx2", StridedAccess(_arr(b, 1), 16, wrap_bytes=region)),
        Load("val", GatherAccess(_arr(b, 2), values, locality=0.4)),
        Store("res", StridedAccess(_arr(b, 3), 16, wrap_bytes=region)),
        _hot(b, 0),
        _hot(b, 1),
    )
    return Program(
        "soplex",
        (Kernel("pivot", body, _trips(80_000, scale), work_per_memop=12.0, mlp=5.0),),
    )


def _astar(input_set: str, scale: float) -> Program:
    """A* pathfinding: local grid gathers + open-list chasing + map sweeps."""
    grid = {"ref": 12 * MB, "train": 5 * MB, "alt": 18 * MB}[input_set]
    b = _base(11)
    body = (
        Load("map1", StridedAccess(_arr(b, 0), 8, wrap_bytes=grid)),
        Load("map2", StridedAccess(_arr(b, 1), 8, wrap_bytes=grid)),
        Load("map3", StridedAccess(_arr(b, 2), 8, wrap_bytes=grid)),
        Load("nbr", GatherAccess(_arr(b, 3), grid, locality=0.8)),
        Load("open", ChaseAccess(_arr(b, 4), 30_000, 64)),
        Store("cost", GatherAccess(_arr(b, 5), grid, locality=0.8)),
        _hot(b, 0),
        _hot(b, 1),
    )
    return Program(
        "astar",
        (Kernel("search", body, _trips(65_000, scale), work_per_memop=7.0, mlp=3.0),),
    )


def _cigar(input_set: str, scale: float) -> Program:
    """CIGAR genetic algorithm: short-lived strided bursts.

    Chromosome rows span a handful of lines; each row trains a hardware
    stride prefetcher and then ends, so the prefetcher overshoots on
    every row (the paper: AMD hardware prefetching slows cigar by >11 %,
    Intel's adjacent-line prefetch helps instead, and Intel traffic blows
    up by 630 %).  Software prefetching with a short computed distance
    (``P ≤ R/2`` with R estimated from stride-sample dominance) covers
    intra-row misses only — coverage ≈ 28 %.
    """
    region = {"ref": 16 * MB, "train": 6 * MB, "alt": 24 * MB}[input_set]
    b = _base(12)
    body = (
        Load("gene1", BurstAccess(_arr(b, 0), region, burst_len=6, stride_bytes=32)),
        Load("fit", GatherAccess(_arr(b, 2), 1 * MB, locality=0.6)),
        Load("sel", GatherAccess(_arr(b, 4), 768 * KB, locality=0.7)),
        Store("pop", BurstAccess(_arr(b, 3), region, burst_len=6, stride_bytes=32)),
        _hot(b, 0),
        _hot(b, 1),
    )
    return Program(
        "cigar",
        (Kernel("evolve", body, _trips(80_000, scale), work_per_memop=5.0, mlp=3.0),),
    )


SPEC_BENCHMARKS = (
    WorkloadSpec("gcc", _gcc, "compiler: strided IR sweeps + AST chasing",
                 inputs=("ref", "train", "alt", "alt2")),
    WorkloadSpec("libquantum", _libquantum, "quantum simulation: pure 16 B streams"),
    WorkloadSpec("lbm", _lbm, "lattice Boltzmann: 32 B-stride field streams"),
    WorkloadSpec("mcf", _mcf, "min-cost flow: arc strides + node chasing"),
    WorkloadSpec("omnetpp", _omnetpp, "event simulation: heap chasing"),
    WorkloadSpec("soplex", _soplex, "simplex LP: index strides + value gathers"),
    WorkloadSpec("astar", _astar, "pathfinding: map sweeps + open list chasing"),
    WorkloadSpec("xalan", _xalan, "XSLT: DOM chasing, minimal stride"),
    WorkloadSpec("leslie3d", _leslie3d, "CFD stencil: 8 B-stride sweeps"),
    WorkloadSpec("GemsFDTD", _gemsfdtd, "FDTD: mixed-stride field updates"),
    WorkloadSpec("milc", _milc, "lattice QCD: 8 B-stride matrix sweeps"),
)

OTHER_BENCHMARKS = (
    WorkloadSpec("cigar", _cigar, "genetic algorithm: short strided bursts",
                 suite="other"),
)

ALL_SINGLE_CORE = tuple(s.name for s in SPEC_BENCHMARKS + OTHER_BENCHMARKS)

for _spec in SPEC_BENCHMARKS + OTHER_BENCHMARKS:
    register_workload(_spec)
