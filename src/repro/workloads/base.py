"""Workload specifications and registry.

A *workload* is a named, parameterised generator of mini-IR programs
whose memory behaviour mimics one of the paper's benchmarks.  Builders
take an ``input set`` name (the paper's §VII-D varies inputs to test
profile robustness — different inputs change working-set sizes and
pattern mixtures, not the program structure) and a ``scale`` factor that
multiplies loop trip counts (full-size runs for experiments, small ones
for tests).

All randomness inside a workload derives from its name and input set, so
every trace in the repository is reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import WorkloadError
from repro.isa.program import Program

__all__ = [
    "WorkloadSpec",
    "register_workload",
    "get_workload",
    "list_workloads",
    "build_program",
    "workload_seed",
]


class ProgramBuilder(Protocol):
    def __call__(self, input_set: str, scale: float) -> Program: ...


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark model.

    Attributes
    ----------
    name:
        Benchmark name (``"libquantum"``, ``"mcf"``, ...).
    builder:
        Callable producing the program for an input set and scale.
    description:
        What real behaviour the model mimics.
    inputs:
        Valid input-set names; the first is the reference input used for
        profiling (the paper samples with one input and evaluates with
        others in §VII-D).
    suite:
        ``"spec2006"``, ``"other"`` or ``"parallel"``.
    """

    name: str
    builder: ProgramBuilder
    description: str
    inputs: tuple[str, ...] = ("ref", "train", "alt")
    suite: str = "spec2006"

    def build(self, input_set: str | None = None, scale: float = 1.0) -> Program:
        """Instantiate the program for one input set."""
        chosen = self.inputs[0] if input_set is None else input_set
        if chosen not in self.inputs:
            raise WorkloadError(
                f"workload {self.name!r} has no input set {chosen!r} "
                f"(valid: {', '.join(self.inputs)})"
            )
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        return self.builder(chosen, scale)


_REGISTRY: dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload to the global registry (idempotent by name)."""
    if spec.name in _REGISTRY:
        raise WorkloadError(f"workload {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None


def list_workloads(suite: str | None = None) -> list[str]:
    """Sorted names of registered workloads, optionally by suite."""
    return sorted(
        name
        for name, spec in _REGISTRY.items()
        if suite is None or spec.suite == suite
    )


def build_program(name: str, input_set: str | None = None, scale: float = 1.0) -> Program:
    """Shorthand: registry lookup + build."""
    return get_workload(name).build(input_set, scale)


def workload_seed(name: str, input_set: str, salt: int = 0) -> int:
    """Stable 63-bit seed derived from workload identity."""
    digest = hashlib.sha256(f"{name}/{input_set}/{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1
