"""Graph-analytics benchmark models (the irregular frontier).

The paper concedes that pointer-chasing workloads get single-digit
prefetch coverage; these models reproduce the *graph-analytics* shapes
behind that concession as first-class benchmarks: CSR edge traversal,
breadth-first frontier expansion, hash probing, and index-array
indirection ``A[B[i]]``.  They are the evaluation targets for the
cross-core LLC prefetcher (:mod:`repro.hwpref.xcore`) and MDDLI's
indirect-prefetch rewrite — both of which need the ``A[B[i]]`` pairs
these bodies carry.

Address windows sit in the ``(21..23) << 31`` range: above the SPEC
models' 2 GiB windows, below the parallel suite's base — mixes never
alias.
"""

from __future__ import annotations

from repro.isa.instructions import (
    BFSAccess,
    CSRAccess,
    GatherAccess,
    HashProbeAccess,
    IndexedAccess,
    Load,
    RandomAccess,
    Store,
    StridedAccess,
)
from repro.isa.program import Kernel, Program
from repro.workloads.base import WorkloadSpec, register_workload

__all__ = ["GRAPH_BENCHMARKS"]

MB = 1024 * 1024
KB = 1024


def _gbase(slot: int) -> int:
    return (21 + slot) << 31


def _arr(base: int, k: int) -> int:
    # Same 128 MiB + odd-offset stagger as the SPEC models, so
    # concurrently swept arrays never land in lockstep cache sets.
    return base + k * (128 * MB + 20_544)


def _hot(base: int, k: int, label: str) -> Load:
    return Load(label, GatherAccess(_arr(base, 8 + k), 16 * KB, locality=0.0))


def _trips(n: int, scale: float) -> int:
    return max(16, int(n * scale))


def _pagerank(input_set: str, scale: float) -> Program:
    """Push-style PageRank sweep: CSR edges + rank gather ``rank[col[e]]``.

    The edge-array scan is short sequential runs (covered by stream
    prefetchers); the rank gather is pure index indirection — the miss
    bucket that stays uncovered without an indirect prefetcher.  The
    ``col``/``rank`` pair is a structural ``A[B[i]]``: the cross-core
    prefetcher and MDDLI's indirect rewrite both key on it.
    """
    edges = {"ref": 12 * MB, "train": 4 * MB, "alt": 20 * MB}[input_set]
    rank = {"ref": 4 * MB, "train": 2 * MB, "alt": 6 * MB}[input_set]
    seed = {"ref": 1101, "train": 1102, "alt": 1103}[input_set]
    b = _gbase(0)
    n_edges = edges // 8
    col_base = _arr(b, 1)
    body = (
        Load("rowptr", StridedAccess(_arr(b, 0), 8, wrap_bytes=edges // 8)),
        Load("edges", CSRAccess(_arr(b, 2), max(64, edges // 64), 8, 8)),
        Load("col", StridedAccess(col_base, 8, wrap_bytes=n_edges * 8)),
        Load("rank", IndexedAccess(_arr(b, 3), rank, col_base, n_edges, seed)),
        Store("newrank", StridedAccess(_arr(b, 4), 8, wrap_bytes=rank)),
        _hot(b, 0, "hot0"),
    )
    return Program(
        "pagerank",
        (Kernel("push", body, _trips(90_000, scale), work_per_memop=4.0, mlp=4.0),),
    )


def _bfs(input_set: str, scale: float) -> Program:
    """Level-synchronous BFS: frontier queue + visitation-order node data.

    The frontier queue streams; the node-data visits follow the graph's
    breadth-first order — irregular at stride level but with strong
    structural reuse — and the visited bitmap is random within a small
    region.  No dominant stride anywhere that matters: the paper's
    single-digit-coverage regime.
    """
    nodes = {"ref": 8192, "train": 2048, "alt": 8192}[input_set]
    dist = {"ref": 8 * MB, "train": 3 * MB, "alt": 12 * MB}[input_set]
    b = _gbase(1)
    body = (
        Load("frontier", StridedAccess(_arr(b, 0), 8, wrap_bytes=nodes * 8)),
        Load("visit", BFSAccess(_arr(b, 1), nodes, 4, 64)),
        Load("visited", RandomAccess(_arr(b, 2), 2 * MB, align=8)),
        Store("dist", StridedAccess(_arr(b, 3), 8, wrap_bytes=dist)),
        _hot(b, 0, "hot0"),
    )
    return Program(
        "bfs",
        (Kernel("level", body, _trips(80_000, scale), work_per_memop=6.0, mlp=2.0),),
    )


def _hashjoin(input_set: str, scale: float) -> Program:
    """Hash join probe phase: bucket probes + payload indirection.

    The probe side streams keys, hashes into a bucket table (random
    start, short linear-probe run), then fetches the matched payload
    through an index array — a second ``A[B[i]]`` pair with a *larger*
    data region than pagerank's rank array.
    """
    table = {"ref": 8 * MB, "train": 3 * MB, "alt": 12 * MB}[input_set]
    payload = {"ref": 12 * MB, "train": 4 * MB, "alt": 16 * MB}[input_set]
    seed = {"ref": 3301, "train": 3302, "alt": 3303}[input_set]
    b = _gbase(2)
    n_keys = table // 16
    keyidx_base = _arr(b, 2)
    body = (
        Load("keys", StridedAccess(_arr(b, 0), 16, wrap_bytes=table)),
        Load("bucket", HashProbeAccess(_arr(b, 1), max(64, table // 64), 2, 64)),
        Load("keyidx", StridedAccess(keyidx_base, 8, wrap_bytes=n_keys * 8)),
        Load("payload", IndexedAccess(_arr(b, 3), payload, keyidx_base, n_keys, seed)),
        Store("out", StridedAccess(_arr(b, 4), 16, wrap_bytes=table)),
        _hot(b, 0, "hot0"),
    )
    return Program(
        "hashjoin",
        (Kernel("probe", body, _trips(80_000, scale), work_per_memop=5.0, mlp=3.0),),
    )


GRAPH_BENCHMARKS = (
    WorkloadSpec("pagerank", _pagerank, "PageRank: CSR edges + rank[col[e]] gather",
                 suite="graph"),
    WorkloadSpec("bfs", _bfs, "BFS: frontier queue + visitation-order node data",
                 suite="graph"),
    WorkloadSpec("hashjoin", _hashjoin, "hash join probe: buckets + payload[idx[k]]",
                 suite="graph"),
)

for _spec in GRAPH_BENCHMARKS:
    register_workload(_spec)
