"""Multi-threaded workload models (paper §VII-E, Fig. 12).

The paper evaluates the NAS and SPEC OMP suites and plots four of them:
``swim*`` and ``cg*`` (the two highest off-chip-bandwidth programs,
8 GB/s and 14 GB/s at four threads on the Intel machine) plus the
ordinary ``fma3d`` and ``dc``.  The finding: software prefetching only
beats hardware prefetching where threads *saturate* bandwidth (cg), and
is comparable elsewhere — streaming parallel workloads contend less than
mixed ones because threads run the same phase.

A parallel workload here is one program template instantiated per
thread with disjoint data partitions (SPMD).  Thread 0's profile drives
the prefetch plan for every thread, as the threads share their code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import WorkloadError
from repro.isa.instructions import GatherAccess, Load, Store, StridedAccess
from repro.isa.program import Kernel, Program

__all__ = ["ParallelWorkloadSpec", "get_parallel_workload", "list_parallel_workloads", "PARALLEL_BENCHMARKS"]

MB = 1024 * 1024
KB = 1024

#: Address windows above the single-core benchmarks' (slots 16+).
_PARALLEL_BASE = 64 << 30
_THREAD_STRIDE = 1 << 30


def _tbase(slot: int, thread: int) -> int:
    return _PARALLEL_BASE + slot * (8 << 30) + thread * _THREAD_STRIDE


def _arr(base: int, k: int) -> int:
    return base + k * (64 * MB + 20_544)


def _swim(thread: int, threads: int, input_set: str, scale: float) -> Program:
    """Shallow-water stencil: wide 8 B streams, ~2 GB/s per thread."""
    region = {"ref": 16 * MB, "train": 6 * MB, "alt": 24 * MB}[input_set]
    b = _tbase(0, thread)
    body = (
        Load("u", StridedAccess(_arr(b, 0), 8, wrap_bytes=region)),
        Load("v", StridedAccess(_arr(b, 1), 8, wrap_bytes=region)),
        Load("p", StridedAccess(_arr(b, 2), 8, wrap_bytes=region)),
        Store("unew", StridedAccess(_arr(b, 3), 8, wrap_bytes=region)),
        Load("hot0", GatherAccess(_arr(b, 6), 16 * KB, locality=0.0)),
    )
    return Program(
        f"swim.t{thread}",
        (Kernel("stencil", body, max(16, int(70_000 * scale)), work_per_memop=7.0, mlp=9.0),),
    )


def _cg(thread: int, threads: int, input_set: str, scale: float) -> Program:
    """Conjugate gradient: sparse matvec, the bandwidth hog (≈3.5 GB/s/thread)."""
    region = {"ref": 20 * MB, "train": 8 * MB, "alt": 28 * MB}[input_set]
    vec = {"ref": 3 * MB, "train": 1 * MB, "alt": 4 * MB}[input_set]
    b = _tbase(1, thread)
    body = (
        Load("aval", StridedAccess(_arr(b, 0), 8, wrap_bytes=region)),
        Load("acol", StridedAccess(_arr(b, 1), 8, wrap_bytes=region)),
        Load("x", GatherAccess(_arr(b, 2), vec, locality=0.55)),
        Store("y", StridedAccess(_arr(b, 3), 8, wrap_bytes=4 * MB)),
    )
    return Program(
        f"cg.t{thread}",
        (Kernel("matvec", body, max(16, int(80_000 * scale)), work_per_memop=3.0, mlp=8.0),),
    )


def _fma3d(thread: int, threads: int, input_set: str, scale: float) -> Program:
    """Crash simulation: compute-bound, modest strided traffic."""
    region = {"ref": 8 * MB, "train": 3 * MB, "alt": 12 * MB}[input_set]
    b = _tbase(2, thread)
    body = (
        Load("elem", StridedAccess(_arr(b, 0), 16, wrap_bytes=region)),
        Load("node", GatherAccess(_arr(b, 1), 2 * MB, locality=0.88)),
        Store("force", StridedAccess(_arr(b, 2), 16, wrap_bytes=region)),
        Load("hot0", GatherAccess(_arr(b, 6), 16 * KB, locality=0.0)),
        Load("hot1", GatherAccess(_arr(b, 7), 16 * KB, locality=0.0)),
    )
    return Program(
        f"fma3d.t{thread}",
        (Kernel("solve", body, max(16, int(60_000 * scale)), work_per_memop=14.0, mlp=5.0),),
    )


def _dc(thread: int, threads: int, input_set: str, scale: float) -> Program:
    """Data-cube aggregation: gather-heavy, mostly cache-resident."""
    cube = {"ref": 4 * MB, "train": 2 * MB, "alt": 6 * MB}[input_set]
    b = _tbase(3, thread)
    body = (
        Load("tuple", StridedAccess(_arr(b, 0), 32, wrap_bytes=8 * MB)),
        Load("dim", GatherAccess(_arr(b, 1), cube, locality=0.75)),
        Store("agg", GatherAccess(_arr(b, 2), cube, locality=0.75)),
        Load("hot0", GatherAccess(_arr(b, 6), 16 * KB, locality=0.0)),
        Load("hot1", GatherAccess(_arr(b, 7), 16 * KB, locality=0.0)),
    )
    return Program(
        f"dc.t{thread}",
        (Kernel("aggregate", body, max(16, int(60_000 * scale)), work_per_memop=9.0, mlp=4.0),),
    )


@dataclass(frozen=True)
class ParallelWorkloadSpec:
    """A multi-threaded benchmark template.

    ``high_bandwidth`` marks the ``*``-suffixed programs of paper
    Fig. 12 (the two with the highest off-chip demand).
    """

    name: str
    thread_builder: Callable[[int, int, str, float], Program]
    description: str
    high_bandwidth: bool = False
    inputs: tuple[str, ...] = ("ref", "train", "alt")

    def build(
        self, threads: int, input_set: str = "ref", scale: float = 1.0
    ) -> list[Program]:
        """One program per thread, on disjoint data partitions."""
        if threads <= 0:
            raise WorkloadError("threads must be positive")
        if input_set not in self.inputs:
            raise WorkloadError(
                f"workload {self.name!r} has no input set {input_set!r}"
            )
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        return [
            self.thread_builder(t, threads, input_set, scale) for t in range(threads)
        ]


PARALLEL_BENCHMARKS = (
    ParallelWorkloadSpec("swim", _swim, "shallow water stencil streams", high_bandwidth=True),
    ParallelWorkloadSpec("cg", _cg, "sparse conjugate gradient (bandwidth hog)", high_bandwidth=True),
    ParallelWorkloadSpec("fma3d", _fma3d, "crash simulation, compute bound"),
    ParallelWorkloadSpec("dc", _dc, "data-cube aggregation"),
)

_PARALLEL_REGISTRY = {spec.name: spec for spec in PARALLEL_BENCHMARKS}


def get_parallel_workload(name: str) -> ParallelWorkloadSpec:
    """Look up a parallel workload by name."""
    try:
        return _PARALLEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_PARALLEL_REGISTRY))
        raise WorkloadError(f"unknown parallel workload {name!r}; known: {known}") from None


def list_parallel_workloads() -> list[str]:
    """Names of the parallel benchmark models."""
    return sorted(_PARALLEL_REGISTRY)
