"""Benchmark models: SPEC-2006-like programs, parallel suites, mixes.

Importing this package registers every built-in workload.
"""

from repro.workloads.generator import WorkloadRecipe, generate_workload
from repro.workloads.base import (
    WorkloadSpec,
    build_program,
    get_workload,
    list_workloads,
    register_workload,
    workload_seed,
)
from repro.workloads.mixes import (
    PAPER_MIX_COUNT,
    PAPER_MIX_SIZE,
    Mix,
    fig8_mix,
    generate_mixes,
)
from repro.workloads.parallel import (
    PARALLEL_BENCHMARKS,
    ParallelWorkloadSpec,
    get_parallel_workload,
    list_parallel_workloads,
)
from repro.workloads.graph import GRAPH_BENCHMARKS
from repro.workloads.spec2006 import ALL_SINGLE_CORE, OTHER_BENCHMARKS, SPEC_BENCHMARKS

__all__ = [
    "WorkloadSpec",
    "build_program",
    "get_workload",
    "list_workloads",
    "register_workload",
    "workload_seed",
    "ALL_SINGLE_CORE",
    "SPEC_BENCHMARKS",
    "OTHER_BENCHMARKS",
    "GRAPH_BENCHMARKS",
    "Mix",
    "generate_mixes",
    "fig8_mix",
    "PAPER_MIX_COUNT",
    "PAPER_MIX_SIZE",
    "ParallelWorkloadSpec",
    "PARALLEL_BENCHMARKS",
    "get_parallel_workload",
    "list_parallel_workloads",
    "WorkloadRecipe",
    "generate_workload",
]
