"""Figure 3 — miss ratio modelling for mcf.

StatStack's application-average miss ratio curve and the curve of a
frequently executed load, over cache sizes 8 kB – 8 MB, with the AMD
Phenom II's L1/L2/LLC sizes marked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import get_machine
from repro.experiments.runner import profile_for
from repro.experiments.tables import render_table
from repro.statstack.model import StatStackModel
from repro.statstack.mrc import MissRatioCurve, PerPCMissRatios, default_size_grid

__all__ = ["Fig3Result", "run_fig3", "render_fig3"]


@dataclass(frozen=True)
class Fig3Result:
    """Application and hot-load miss ratio curves for one benchmark."""

    benchmark: str
    hot_pc: int
    sizes: np.ndarray
    application: MissRatioCurve
    hot_load: MissRatioCurve


def run_fig3(
    benchmark: str = "mcf",
    machine_name: str = "amd-phenom-ii",
    scale: float = 1.0,
    points_per_octave: int = 1,
) -> Fig3Result:
    """Model the curves of Fig. 3 (mcf by default)."""
    machine = get_machine(machine_name)
    profile = profile_for(benchmark, "ref", scale)
    model = StatStackModel(profile.sampling.reuse, machine.line_bytes)
    grid = default_size_grid(points_per_octave=points_per_octave)
    ratios = PerPCMissRatios(model, machine, size_grid=grid)

    # "a frequently executed load": highest sample weight among loads
    # that actually miss.
    candidates = [
        pc
        for pc in model.modelled_pcs()
        if pc >= 0 and model.pc_miss_ratio(pc, machine.l1.size_bytes) > 0.02
    ]
    hot_pc = max(candidates, key=model.pc_sample_weight)
    return Fig3Result(
        benchmark=benchmark,
        hot_pc=hot_pc,
        sizes=grid,
        application=ratios.application_curve(),
        hot_load=ratios.pc_curve(hot_pc),
    )


def render_fig3(result: Fig3Result, machine_name: str = "amd-phenom-ii") -> str:
    """ASCII table of both curves with cache levels marked."""
    machine = get_machine(machine_name)
    marks = {
        machine.l1.size_bytes: "<- L1$",
        machine.l2.size_bytes: "<- L2$",
        machine.llc.size_bytes: "<- LLC",
    }
    rows = []
    for size, app_mr, pc_mr in zip(
        result.sizes.tolist(),
        result.application.ratios.tolist(),
        result.hot_load.ratios.tolist(),
    ):
        label = f"{size // 1024}k" if size < 1 << 20 else f"{size >> 20}M"
        rows.append(
            (label, f"{app_mr * 100:.1f}%", f"{pc_mr * 100:.1f}%", marks.get(size, ""))
        )
    return render_table(
        ("Cache", "average", f"load pc={result.hot_pc}", ""),
        rows,
        title=f"Fig 3: Miss Ratio Modeling — {result.benchmark} (StatStack)",
    )
