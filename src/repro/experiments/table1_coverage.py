"""Table I — prefetch coverage and minimisation.

For every benchmark, the fraction of ground-truth L1 misses *removed*
by each software prefetching method (MDDLI-filtered vs stride-centric),
and the overhead OH = prefetch instructions executed per removed miss.
Ground truth comes from the functional cache simulator configured as the
AMD Phenom II L1 (64 kB, 2-way, 64 B lines), exactly as in paper §IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.functional import FunctionalCacheSim
from repro.config import get_machine
from repro.core.insertion import apply_prefetch_plan
from repro.api import ExperimentSpec
from repro.experiments.runner import plan_for_spec, profile_for
from repro.experiments.tables import render_table
from repro.workloads.spec2006 import ALL_SINGLE_CORE

__all__ = ["CoverageRow", "coverage_for", "run_table1", "render_table1"]

_MACHINE = "amd-phenom-ii"


@dataclass(frozen=True)
class CoverageRow:
    """One benchmark's Table I entry."""

    benchmark: str
    mddli_coverage: float
    mddli_oh: float
    stride_coverage: float
    stride_oh: float


def coverage_for(
    name: str, kind: str, scale: float = 1.0
) -> tuple[float, float, int]:
    """(coverage, OH, prefetches executed) of one method on one benchmark."""
    machine = get_machine(_MACHINE)
    profile = profile_for(name, "ref", scale)
    baseline_sim = FunctionalCacheSim(machine.l1)
    baseline = baseline_sim.run(profile.execution.trace)
    total_misses = baseline.total_misses()

    plan = plan_for_spec(ExperimentSpec(name, _MACHINE, kind, scale=scale))
    optimised_trace = apply_prefetch_plan(profile.execution.trace, plan)
    optimised_sim = FunctionalCacheSim(machine.l1)
    optimised = optimised_sim.run(optimised_trace, honor_prefetches=True)
    removed = total_misses - optimised.total_misses()

    coverage = removed / total_misses if total_misses else 0.0
    n_prefetches = optimised_trace.n_prefetch
    oh = n_prefetches / removed if removed > 0 else float("inf")
    return coverage, oh, n_prefetches


def run_table1(scale: float = 1.0) -> list[CoverageRow]:
    """Compute Table I for all 12 benchmarks."""
    rows = []
    for name in ALL_SINGLE_CORE:
        m_cov, m_oh, _ = coverage_for(name, "swnt", scale)
        s_cov, s_oh, _ = coverage_for(name, "stride", scale)
        rows.append(CoverageRow(name, m_cov, m_oh, s_cov, s_oh))
    return rows


def render_table1(rows: list[CoverageRow]) -> str:
    """ASCII rendering in the paper's layout, with an average row."""
    def _fin(values):
        vals = [v for v in values if v != float("inf")]
        return sum(vals) / len(vals) if vals else float("inf")

    table_rows = [
        (
            r.benchmark,
            f"{r.mddli_coverage * 100:.1f}%",
            f"{r.mddli_oh:.1f}" if r.mddli_oh != float("inf") else "inf",
            f"{r.stride_coverage * 100:.1f}%",
            f"{r.stride_oh:.1f}" if r.stride_oh != float("inf") else "inf",
        )
        for r in rows
    ]
    table_rows.append(
        (
            "Average",
            f"{sum(r.mddli_coverage for r in rows) / len(rows) * 100:.1f}%",
            f"{_fin(r.mddli_oh for r in rows):.1f}",
            f"{sum(r.stride_coverage for r in rows) / len(rows) * 100:.1f}%",
            f"{_fin(r.stride_oh for r in rows):.1f}",
        )
    )
    return render_table(
        ("Benchmark", "MDDLI Cov.", "MDDLI OH", "Stride Cov.", "Stride OH"),
        table_rows,
        title="Table I: Prefetch Coverage & Minimisation (vs functional sim, AMD L1)",
    )
