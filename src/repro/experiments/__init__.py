"""Experiment drivers: one module per paper table/figure.

==================  ===========================================
Module              Paper artefact
==================  ===========================================
table1_coverage     Table I (coverage & prefetch overhead)
statstack_validation §IV model-vs-simulation coverage
fig3_mrc            Fig. 3 (miss ratio curves, mcf)
fig4_speedup        Fig. 4 (single-thread speedups)
fig5_traffic        Fig. 5 (off-chip traffic increase)
fig6_bandwidth      Fig. 6 (average bandwidth, GB/s)
fig7_mixes          Fig. 7 (180 mixes: speedup & traffic CDFs)
fig8_mix_detail     Fig. 8 (cigar/gcc/lbm/libquantum, direct sim)
fig9_varying_inputs Fig. 9 (mixes on alternate inputs)
fig10_fair_speedup  Fig. 10 (Fair-Speedup bars)
fig11_qos           Fig. 11 (QoS degradation bars)
fig12_parallel      Fig. 12 (multi-threaded suites)
==================  ===========================================

The engine surface (``configure``/``current_engine``/…) lives on
:mod:`repro.api`; import it from there.  The historical stringly-typed
helpers (``profile_workload`` and friends) are long gone — the
tombstones that used to point at their replacements finished their
deprecation cycle, so the old names now raise plain ``AttributeError``.
"""

from repro.api import (
    ExperimentSpec,
    configure,
    current_engine,
    reset_default_engine,
)
from repro.experiments.runner import CONFIGS, WorkloadProfile, run_spec

__all__ = [
    "CONFIGS",
    "ExperimentSpec",
    "WorkloadProfile",
    "configure",
    "current_engine",
    "reset_default_engine",
    "run_spec",
]

def __getattr__(name: str):
    # Lazy re-export: the engine pulls in multiprocessing machinery that
    # most importers of this package never need.
    if name == "ExperimentEngine":
        from repro.experiments.engine import ExperimentEngine

        return ExperimentEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
