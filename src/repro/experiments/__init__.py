"""Experiment drivers: one module per paper table/figure.

==================  ===========================================
Module              Paper artefact
==================  ===========================================
table1_coverage     Table I (coverage & prefetch overhead)
statstack_validation §IV model-vs-simulation coverage
fig3_mrc            Fig. 3 (miss ratio curves, mcf)
fig4_speedup        Fig. 4 (single-thread speedups)
fig5_traffic        Fig. 5 (off-chip traffic increase)
fig6_bandwidth      Fig. 6 (average bandwidth, GB/s)
fig7_mixes          Fig. 7 (180 mixes: speedup & traffic CDFs)
fig8_mix_detail     Fig. 8 (cigar/gcc/lbm/libquantum, direct sim)
fig9_varying_inputs Fig. 9 (mixes on alternate inputs)
fig10_fair_speedup  Fig. 10 (Fair-Speedup bars)
fig11_qos           Fig. 11 (QoS degradation bars)
fig12_parallel      Fig. 12 (multi-threaded suites)
==================  ===========================================
"""

from repro.api import ExperimentSpec
from repro.experiments.engine import ExperimentEngine, configure, current_engine
from repro.experiments.runner import (
    CONFIGS,
    WorkloadProfile,
    plan_for,
    profile_workload,
    run_all_configs,
    run_config,
    run_spec,
)

__all__ = [
    "CONFIGS",
    "ExperimentSpec",
    "ExperimentEngine",
    "WorkloadProfile",
    "configure",
    "current_engine",
    "plan_for",
    "profile_workload",
    "run_all_configs",
    "run_config",
    "run_spec",
]
