"""§VIII-B — combining hardware and software prefetching.

The paper reports: *"Our experiments combining hardware and software
prefetching confirmed their [Lee et al., TACO'12] observation that
combining the two can hurt performance in several cases and should be
avoided."*

This experiment runs every benchmark in the ``hwsw`` configuration (the
rewritten Soft.Pref.+NT program *with* the machine's hardware prefetcher
enabled) and compares it against the better of the two schemes alone.
Two interference mechanisms emerge from the simulation:

* the hardware prefetcher trains on the post-L1 miss stream, which the
  software prefetches have already thinned and reordered — its accuracy
  drops while its traffic remains;
* both engines race for the same lines; the hardware copy of an
  NT-designated line is installed into L2/LLC, silently undoing the
  bypass analysis and re-polluting the shared cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ExperimentEngine, ExperimentSpec, current_engine
from repro.experiments.tables import render_table
from repro.workloads.spec2006 import ALL_SINGLE_CORE

__all__ = ["CombinedRow", "run_combined", "render_combined"]


@dataclass(frozen=True)
class CombinedRow:
    """Speedups of HW-only, SW+NT-only, and combined for one benchmark."""

    benchmark: str
    machine: str
    hw: float
    swnt: float
    combined: float
    combined_traffic_vs_swnt: float

    @property
    def combination_hurts(self) -> bool:
        """True when HW+SW is worse than the best single scheme."""
        return self.combined < max(self.hw, self.swnt) - 1e-9


def run_combined(
    machine_name: str,
    benchmarks: tuple[str, ...] = ALL_SINGLE_CORE,
    scale: float = 1.0,
    engine: ExperimentEngine | None = None,
) -> list[CombinedRow]:
    """Evaluate hw, swnt and hw+sw on one machine."""
    engine = engine or current_engine()
    results = engine.run_grid(
        benchmarks,
        (machine_name,),
        ("baseline", "hw", "swnt", "hwsw"),
        scales=(scale,),
    )
    rows = []
    for name in benchmarks:
        cell = ExperimentSpec(name, machine_name, "baseline", "ref", scale)
        runs = {
            c: results[cell.with_config(c)]
            for c in ("baseline", "hw", "swnt", "hwsw")
        }
        base = runs["baseline"]
        rows.append(
            CombinedRow(
                benchmark=name,
                machine=machine_name,
                hw=base.cycles / runs["hw"].cycles - 1.0,
                swnt=base.cycles / runs["swnt"].cycles - 1.0,
                combined=base.cycles / runs["hwsw"].cycles - 1.0,
                combined_traffic_vs_swnt=(
                    runs["hwsw"].dram_bytes / max(1, runs["swnt"].dram_bytes) - 1.0
                ),
            )
        )
    return rows


def render_combined(rows: list[CombinedRow]) -> str:
    machine = rows[0].machine if rows else "?"
    table_rows = [
        (
            r.benchmark,
            f"{r.hw * 100:+.1f}%",
            f"{r.swnt * 100:+.1f}%",
            f"{r.combined * 100:+.1f}%",
            f"{r.combined_traffic_vs_swnt * 100:+.0f}%",
            "yes" if r.combination_hurts else "no",
        )
        for r in rows
    ]
    hurt = sum(r.combination_hurts for r in rows)
    table_rows.append((f"hurts in {hurt}/{len(rows)}", "", "", "", "", ""))
    return render_table(
        ("Benchmark", "HW only", "SW+NT only", "HW+SW", "traffic vs SW", "hurts?"),
        table_rows,
        title=f"§VIII-B: combining hardware and software prefetching — {machine}",
    )
