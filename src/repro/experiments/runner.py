"""Single-benchmark experiment driver.

Encodes the paper's evaluation protocol (§VII):

* the **baseline** is the original program with hardware prefetching
  turned off;
* **Hardware Pref.** runs the original program with the machine's
  hardware prefetcher model enabled;
* **Software Pref.** / **Soft.Pref.+NT** run the rewritten program (one
  profiling pass on the *reference* input, analysed per target machine)
  without hardware prefetching — NT adds the cache-bypass analysis;
* **Stride-centric** runs the rewritten program from the baseline plan
  of Luk'02/Wu'02-style insertion.

Profiles and runs are cached in-process so experiment modules can share
them; everything is keyed on (workload, input set, machine, config).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.baselines.stride_centric import stride_centric_plan
from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.stats import RunStats
from repro.config import MachineConfig, get_machine
from repro.core.pipeline import OptimizerSettings, PrefetchOptimizer
from repro.core.report import OptimizationReport
from repro.errors import ExperimentError
from repro.hwpref import amd_hw_prefetcher, intel_hw_prefetcher
from repro.isa.interpreter import ExecutionResult, execute_program
from repro.isa.program import Program
from repro.isa.rewriter import insert_prefetches
from repro.sampling.sampler import RuntimeSampler, SamplingResult
from repro.workloads.base import build_program, workload_seed

__all__ = [
    "CONFIGS",
    "WorkloadProfile",
    "profile_workload",
    "plan_for",
    "run_config",
    "run_all_configs",
    "hw_prefetcher_for",
]

#: The four prefetching configurations of Figs. 4–6, plus the baseline
#: and the combined HW+SW configuration of §VIII-B (Lee et al.'s
#: observation, which the paper confirms: combining the two can hurt).
CONFIGS = ("baseline", "hw", "sw", "swnt", "stride", "hwsw")

#: Sampling rate used for profiling.  The paper samples 1/100k over full
#: SPEC runs (~1e11 references → ~1e6 samples); our traces are ~5e5
#: references, so an equivalent *sample count density per static
#: instruction* needs a proportionally higher rate.
PROFILE_RATE = 2e-3


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything derived from one profiling pass of one workload."""

    program: Program
    execution: ExecutionResult
    sampling: SamplingResult


@lru_cache(maxsize=128)
def profile_workload(
    name: str,
    input_set: str = "ref",
    scale: float = 1.0,
    rate: float = PROFILE_RATE,
) -> WorkloadProfile:
    """Build, execute and sample one workload (cached)."""
    program = build_program(name, input_set, scale)
    seed = workload_seed(name, input_set)
    execution = execute_program(program, seed=seed)
    sampler = RuntimeSampler(rate=rate, seed=seed & 0xFFFF_FFFF)
    sampling = sampler.sample(execution.trace)
    return WorkloadProfile(program, execution, sampling)


@lru_cache(maxsize=256)
def plan_for(
    name: str,
    machine_name: str,
    kind: str = "swnt",
    input_set: str = "ref",
    scale: float = 1.0,
) -> OptimizationReport:
    """Prefetch plan of one method for one workload on one machine.

    ``kind`` ∈ {"sw", "swnt", "stride"}.  Profiling always uses the
    reference input (the paper's single-profile methodology), but the
    *profiled scale* matches the evaluated scale so distances stay
    consistent.
    """
    profile = profile_workload(name, "ref", scale)
    machine = get_machine(machine_name)
    if kind == "stride":
        return stride_centric_plan(profile.sampling, machine)
    if kind in ("sw", "swnt"):
        settings = OptimizerSettings(enable_bypass=(kind == "swnt"))
        optimizer = PrefetchOptimizer(machine, settings)
        return optimizer.analyze(
            profile.sampling, refs_per_pc=profile.program.refs_per_pc()
        )
    raise ExperimentError(f"unknown plan kind {kind!r}")


def hw_prefetcher_for(machine: MachineConfig, utilisation=None):
    """The machine's hardware prefetcher model (paper Table II parts)."""
    if "amd" in machine.name:
        return amd_hw_prefetcher(machine.line_bytes, utilisation)
    return intel_hw_prefetcher(machine.line_bytes, utilisation)


def run_config(
    name: str,
    machine_name: str,
    config: str,
    input_set: str = "ref",
    scale: float = 1.0,
) -> RunStats:
    """Simulate one workload under one prefetching configuration."""
    if config not in CONFIGS:
        raise ExperimentError(f"unknown config {config!r}; valid: {CONFIGS}")
    machine = get_machine(machine_name)
    profile = profile_workload(name, input_set, scale)

    if config in ("baseline", "hw"):
        execution = profile.execution
    else:
        plan_kind = "swnt" if config == "hwsw" else config
        plan = plan_for(name, machine_name, plan_kind, input_set, scale)
        rewritten = insert_prefetches(profile.program, plan)
        execution = execute_program(
            rewritten, seed=workload_seed(name, input_set)
        )

    hierarchy = CacheHierarchy(machine)
    if config in ("hw", "hwsw"):
        hierarchy.prefetcher = hw_prefetcher_for(
            machine, hierarchy.bandwidth.utilisation
        )
    stats = hierarchy.run(
        execution.trace,
        work_per_memop=execution.work_per_memop,
        mlp=execution.mlp,
    )
    hierarchy.drain_writebacks(stats)
    return stats


@lru_cache(maxsize=512)
def _run_config_cached(
    name: str, machine_name: str, config: str, input_set: str, scale: float
) -> RunStats:
    return run_config(name, machine_name, config, input_set, scale)


def run_all_configs(
    name: str,
    machine_name: str,
    input_set: str = "ref",
    scale: float = 1.0,
    configs: tuple[str, ...] = CONFIGS,
) -> dict[str, RunStats]:
    """Run every requested configuration (cached across experiments)."""
    return {
        config: _run_config_cached(name, machine_name, config, input_set, scale)
        for config in configs
    }
