"""Single-cell experiment compute layer.

Encodes the paper's evaluation protocol (§VII):

* the **baseline** is the original program with hardware prefetching
  turned off;
* **Hardware Pref.** runs the original program with the machine's
  hardware prefetcher model enabled;
* **Software Pref.** / **Soft.Pref.+NT** run the rewritten program (one
  profiling pass on the *reference* input, analysed per target machine)
  without hardware prefetching — NT adds the cache-bypass analysis;
* **Stride-centric** runs the rewritten program from the baseline plan
  of Luk'02/Wu'02-style insertion.

Every cell is addressed by an :class:`~repro.api.ExperimentSpec`.  The
spec-based entry points (:func:`profile_for_spec`, :func:`plan_for_spec`,
:func:`run_spec`) share **one** memo table and, when a persistent
:class:`~repro.cache.ResultCache` is activated (see :func:`set_cache`),
one on-disk store — so the CLI, the parallel engine and the experiment
drivers all reuse each other's work.  The historical stringly-typed
functions were removed after their deprecation cycle; the old names now
raise :class:`~repro.errors.ExperimentError` pointing at the spec API.

Every expensive stage is wrapped in a :func:`repro.obs.span` so traced
runs show where profiling, planning and simulation time goes (see
``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro import faults, obs
from repro.api import CONFIGS, PLAN_KINDS, ExperimentSpec
from repro.baselines.stride_centric import stride_centric_plan
from repro.cache import ResultCache
from repro.cachesim.bandwidth import BandwidthModel
from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.stats import RunStats
from repro.config import MachineConfig, get_machine
from repro.core.pipeline import OptimizerSettings, PrefetchOptimizer
from repro.core.report import OptimizationReport
from repro.errors import ExperimentError
from repro.hwpref import (
    amd_hw_prefetcher,
    cross_core_prefetcher_for,
    intel_hw_prefetcher,
)
from repro.isa.interpreter import ExecutionResult, execute_program
from repro.isa.program import Program
from repro.isa.rewriter import insert_prefetches
from repro.sampling.sampler import RuntimeSampler, SamplingResult
from repro.workloads.base import build_program, workload_seed

__all__ = [
    "CONFIGS",
    "PROFILE_RATE",
    "WorkloadProfile",
    "profile_for",
    "profile_for_spec",
    "plan_for_spec",
    "compute_run",
    "run_spec",
    "set_cache",
    "get_cache",
    "seed_memo",
    "memo_contains",
    "memo_size",
    "clear_memo",
    "hw_prefetcher_for",
]

#: Sampling rate used for profiling.  The paper samples 1/100k over full
#: SPEC runs (~1e11 references → ~1e6 samples); our traces are ~5e5
#: references, so an equivalent *sample count density per static
#: instruction* needs a proportionally higher rate.
PROFILE_RATE = 2e-3

#: In-process memo of completed cells, shared by every entry point.  A
#: plain dict (not ``lru_cache``) so the parallel engine can seed it
#: with worker-computed and disk-loaded results.
_MEMO: dict[ExperimentSpec, RunStats] = {}

#: The active persistent cache, or ``None`` (process-local memo only).
_CACHE: ResultCache | None = None


def set_cache(cache: ResultCache | None) -> ResultCache | None:
    """Activate (or with ``None``, deactivate) the persistent result cache.

    Returns the previously active cache so callers can restore it.
    """
    global _CACHE
    previous = _CACHE
    _CACHE = cache
    return previous


def get_cache() -> ResultCache | None:
    """The currently active persistent cache, if any."""
    return _CACHE


# The persistent cache is an optimisation: IO trouble (corrupt entry,
# full disk, injected fault) must degrade to a miss or a skipped store,
# never fail a cell whose computation is fine.


def _cache_get_stats(spec: ExperimentSpec):
    if _CACHE is None:
        return None
    try:
        return _CACHE.get_stats(spec, PROFILE_RATE)
    except Exception:
        return None


def _cache_put_stats(spec: ExperimentSpec, stats: RunStats) -> None:
    if _CACHE is None:
        return
    try:
        _CACHE.put_stats(spec, PROFILE_RATE, stats)
    except Exception:
        pass


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything derived from one profiling pass of one workload."""

    program: Program
    execution: ExecutionResult
    sampling: SamplingResult


def profile_for(
    name: str,
    input_set: str = "ref",
    scale: float = 1.0,
    rate: float = PROFILE_RATE,
) -> WorkloadProfile:
    """Build, execute and sample one workload (cached).

    The sampling pass — the only part of profiling that is both
    expensive and machine-independent — is additionally served from the
    persistent cache when one is active.
    """
    # Normalise before the memo so defaulted and explicit arguments hit
    # one cache entry.
    return _profile(name, input_set, float(scale), float(rate))


@lru_cache(maxsize=128)
def _profile(name: str, input_set: str, scale: float, rate: float) -> WorkloadProfile:
    with obs.span(
        "profile.pass", workload=name, input_set=input_set, scale=scale
    ):
        with obs.span("profile.build", workload=name):
            program = build_program(name, input_set, scale)
        seed = workload_seed(name, input_set)
        with obs.span("profile.execute", workload=name) as exec_span:
            execution = execute_program(program, seed=seed)
            exec_span.set(refs=len(execution.trace))
        sampling = None
        if _CACHE is not None:
            try:
                sampling = _CACHE.get_sampling(name, input_set, scale, rate)
            except Exception:
                sampling = None
        if sampling is None:
            sampler = RuntimeSampler(rate=rate, seed=seed & 0xFFFF_FFFF)
            sampling = sampler.sample(execution.trace)
            if _CACHE is not None:
                try:
                    _CACHE.put_sampling(name, input_set, scale, rate, sampling)
                except Exception:
                    pass
        elif obs.enabled():
            obs.metrics().counter("profile.sampling_cache_hits").inc()
        return WorkloadProfile(program, execution, sampling)


def profile_for_spec(spec: ExperimentSpec) -> WorkloadProfile:
    """Profile the workload a spec's cell evaluates (machine-agnostic)."""
    return profile_for(spec.workload, spec.input_set, spec.scale)


@lru_cache(maxsize=256)
def _plan(name: str, machine_name: str, kind: str, scale: float) -> OptimizationReport:
    """Prefetch plan of one method for one workload on one machine.

    Profiling always uses the reference input (the paper's single-profile
    methodology), but the *profiled scale* matches the evaluated scale so
    distances stay consistent — hence no ``input_set`` in the key.
    """
    if kind not in PLAN_KINDS:
        raise ExperimentError(f"unknown plan kind {kind!r}; valid: {PLAN_KINDS}")
    profile = profile_for(name, "ref", scale)
    machine = get_machine(machine_name)
    with obs.span(
        "plan.derive", workload=name, machine=machine_name, kind=kind
    ):
        if kind == "stride":
            return stride_centric_plan(profile.sampling, machine)
        settings = OptimizerSettings(
            enable_bypass=(kind == "swnt"),
            enable_indirect=(kind == "swi"),
        )
        optimizer = PrefetchOptimizer(machine, settings)
        indirect_pairs = (
            profile.program.indirect_pairs() if kind == "swi" else None
        )
        return optimizer.analyze(
            profile.sampling,
            refs_per_pc=profile.program.refs_per_pc(),
            indirect_pairs=indirect_pairs,
        )


def plan_for_spec(spec: ExperimentSpec) -> OptimizationReport:
    """The software prefetch plan a spec's configuration requires."""
    kind = spec.plan_kind
    if kind is None:
        raise ExperimentError(
            f"config {spec.config!r} carries no software plan"
        )
    return _plan(spec.workload, spec.machine, kind, spec.scale)


def hw_prefetcher_for(machine: MachineConfig, utilisation=None):
    """The machine's hardware prefetcher model (paper Table II parts)."""
    if "amd" in machine.name:
        return amd_hw_prefetcher(machine.line_bytes, utilisation)
    return intel_hw_prefetcher(machine.line_bytes, utilisation)


@lru_cache(maxsize=64)
def _rewritten_execution(
    workload: str, input_set: str, scale: float, machine_name: str, kind: str
) -> ExecutionResult:
    """Rewrite and re-execute one workload under one prefetch plan.

    Decoding (executing) the rewritten program is the most expensive
    machine-dependent stage of a cell; grid sweeps evaluate the same
    rewritten program under many configurations (prefetch-honour modes,
    backend choices, multicore mixes), so one decode serves them all.
    The memo keys on everything the rewrite depends on: the plan is a
    function of (workload, machine, kind, scale), the execution seed of
    (workload, input_set).
    """
    profile = profile_for(workload, input_set, scale)
    plan = _plan(workload, machine_name, kind, scale)
    with obs.span(
        "rewrite.apply", workload=workload, machine=machine_name, kind=kind
    ):
        rewritten = insert_prefetches(profile.program, plan)
        return execute_program(rewritten, seed=workload_seed(workload, input_set))


def compute_run(spec: ExperimentSpec) -> RunStats:
    """Simulate one cell, unconditionally (no memo, no persistent cache).

    This is the pure deterministic compute kernel the engine's worker
    processes call; everything else layers caching on top of it.
    """
    if faults.ACTIVE:
        faults.check("worker.compute", spec)
        # Chaos-harness site: a "kill" fault here models a worker
        # SIGKILLed mid-cell (only fires inside pool workers).
        faults.check("worker.sigkill", spec)
    with obs.span("cell.compute", cell=spec.label()):
        machine = get_machine(spec.machine)

        if spec.config in ("baseline", "hw", "hwcoord", "hwrl", "hwx"):
            execution = profile_for_spec(spec).execution
        else:
            execution = _rewritten_execution(
                spec.workload,
                spec.input_set,
                spec.scale,
                spec.machine,
                spec.plan_kind,
            )

        # Build the hierarchy fully wired: the batched fast path is
        # chosen at construction from the attached prefetcher, so the
        # prefetcher must not be bolted on afterwards.
        bandwidth = BandwidthModel(machine.bytes_per_cycle())
        prefetcher = None
        if spec.config in ("hw", "hwsw", "hwcoord", "hwrl"):
            prefetcher = hw_prefetcher_for(machine, bandwidth.utilisation)
        elif spec.config == "hwx":
            # Cross-core helper prefetching is untouched by off-chip
            # back-off in the paper's sense (it fills the shared LLC on
            # the memory side), so it runs unthrottled.
            prefetcher = cross_core_prefetcher_for(
                profile_for_spec(spec).program, machine
            )
        hierarchy = CacheHierarchy(
            machine, prefetcher=prefetcher, bandwidth=bandwidth
        )
        stats = hierarchy.run(
            execution.trace,
            work_per_memop=execution.work_per_memop,
            mlp=execution.mlp,
        )
        hierarchy.drain_writebacks(stats)
        if obs.enabled():
            reg = obs.metrics()
            reg.counter("sim.cells").inc()
            reg.counter("sim.dram_bytes").inc(stats.dram_bytes)
            reg.histogram("sim.bandwidth_gbs").observe(
                stats.bandwidth_gbs(machine.freq_ghz)
            )
        return stats


def run_spec(spec: ExperimentSpec) -> RunStats:
    """Simulate one cell through the shared memo and persistent cache.

    Every caller — bare single-cell runs, grid sweeps, the engine's
    serial path — funnels through this one cached entry point, so any
    result computed anywhere in the process (or stored on disk by a
    previous process) is reused everywhere.
    """
    cached = _MEMO.get(spec)
    if cached is not None:
        return cached
    stats = _cache_get_stats(spec)
    if stats is not None:
        _MEMO[spec] = stats
        return stats
    stats = compute_run(spec)
    _MEMO[spec] = stats
    _cache_put_stats(spec, stats)
    return stats


def seed_memo(spec: ExperimentSpec, stats: RunStats, persist: bool = False) -> None:
    """Install an externally computed result (engine workers, disk loads)."""
    _MEMO[spec] = stats
    if persist:
        _cache_put_stats(spec, stats)


def memo_contains(spec: ExperimentSpec) -> bool:
    """Whether a cell is already resident in the in-process memo."""
    return spec in _MEMO


def memo_size() -> int:
    """Number of cells resident in the in-process memo."""
    return len(_MEMO)


def clear_memo() -> None:
    """Drop every in-process cache (memo, profiles, plans).

    Benchmarks use this to measure genuinely cold runs; the persistent
    disk cache, if active, is untouched.
    """
    _MEMO.clear()
    _profile.cache_clear()
    _plan.cache_clear()
    _rewritten_execution.cache_clear()


# The historical stringly-typed five-positional-argument entry points
# (``profile_workload``/``plan_for``/``run_config``/``run_all_configs``)
# were deprecated when the ExperimentSpec API landed, tombstoned for two
# releases, and are now plain AttributeErrors.  The spec-first facade on
# :mod:`repro.api` is the only public surface.
