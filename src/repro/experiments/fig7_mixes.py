"""Figure 7 — 180 mixed workloads: throughput and traffic distributions.

For each machine, 180 random 4-application mixes are evaluated under
Soft.Pref.+NT and Hardware Pref. (baseline: the same mix with all
prefetching off).  The paper plots the *sorted* distribution of weighted
speedup (7a/7b) and off-chip traffic increase (7c/7d) and quotes summary
statistics: on AMD the software scheme improves throughput by 16 % on
average (HW: 6 %), is strictly better in all mixes, and peaks 24 % above
hardware prefetching; on Intel it is ~5 % better on average and wins
79 % of mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.experiments.mixes_common import MixOutcome, evaluate_mixes
from repro.experiments.tables import render_series, render_table
from repro.metrics.distribution import sorted_distribution
from repro.workloads.mixes import generate_mixes

__all__ = ["Fig7Result", "run_fig7", "render_fig7", "fig7_summary"]


@dataclass(frozen=True)
class Fig7Result:
    """Distributions and raw outcomes of the mixed-workload sweep."""

    machine: str
    n_mixes: int
    speedup: dict[str, np.ndarray]  # config -> sorted speedup-1 values
    traffic: dict[str, np.ndarray]  # config -> sorted traffic-increase values
    raw: dict[str, list[MixOutcome]]


@lru_cache(maxsize=16)
def run_fig7(
    machine_name: str,
    n_mixes: int = 180,
    scale: float = 1.0,
    vary_inputs: bool = False,
    configs: tuple[str, ...] = ("swnt", "hw"),
) -> Fig7Result:
    """Evaluate the mix sweep on one machine."""
    mixes = generate_mixes(count=n_mixes, vary_inputs=vary_inputs)
    outcomes = evaluate_mixes(
        mixes, machine_name, configs=("baseline", *configs), scale=scale
    )
    base = outcomes["baseline"]
    speedup: dict[str, np.ndarray] = {}
    traffic: dict[str, np.ndarray] = {}
    for config in configs:
        ws = [
            o.weighted_speedup_vs(b) - 1.0 for o, b in zip(outcomes[config], base)
        ]
        tr = [o.traffic_increase_vs(b) for o, b in zip(outcomes[config], base)]
        speedup[config] = sorted_distribution(ws, descending=True)
        traffic[config] = sorted_distribution(tr, descending=False)
    return Fig7Result(
        machine=machine_name,
        n_mixes=n_mixes,
        speedup=speedup,
        traffic=traffic,
        raw=outcomes,
    )


def fig7_summary(result: Fig7Result) -> dict[str, float]:
    """The headline statistics the paper quotes from Fig. 7."""
    base = result.raw["baseline"]
    sw = result.raw["swnt"]
    hw = result.raw["hw"]
    sw_ws = np.array([o.weighted_speedup_vs(b) for o, b in zip(sw, base)])
    hw_ws = np.array([o.weighted_speedup_vs(b) for o, b in zip(hw, base)])
    sw_tr = np.array([o.traffic_increase_vs(b) for o, b in zip(sw, base)])
    hw_tr = np.array([o.traffic_increase_vs(b) for o, b in zip(hw, base)])
    return {
        "sw_avg_speedup": float(sw_ws.mean() - 1.0),
        "hw_avg_speedup": float(hw_ws.mean() - 1.0),
        "sw_min_speedup": float(sw_ws.min() - 1.0),
        "sw_beats_hw_fraction": float(np.mean(sw_ws > hw_ws)),
        "sw_max_gain_over_hw": float((sw_ws / hw_ws).max() - 1.0),
        "sw_avg_gain_over_hw": float((sw_ws / hw_ws).mean() - 1.0),
        "hw_slowdown_fraction": float(np.mean(hw_ws < 1.0)),
        "sw_avg_traffic": float(sw_tr.mean()),
        "hw_avg_traffic": float(hw_tr.mean()),
        "sw_traffic_below_baseline_fraction": float(np.mean(sw_tr < 0.0)),
        "sw_traffic_always_better": float(np.mean(sw_tr < hw_tr)),
    }


def render_fig7(result: Fig7Result) -> str:
    """ASCII rendering of both distribution panels plus summary."""
    labels = {"swnt": "Soft Pref.+NT", "hw": "Hardware Pref."}
    parts = [
        render_series(
            {labels[c]: result.speedup[c].tolist() for c in result.speedup},
            title=f"Fig 7: Weighted speedup distribution — {result.machine} "
            f"({result.n_mixes} mixes, higher is better)",
        ),
        "",
        render_series(
            {labels[c]: result.traffic[c].tolist() for c in result.traffic},
            title=f"Fig 7: Off-chip traffic increase distribution — {result.machine} "
            "(lower is better)",
        ),
    ]
    summary = fig7_summary(result)
    rows = [(k, f"{v * 100:+.1f}%") for k, v in summary.items()]
    parts += ["", render_table(("statistic", "value"), rows, title="Summary")]
    return "\n".join(parts)
