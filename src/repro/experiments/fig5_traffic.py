"""Figure 5 — increase in data volume fetched from DRAM.

Per benchmark and machine, the change in off-chip bytes relative to the
no-prefetch baseline for each prefetching policy.  The paper's headline:
Soft.Pref.+NT cuts traffic 44 % (AMD) / 64 % (Intel) relative to
hardware prefetching, and goes *below* the baseline on streaming codes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ExperimentEngine, ExperimentSpec, current_engine
from repro.experiments.fig4_speedup import POLICIES, POLICY_LABELS
from repro.experiments.tables import render_table
from repro.metrics.traffic import traffic_increase, traffic_reduction_vs
from repro.workloads.spec2006 import ALL_SINGLE_CORE

__all__ = ["TrafficRow", "run_fig5", "render_fig5", "swnt_vs_hw_reduction"]


@dataclass(frozen=True)
class TrafficRow:
    """One benchmark's traffic changes on one machine."""

    benchmark: str
    machine: str
    increases: dict[str, float]  # policy -> fractional traffic change


def run_fig5(
    machine_name: str,
    benchmarks: tuple[str, ...] = ALL_SINGLE_CORE,
    scale: float = 1.0,
    engine: ExperimentEngine | None = None,
) -> list[TrafficRow]:
    """Traffic changes of all policies on one machine."""
    engine = engine or current_engine()
    results = engine.run_grid(
        benchmarks, (machine_name,), ("baseline", *POLICIES), scales=(scale,)
    )
    rows = []
    for name in benchmarks:
        cell = ExperimentSpec(name, machine_name, "baseline", "ref", scale)
        base = results[cell]
        increases = {
            p: traffic_increase(base, results[cell.with_config(p)])
            for p in POLICIES
        }
        rows.append(TrafficRow(name, machine_name, increases))
    return rows


def swnt_vs_hw_reduction(
    machine_name: str,
    benchmarks: tuple[str, ...] = ALL_SINGLE_CORE,
    scale: float = 1.0,
    engine: ExperimentEngine | None = None,
) -> float:
    """Average traffic reduction of Soft.Pref.+NT relative to HW pref.

    The paper reports 44 % on AMD and 64 % on Intel.
    """
    engine = engine or current_engine()
    results = engine.run_grid(
        benchmarks, (machine_name,), ("hw", "swnt"), scales=(scale,)
    )
    reductions = []
    for name in benchmarks:
        cell = ExperimentSpec(name, machine_name, "hw", "ref", scale)
        reductions.append(
            traffic_reduction_vs(results[cell], results[cell.with_config("swnt")])
        )
    return sum(reductions) / len(reductions)


def render_fig5(rows: list[TrafficRow]) -> str:
    machine = rows[0].machine if rows else "?"
    table_rows = [
        (r.benchmark, *(f"{r.increases[p] * 100:+.0f}%" for p in POLICIES))
        for r in rows
    ]
    avg = {
        p: sum(r.increases[p] for r in rows) / len(rows) for p in POLICIES
    }
    table_rows.append(("average", *(f"{avg[p] * 100:+.0f}%" for p in POLICIES)))
    return render_table(
        ("Benchmark", *(POLICY_LABELS[p] for p in POLICIES)),
        table_rows,
        title=f"Fig 5: Off-chip traffic increase over baseline — {machine}",
    )
