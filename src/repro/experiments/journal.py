"""Durable run journal (write-ahead log) for resumable experiment runs.

The engine survives *in-process* failures (retries, bisection, serial
fallback), but a killed process — SIGKILL, power cut, OOM reaper — used
to lose the whole batch: every result not yet persisted to the cache was
gone and the run had to start over.  The journal closes that gap.  A
journaled run appends one checksummed record to
``<runs_dir>/<run_id>/journal.jsonl`` for every dispatched batch and
every completed or failed cell, fsync'd before the engine moves on, so
the on-disk journal is always a consistent prefix of the run.  Replaying
it (``repro run --resume <run-id>`` / :func:`repro.api.resume_run`)
seeds the completed cells back into the runner memo and re-runs the
original spec list — only the cells the crash interrupted are
re-dispatched, and because the compute kernel is deterministic the final
results are bit-identical to an uninterrupted run.

File format (``repro-journal-v1``) — one record per line::

    <crc32-hex8> <canonical-json>\n

The CRC covers the canonical JSON bytes.  A record that fails its CRC
(or does not parse) is *tolerated*: a torn final line is the expected
signature of a killed writer and replay simply stops trusting the tail;
a corrupt interior line is skipped and counted.  Record types:

* ``run.start`` — run id, journal version, the full ordered spec list,
  the profiling rate and stats codec format (so replay refuses to seed
  results produced under an incompatible codec);
* ``batch.dispatch`` — the cell labels of one dispatched group
  (advisory: replay derives pending work from ``run.start`` minus the
  completed cells, so dispatch records need no fsync of their own);
* ``cell.done`` — one completed cell: its spec, the serialised
  :class:`~repro.cachesim.stats.RunStats` payload and how it resolved;
* ``cell.failed`` — one permanently failed cell (re-dispatched on
  resume);
* ``run.end`` — the run settled; a journal with this record replays to
  its final results without touching the engine.

Fault points: ``journal.partial_append`` (a ``corrupt`` fault tears the
record mid-line, modelling a crash between ``write`` and completing the
line) and ``disk.enospc`` (the append raises ``ENOSPC``); see
:mod:`repro.faults`.  Journal IO trouble never aborts a run — the
journal goes read-only, the failure is counted and logged, and the run
merely loses resumability for the affected cells.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import uuid
import zlib
from pathlib import Path

from repro import faults, obs
from repro.api import ExperimentSpec
from repro.core import serialization
from repro.errors import ExperimentError

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "RUNS_DIR_ENV",
    "JournalError",
    "JournalReplay",
    "RunJournal",
    "default_runs_dir",
    "list_runs",
    "new_run_id",
    "replay_journal",
]

JOURNAL_FORMAT = "repro-journal-v1"
JOURNAL_VERSION = 1

#: Environment variable overriding the default run-directory root.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

_LOG = obs.get_logger("repro.journal")


class JournalError(ExperimentError):
    """A run journal is missing, unreadable, or incompatible."""


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` if set, else ``./.repro-runs``."""
    env = os.environ.get(RUNS_DIR_ENV)
    return Path(env) if env else Path(".repro-runs")


def new_run_id() -> str:
    """A fresh, sortable run identifier (UTC timestamp + random suffix)."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def _encode(record: dict) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x " % crc + body + b"\n"


def _decode(line: bytes) -> dict | None:
    """Parse one journal line; ``None`` if the checksum or JSON is bad."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:].rstrip(b"\n")
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


def _spec_key(spec: ExperimentSpec) -> str:
    return json.dumps(spec.as_dict(), sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass
class JournalReplay:
    """Everything replaying one journal recovers.

    ``specs`` is the original ordered cell list; ``completed`` maps each
    journaled spec to its serialised stats payload; ``failed`` lists the
    cells recorded as permanently failed (resume re-dispatches them);
    ``finished`` is true iff ``run.end`` was journaled.  ``torn_tail``
    flags a final record that failed its checksum (the killed-writer
    signature); ``corrupt_records`` counts interior records that had to
    be skipped.
    """

    run_id: str
    specs: list[ExperimentSpec] = dataclasses.field(default_factory=list)
    completed: dict[ExperimentSpec, dict] = dataclasses.field(default_factory=dict)
    failed: list[ExperimentSpec] = dataclasses.field(default_factory=list)
    dispatched: int = 0
    finished: bool = False
    torn_tail: bool = False
    corrupt_records: int = 0
    records: int = 0

    @property
    def pending(self) -> list[ExperimentSpec]:
        """The cells the interrupted run still owes, in original order."""
        return [s for s in self.specs if s not in self.completed]


def replay_journal(path: str | Path, run_id: str = "?") -> JournalReplay:
    """Replay one journal file into a :class:`JournalReplay`.

    Raises :class:`JournalError` if the file is missing or its
    ``run.start`` record is absent/incompatible; *tolerates* torn and
    corrupt records (counted, never raised) so the journal of a killed
    writer always replays.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    replay = JournalReplay(run_id=run_id)
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for index, line in enumerate(lines):
        record = _decode(line)
        if record is None:
            if index == len(lines) - 1:
                replay.torn_tail = True
            else:
                replay.corrupt_records += 1
            continue
        replay.records += 1
        kind = record.get("type")
        if kind == "run.start":
            if record.get("format") != JOURNAL_FORMAT:
                raise JournalError(
                    f"journal {path} has format {record.get('format')!r}; "
                    f"this build reads {JOURNAL_FORMAT!r}"
                )
            if record.get("stats_format") != serialization.STATS_FORMAT:
                raise JournalError(
                    f"journal {path} carries stats format "
                    f"{record.get('stats_format')!r}; this build speaks "
                    f"{serialization.STATS_FORMAT!r} — results cannot be reused"
                )
            replay.run_id = record.get("run_id", run_id)
            try:
                replay.specs = [ExperimentSpec(**d) for d in record["specs"]]
            except (KeyError, TypeError, ExperimentError) as exc:
                raise JournalError(f"journal {path} has an unusable spec list: {exc}") from exc
        elif kind == "cell.done":
            try:
                spec = ExperimentSpec(**record["spec"])
            except (KeyError, TypeError, ExperimentError):
                replay.corrupt_records += 1
                continue
            payload = record.get("stats")
            if isinstance(payload, dict):
                replay.completed[spec] = payload
        elif kind == "cell.failed":
            try:
                replay.failed.append(ExperimentSpec(**record["spec"]))
            except (KeyError, TypeError, ExperimentError):
                replay.corrupt_records += 1
        elif kind == "batch.dispatch":
            replay.dispatched += 1
        elif kind == "run.end":
            replay.finished = True
    if not replay.specs:
        raise JournalError(f"journal {path} has no run.start record; nothing to resume")
    return replay


class RunJournal:
    """Append-only, checksummed, fsync'd journal of one experiment run.

    Create with :meth:`create` (new run) or :meth:`open` (resume).  The
    engine appends through :meth:`record_dispatch` / :meth:`record_cell`
    / :meth:`record_failure`; cells already journaled (seeded by a
    resume) are skipped, so a resumed journal stays duplicate-free.

    ``fsync=False`` trades durability for speed (tests, benchmarks
    measuring the fsync tax itself).  ``write_seconds`` accumulates the
    wall time of every append + fsync — the recovery-overhead benchmark
    gates it against total run time.
    """

    def __init__(self, run_dir: str | Path, run_id: str, fsync: bool = True) -> None:
        self.run_dir = Path(run_dir)
        self.run_id = run_id
        self.fsync = fsync
        self.path = self.run_dir / "journal.jsonl"
        self.done: set[ExperimentSpec] = set()
        self.appended = 0
        self.skipped = 0
        self.write_errors = 0
        self.write_seconds = 0.0
        self.broken = False
        self._handle = None
        self._torn = False

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        run_id: str | None = None,
        runs_dir: str | Path | None = None,
        fsync: bool = True,
    ) -> "RunJournal":
        """Start a fresh journal under ``<runs_dir>/<run_id>/``."""
        run_id = run_id or new_run_id()
        root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
        run_dir = root / run_id
        run_dir.mkdir(parents=True, exist_ok=True)
        journal = cls(run_dir, run_id, fsync=fsync)
        if journal.path.exists():
            raise JournalError(
                f"run {run_id!r} already has a journal at {journal.path}; "
                "resume it or pick another --run-id"
            )
        return journal

    @classmethod
    def open(
        cls,
        run_id: str,
        runs_dir: str | Path | None = None,
        fsync: bool = True,
    ) -> tuple["RunJournal", JournalReplay]:
        """Replay an existing run's journal and reopen it for appending."""
        root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
        path = root / run_id / "journal.jsonl"
        if not path.is_file():
            known = ", ".join(list_runs(root)) or "none"
            raise JournalError(f"no journal for run {run_id!r} under {root} (known runs: {known})")
        replay = replay_journal(path, run_id)
        journal = cls(root / run_id, run_id, fsync=fsync)
        journal.done = set(replay.completed)
        # A torn tail means the file may end mid-line; start the next
        # record on a fresh line so it stays parseable.
        journal._torn = replay.torn_tail
        return journal, replay

    # -- records --------------------------------------------------------

    def start(self, specs: list[ExperimentSpec], resumed_from: int = 0) -> None:
        """Journal the ``run.start`` record (skipped when resuming)."""
        if self.done or self.path.exists():
            return
        self._append(
            {
                "type": "run.start",
                "format": JOURNAL_FORMAT,
                "version": JOURNAL_VERSION,
                "run_id": self.run_id,
                "stats_format": serialization.STATS_FORMAT,
                "specs": [s.as_dict() for s in specs],
                "resumed_from": resumed_from,
            },
            durable=True,
        )

    def record_dispatch(self, specs, attempt: int = 1) -> None:
        """Journal one dispatched group (advisory; no fsync of its own)."""
        self._append(
            {
                "type": "batch.dispatch",
                "cells": [s.label() for s in specs],
                "attempt": attempt,
            },
            durable=False,
        )

    def record_cell(self, spec: ExperimentSpec, stats, source: str) -> None:
        """Journal one completed cell with its serialised result."""
        if spec in self.done:
            self.skipped += 1
            return
        self._append(
            {
                "type": "cell.done",
                "spec": spec.as_dict(),
                "source": source,
                "stats": serialization.stats_to_dict(stats),
            },
            durable=True,
        )
        self.done.add(spec)

    def record_failure(self, spec: ExperimentSpec, error: str, attempts: int) -> None:
        """Journal one permanently failed cell."""
        self._append(
            {
                "type": "cell.failed",
                "spec": spec.as_dict(),
                "error": error,
                "attempts": attempts,
            },
            durable=True,
        )

    def finish(self, cells: int, failed: int = 0) -> None:
        """Journal the ``run.end`` record: the run settled."""
        self._append(
            {"type": "run.end", "cells": cells, "failed": failed},
            durable=True,
        )

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    # -- plumbing -------------------------------------------------------

    def _append(self, record: dict, durable: bool) -> None:
        """Append one checksummed record; IO failure degrades, never raises.

        A journal that cannot be written (full disk, revoked permissions)
        goes read-only: the run continues, the loss is counted and logged
        once, and only resumability of the affected cells is forfeited.
        """
        if self.broken:
            self.write_errors += 1
            return
        started = time.perf_counter()
        try:
            if faults.ACTIVE:
                faults.check("disk.enospc", "journal")
            line = _encode(record)
            if self._torn:
                line = b"\n" + line
                self._torn = False
            if faults.ACTIVE and faults.should_corrupt(
                "journal.partial_append", record.get("type")
            ):
                line = line[: max(1, len(line) // 2)]
                self._torn = True
            handle = self._handle
            if handle is None:
                handle = self._handle = open(self.path, "ab")
            handle.write(line)
            handle.flush()
            if durable and self.fsync:
                os.fsync(handle.fileno())
        except OSError as exc:
            self.broken = True
            self.write_errors += 1
            _LOG.warning(
                "[journal] %s: append failed (%s); journal is now read-only — "
                "cells completed from here on will be recomputed on resume",
                self.run_id,
                exc,
            )
            if obs.enabled():
                obs.metrics().counter("journal.write_errors").inc()
        else:
            self.appended += 1
            if obs.enabled():
                obs.metrics().counter("journal.records").inc()
        finally:
            self.write_seconds += time.perf_counter() - started


def list_runs(runs_dir: str | Path | None = None) -> list[str]:
    """Run ids with a journal under ``runs_dir``, newest-id first."""
    root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    if not root.is_dir():
        return []
    return sorted(
        (p.name for p in root.iterdir() if (p / "journal.jsonl").is_file()),
        reverse=True,
    )
