"""Figure 10 — Fair-Speedup across the mixed workloads.

Harmonic-mean per-application speedup (normalised to the baseline mix),
averaged over the 180 mixes, for both machines and both input regimes
(original and different inputs).  The paper's bars show the software
scheme well above hardware prefetching in all four columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig7_mixes import Fig7Result
from repro.experiments.tables import render_table

__all__ = ["FairSpeedupCell", "fair_speedup_from", "render_fig10"]


@dataclass(frozen=True)
class FairSpeedupCell:
    """One bar of Fig. 10.

    The coordinated columns (``hwcoord_fs``/``hwrl_fs``) are filled in
    when the sweep was run with the corresponding configurations and
    rendered as extra bars — the repo's extension of the paper's figure
    to coordinated hardware prefetching.
    """

    machine: str
    inputs: str  # "orig" or "diff-in"
    sw_fs: float
    hw_fs: float
    hwcoord_fs: float | None = None
    hwrl_fs: float | None = None


def _mean_fs(result: Fig7Result, config: str) -> float | None:
    if config not in result.raw:
        return None
    base = result.raw["baseline"]
    return float(
        np.mean([o.fair_speedup_vs(b) for o, b in zip(result.raw[config], base)])
    )


def fair_speedup_from(result: Fig7Result, inputs_label: str) -> FairSpeedupCell:
    """Average Fair-Speedup of one mix sweep."""
    return FairSpeedupCell(
        machine=result.machine,
        inputs=inputs_label,
        sw_fs=_mean_fs(result, "swnt"),
        hw_fs=_mean_fs(result, "hw"),
        hwcoord_fs=_mean_fs(result, "hwcoord"),
        hwrl_fs=_mean_fs(result, "hwrl"),
    )


def render_fig10(cells: list[FairSpeedupCell]) -> str:
    coordinated = any(c.hwcoord_fs is not None or c.hwrl_fs is not None for c in cells)
    headers = ["machine/inputs", "Soft Pref.+NT", "Hardware Pref."]
    if coordinated:
        headers += ["HW+Coord", "HW+RL"]

    def fmt(value: float | None) -> str:
        return "-" if value is None else f"{value:.3f}"

    rows = []
    for c in cells:
        row = [f"{c.machine}/{c.inputs}", fmt(c.sw_fs), fmt(c.hw_fs)]
        if coordinated:
            row += [fmt(c.hwcoord_fs), fmt(c.hwrl_fs)]
        rows.append(tuple(row))
    return render_table(
        tuple(headers),
        rows,
        title="Fig 10: Fair-Speedup (normalised to baseline), average of mixes",
    )
