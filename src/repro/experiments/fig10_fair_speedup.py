"""Figure 10 — Fair-Speedup across the mixed workloads.

Harmonic-mean per-application speedup (normalised to the baseline mix),
averaged over the 180 mixes, for both machines and both input regimes
(original and different inputs).  The paper's bars show the software
scheme well above hardware prefetching in all four columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig7_mixes import Fig7Result
from repro.experiments.tables import render_table

__all__ = ["FairSpeedupCell", "fair_speedup_from", "render_fig10"]


@dataclass(frozen=True)
class FairSpeedupCell:
    """One bar of Fig. 10."""

    machine: str
    inputs: str  # "orig" or "diff-in"
    sw_fs: float
    hw_fs: float


def fair_speedup_from(result: Fig7Result, inputs_label: str) -> FairSpeedupCell:
    """Average Fair-Speedup of one mix sweep."""
    base = result.raw["baseline"]
    sw = np.mean(
        [o.fair_speedup_vs(b) for o, b in zip(result.raw["swnt"], base)]
    )
    hw = np.mean(
        [o.fair_speedup_vs(b) for o, b in zip(result.raw["hw"], base)]
    )
    return FairSpeedupCell(
        machine=result.machine, inputs=inputs_label, sw_fs=float(sw), hw_fs=float(hw)
    )


def render_fig10(cells: list[FairSpeedupCell]) -> str:
    rows = [
        (
            f"{c.machine}/{c.inputs}",
            f"{c.sw_fs:.3f}",
            f"{c.hw_fs:.3f}",
        )
        for c in cells
    ]
    return render_table(
        ("machine/inputs", "Soft Pref.+NT", "Hardware Pref."),
        rows,
        title="Fig 10: Fair-Speedup (normalised to baseline), average of mixes",
    )
