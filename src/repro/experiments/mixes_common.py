"""Shared machinery for the mixed-workload experiments (Figs. 7–11).

Builds per-application solo profiles (cached), solves each mix's
contention with :func:`repro.multicore.contention.solve_mix`, and
derives the paper's per-mix metrics.  All mixed-workload figures compare
each configuration's *mix* against the **baseline mix** (original
programs, hardware prefetching off), matching paper §VII-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.config import get_machine
from repro.api import ExperimentEngine, ExperimentSpec, current_engine
from repro.experiments.runner import profile_for, run_spec
from repro.metrics.throughput import fair_speedup, qos_degradation, weighted_speedup
from repro.multicore.contention import AppProfile, solve_mix
from repro.multicore.coordinator import Coordinator, HeuristicCoordinator, RLCoordinator
from repro.statstack.model import StatStackModel
from repro.statstack.mrc import PerPCMissRatios, default_size_grid
from repro.workloads.mixes import Mix

__all__ = [
    "MixOutcome",
    "app_profile",
    "coordinator_for",
    "evaluate_mix",
    "evaluate_mixes",
]

#: Configurations whose solo cells carry a hardware prefetcher whose
#: speculative stream a coordinator (or the static curve) can retire.
HW_CONFIGS = ("hw", "hwcoord", "hwrl")


@dataclass(frozen=True)
class MixOutcome:
    """One mix under one prefetching configuration."""

    mix_id: int
    config: str
    app_names: tuple[str, ...]
    cycles: tuple[float, ...]
    dram_lines: float

    def speedups_vs(self, baseline: "MixOutcome") -> list[float]:
        """Per-application speedups against the baseline mix."""
        return [b / c for b, c in zip(baseline.cycles, self.cycles)]

    def weighted_speedup_vs(self, baseline: "MixOutcome") -> float:
        return weighted_speedup(baseline.cycles, self.cycles)

    def fair_speedup_vs(self, baseline: "MixOutcome") -> float:
        return fair_speedup(baseline.cycles, self.cycles)

    def qos_vs(self, baseline: "MixOutcome") -> float:
        return qos_degradation(baseline.cycles, self.cycles)

    def traffic_increase_vs(self, baseline: "MixOutcome") -> float:
        if baseline.dram_lines <= 0:
            return 0.0
        return self.dram_lines / baseline.dram_lines - 1.0


@lru_cache(maxsize=1024)
def app_profile(
    name: str,
    machine_name: str,
    config: str,
    input_set: str = "ref",
    scale: float = 1.0,
) -> AppProfile:
    """Solo profile of one app under one config (cached)."""
    machine = get_machine(machine_name)
    cell = ExperimentSpec(name, machine_name, config, input_set, scale)
    stats = run_spec(cell)
    profile = profile_for(name, input_set, scale)
    throttleable = 0.0
    throttle_cost = 0.0
    if config in HW_CONFIGS:
        base = run_spec(cell.with_config("baseline"))
        base_lines = base.dram_fills + base.dram_writebacks
        hw_lines = stats.dram_fills + stats.dram_writebacks
        throttleable = max(0.0, hw_lines - base_lines)
        # Retiring the speculative stream gives back roughly half the
        # prefetcher's solo benefit (the easy streams stay covered).
        throttle_cost = 0.5 * max(0.0, base.cycles - stats.cycles)
    model = StatStackModel(profile.sampling.reuse, machine.line_bytes)
    grid = default_size_grid(min_bytes=64 * 1024, max_bytes=16 << 20, points_per_octave=2)
    mrc = PerPCMissRatios(model, machine, size_grid=grid).application_curve()
    transfers = stats.dram_fills + stats.dram_writebacks
    return AppProfile(
        name=name,
        cycles_alone=stats.cycles,
        dram_lines=transfers,
        llc_insert_lines=stats.llc_insertions,
        mlp=profile.execution.mlp,
        mrc=mrc,
        mr_full_llc=model.miss_ratio(machine.llc.size_bytes),
        # demand misses the core waited on, as a share of all transfers
        exposure=min(1.0, stats.llc.misses / max(1, transfers)),
        throttleable_lines=throttleable,
        throttle_cycle_cost=throttle_cost,
    )


def coordinator_for(config: str) -> Coordinator | None:
    """The coordination policy a mix-level configuration implies."""
    if config == "hwcoord":
        return HeuristicCoordinator()
    if config == "hwrl":
        return RLCoordinator.default()
    return None


def evaluate_mix(
    mix: Mix,
    machine_name: str,
    config: str,
    scale: float = 1.0,
) -> MixOutcome:
    """Solve one mix under one configuration."""
    machine = get_machine(machine_name)
    profiles = [
        app_profile(name, machine_name, config, input_set, scale)
        for name, input_set in zip(mix.members, mix.inputs)
    ]
    contended = solve_mix(machine, profiles, coordinator=coordinator_for(config))
    return MixOutcome(
        mix_id=mix.mix_id,
        config=config,
        app_names=mix.members,
        cycles=tuple(c.cycles for c in contended),
        dram_lines=sum(c.dram_lines for c in contended),
    )


def evaluate_mixes(
    mixes: list[Mix],
    machine_name: str,
    configs: tuple[str, ...] = ("baseline", "hw", "swnt"),
    scale: float = 1.0,
    engine: ExperimentEngine | None = None,
) -> dict[str, list[MixOutcome]]:
    """Solve every mix under every configuration.

    The solo runs behind every mix member are resolved up front through
    the experiment engine (parallel + persistent cache); the per-mix
    contention solve then reads them from the shared memo.
    """
    engine = engine or current_engine()
    members = sorted(
        {
            (name, input_set)
            for mix in mixes
            for name, input_set in zip(mix.members, mix.inputs)
        }
    )
    # Hardware-prefetch app profiles additionally need the baseline
    # solo run to size the throttleable stream (see :func:`app_profile`).
    needs_baseline = any(c in HW_CONFIGS for c in configs)
    cell_configs = tuple(dict.fromkeys(
        (*configs, *(("baseline",) if needs_baseline else ()))
    ))
    engine.run(
        ExperimentSpec(name, machine_name, config, input_set, scale)
        for name, input_set in members
        for config in cell_configs
    )
    return {
        config: [evaluate_mix(mix, machine_name, config, scale) for mix in mixes]
        for config in configs
    }
