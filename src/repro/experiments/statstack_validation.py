"""§IV validation — StatStack miss coverage vs functional simulation.

The paper compares StatStack (at 1/100k sampling) against a Pin-based
functional simulator and reports that the model identifies **88 %** of
all misses for a 64 kB 2-way L1 and **94 %** for a 512 kB L2, averaged
over the benchmarks.  Coverage is computed per instruction: for each PC,
the model can claim at most the number of misses the simulator observed
there — over-prediction elsewhere does not compensate for a missed
delinquent load::

    coverage = sum_pc min(model_misses_pc, sim_misses_pc) / sim_total
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.functional import FunctionalCacheSim
from repro.config import CacheConfig, get_machine
from repro.experiments.runner import profile_for
from repro.experiments.tables import render_table
from repro.statstack.model import StatStackModel
from repro.workloads.spec2006 import ALL_SINGLE_CORE

__all__ = ["ValidationRow", "validate_benchmark", "run_validation", "render_validation"]


@dataclass(frozen=True)
class ValidationRow:
    benchmark: str
    l1_coverage: float
    l2_coverage: float


def _model_coverage(
    model: StatStackModel,
    sim_stats,
    pc_refs: dict[int, int],
    cache_bytes: int,
) -> float:
    """Per-PC-capped fraction of simulated misses the model accounts for."""
    sim_total = sim_stats.total_misses()
    if sim_total == 0:
        return 1.0
    found = 0.0
    for pc, sim_misses in sim_stats.misses.items():
        refs = pc_refs.get(pc, 0)
        model_misses = model.pc_miss_ratio(pc, cache_bytes) * refs
        found += min(model_misses, sim_misses)
    return found / sim_total


def validate_benchmark(name: str, scale: float = 1.0) -> ValidationRow:
    """Model-vs-simulation coverage for one benchmark (64 kB and 512 kB)."""
    machine = get_machine("amd-phenom-ii")
    profile = profile_for(name, "ref", scale)
    trace = profile.execution.trace
    model = StatStackModel(profile.sampling.reuse, machine.line_bytes)

    demand = trace.demand_only()
    import numpy as np

    u, c = np.unique(demand.pc, return_counts=True)
    pc_refs = dict(zip(u.tolist(), c.tolist()))

    l1_sim = FunctionalCacheSim(machine.l1)
    l1_stats = l1_sim.run(trace)
    l2_sim = FunctionalCacheSim(CacheConfig("L2", 512 * 1024, ways=8))
    l2_stats = l2_sim.run(trace)

    return ValidationRow(
        benchmark=name,
        l1_coverage=_model_coverage(model, l1_stats, pc_refs, 64 * 1024),
        l2_coverage=_model_coverage(model, l2_stats, pc_refs, 512 * 1024),
    )


def run_validation(scale: float = 1.0) -> list[ValidationRow]:
    """Validate all benchmarks."""
    return [validate_benchmark(name, scale) for name in ALL_SINGLE_CORE]


def render_validation(rows: list[ValidationRow]) -> str:
    table_rows = [
        (r.benchmark, f"{r.l1_coverage * 100:.1f}%", f"{r.l2_coverage * 100:.1f}%")
        for r in rows
    ]
    table_rows.append(
        (
            "Average",
            f"{sum(r.l1_coverage for r in rows) / len(rows) * 100:.1f}%",
            f"{sum(r.l2_coverage for r in rows) / len(rows) * 100:.1f}%",
        )
    )
    return render_table(
        ("Benchmark", "L1 (64kB) cov.", "L2 (512kB) cov."),
        table_rows,
        title="StatStack miss coverage vs functional simulation (paper §IV: 88% / 94%)",
    )
