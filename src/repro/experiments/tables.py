"""ASCII rendering of experiment tables and figure series."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "pct", "gbs"]


def pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"


def gbs(value: float) -> str:
    """Format a bandwidth value."""
    return f"{value:.2f} GB/s"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a rule under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: dict[str, Sequence[float]],
    x_label: str = "runs",
    fmt: str = "{:+.1%}",
    points: int = 11,
    title: str | None = None,
) -> str:
    """Render sorted distribution series at evenly spaced percentiles.

    The textual analogue of the paper's Fig. 7/9 distribution plots:
    one row per percentile, one column per configuration.
    """
    names = list(series)
    lines = []
    if title:
        lines.append(title)
    header = f"{x_label:>6}  " + "  ".join(f"{n:>14}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for j in range(points):
        pct_x = j / (points - 1) if points > 1 else 0.0
        row = [f"{pct_x:6.0%}"]
        for name in names:
            values = series[name]
            idx = min(len(values) - 1, int(round(pct_x * (len(values) - 1))))
            row.append(f"{fmt.format(values[idx]):>14}")
        lines.append("  ".join(row))
    return "\n".join(lines)
