"""Figure 11 — QoS degradation across the mixed workloads.

Cumulative per-mix application slowdown (0 = no application ever slowed
down), averaged over the mixes, for both machines and input regimes.
The paper highlights that the software scheme degrades QoS far less than
hardware prefetching, and that its QoS *improves* under different inputs
(less-optimal prefetching perturbs resource sharing less).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig7_mixes import Fig7Result
from repro.experiments.tables import render_table

__all__ = ["QosCell", "qos_from", "render_fig11"]


@dataclass(frozen=True)
class QosCell:
    """One bar pair of Fig. 11.

    The coordinated columns (``hwcoord_qos``/``hwrl_qos``) are filled
    in when the sweep was run with the corresponding configurations —
    the repo's extension of the paper's figure to coordinated hardware
    prefetching.
    """

    machine: str
    inputs: str
    sw_qos: float
    hw_qos: float
    hwcoord_qos: float | None = None
    hwrl_qos: float | None = None


def _mean_qos(result: Fig7Result, config: str) -> float | None:
    if config not in result.raw:
        return None
    base = result.raw["baseline"]
    return float(np.mean([o.qos_vs(b) for o, b in zip(result.raw[config], base)]))


def qos_from(result: Fig7Result, inputs_label: str) -> QosCell:
    """Average QoS degradation of one mix sweep."""
    return QosCell(
        machine=result.machine,
        inputs=inputs_label,
        sw_qos=_mean_qos(result, "swnt"),
        hw_qos=_mean_qos(result, "hw"),
        hwcoord_qos=_mean_qos(result, "hwcoord"),
        hwrl_qos=_mean_qos(result, "hwrl"),
    )


def render_fig11(cells: list[QosCell]) -> str:
    coordinated = any(
        c.hwcoord_qos is not None or c.hwrl_qos is not None for c in cells
    )
    headers = ["machine/inputs", "Soft Pref.+NT", "Hardware Pref."]
    if coordinated:
        headers += ["HW+Coord", "HW+RL"]

    def fmt(value: float | None) -> str:
        return "-" if value is None else f"{value * 100:+.1f}%"

    rows = []
    for c in cells:
        row = [f"{c.machine}/{c.inputs}", fmt(c.sw_qos), fmt(c.hw_qos)]
        if coordinated:
            row += [fmt(c.hwcoord_qos), fmt(c.hwrl_qos)]
        rows.append(tuple(row))
    return render_table(
        tuple(headers),
        rows,
        title="Fig 11: QoS degradation (closer to zero is better), average of mixes",
    )
