"""Figure 11 — QoS degradation across the mixed workloads.

Cumulative per-mix application slowdown (0 = no application ever slowed
down), averaged over the mixes, for both machines and input regimes.
The paper highlights that the software scheme degrades QoS far less than
hardware prefetching, and that its QoS *improves* under different inputs
(less-optimal prefetching perturbs resource sharing less).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig7_mixes import Fig7Result
from repro.experiments.tables import render_table

__all__ = ["QosCell", "qos_from", "render_fig11"]


@dataclass(frozen=True)
class QosCell:
    """One bar pair of Fig. 11."""

    machine: str
    inputs: str
    sw_qos: float
    hw_qos: float


def qos_from(result: Fig7Result, inputs_label: str) -> QosCell:
    """Average QoS degradation of one mix sweep."""
    base = result.raw["baseline"]
    sw = np.mean([o.qos_vs(b) for o, b in zip(result.raw["swnt"], base)])
    hw = np.mean([o.qos_vs(b) for o, b in zip(result.raw["hw"], base)])
    return QosCell(
        machine=result.machine, inputs=inputs_label, sw_qos=float(sw), hw_qos=float(hw)
    )


def render_fig11(cells: list[QosCell]) -> str:
    rows = [
        (
            f"{c.machine}/{c.inputs}",
            f"{c.sw_qos * 100:+.1f}%",
            f"{c.hw_qos * 100:+.1f}%",
        )
        for c in cells
    ]
    return render_table(
        ("machine/inputs", "Soft Pref.+NT", "Hardware Pref."),
        rows,
        title="Fig 11: QoS degradation (closer to zero is better), average of mixes",
    )
