"""Parallel experiment engine.

The paper's evaluation is a grid of (workload × machine × config ×
input-set × scale) cells, and — as PPT-Multicore observes for
reuse-profile-driven models — the cells are embarrassingly parallel:
each one is a pure function of its :class:`~repro.api.ExperimentSpec`.
The engine exploits that twice over:

* **fan-out** — cold cells are grouped by profile (cells sharing a
  workload build/execution land in one task so profiling runs once per
  group) and dispatched over a :class:`~concurrent.futures.ProcessPoolExecutor`;
* **reuse** — before anything is dispatched, every cell is resolved
  against the in-process memo and, when enabled, the persistent
  :class:`~repro.cache.ResultCache`, so repeated figure regeneration is
  near-instant and different experiments share each other's cells.

Results are **identical** to a serial run: the compute kernel is
deterministic and workers return plain :class:`RunStats` that the parent
installs into the same memo the serial path uses.

The CLI configures one process-wide default engine via :func:`configure`
(``--jobs``, ``--cache-dir``, ``--no-cache``); experiment drivers pick
it up through :func:`current_engine` so library callers that never think
about engines transparently inherit the CLI's parallelism and cache.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.api import CONFIGS, ExperimentSpec
from repro.cache import ResultCache, default_cache_dir
from repro.cachesim.stats import RunStats
from repro.experiments import runner

__all__ = [
    "EngineStats",
    "ExperimentEngine",
    "configure",
    "current_engine",
    "reset_default_engine",
]

#: Environment variable providing the default worker count.
JOBS_ENV = "REPRO_JOBS"


def _default_jobs() -> int:
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


@dataclass
class EngineStats:
    """Cumulative accounting of every cell the engine resolved.

    ``memo_hits`` were free (already resident in-process), ``disk_hits``
    cost one JSON read, ``computed`` cost a full simulation.  They always
    sum to ``cells``.
    """

    cells: int = 0
    computed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    batches: int = 0
    wall_seconds: float = 0.0

    def merge_batch(
        self, computed: int, memo_hits: int, disk_hits: int, wall: float
    ) -> None:
        self.cells += computed + memo_hits + disk_hits
        self.computed += computed
        self.memo_hits += memo_hits
        self.disk_hits += disk_hits
        self.batches += 1
        self.wall_seconds += wall

    def format(self, jobs: int = 1, cache: ResultCache | None = None) -> str:
        """Human-readable summary line (the CLI prints this to stderr)."""
        parts = [
            f"{self.cells} cells",
            f"{self.computed} computed",
            f"{self.memo_hits} memo hits",
            f"{self.disk_hits} disk hits",
            f"{jobs} job{'s' if jobs != 1 else ''}",
            f"{self.wall_seconds:.2f}s",
        ]
        line = "engine: " + " | ".join(parts)
        if cache is not None:
            line += f"\n{cache.describe()}"
        return line


@dataclass
class _Batch:
    """Bookkeeping for one :meth:`ExperimentEngine.run` invocation."""

    total: int = 0
    done: int = 0
    computed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    started: float = field(default_factory=time.perf_counter)


def _compute_group(specs: tuple[ExperimentSpec, ...]) -> list[tuple[ExperimentSpec, RunStats]]:
    """Worker entry point: simulate one profile-sharing group of cells.

    Runs in a separate process; ``runner``'s in-process caches make the
    shared profiling pass and plans compute once per group.
    """
    return [(spec, runner.compute_run(spec)) for spec in specs]


class ExperimentEngine:
    """Resolves grids of experiment cells with parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker processes for cold cells.  ``1`` (default) computes
        serially in-process; higher values fan profile groups out over a
        process pool.  ``None`` reads ``$REPRO_JOBS`` (default 1).
    cache_dir:
        Directory of the persistent result cache.  ``None`` with
        ``use_cache=True`` selects :func:`repro.cache.default_cache_dir`.
    use_cache:
        Whether to read/write the persistent cache at all.
    progress:
        Per-cell progress reporting: ``True`` prints one line per cell to
        stderr, a callable receives ``(done, total, spec, source)`` with
        ``source`` in {"memo", "disk", "computed"}; ``None``/``False``
        disables reporting.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        use_cache: bool = False,
        progress: bool | Callable[[int, int, ExperimentSpec, str], None] | None = None,
    ) -> None:
        self.jobs = _default_jobs() if jobs is None else max(1, int(jobs))
        self.cache: ResultCache | None = None
        if use_cache:
            self.cache = ResultCache(cache_dir or default_cache_dir())
        self.progress = progress
        self.stats = EngineStats()

    # -- public API ----------------------------------------------------

    def run(
        self, specs: Iterable[ExperimentSpec]
    ) -> dict[ExperimentSpec, RunStats]:
        """Resolve every cell, in parallel where profitable.

        Returns a mapping from each distinct requested spec to its
        :class:`RunStats`; results are bit-identical to calling
        :func:`repro.experiments.runner.run_spec` serially.
        """
        ordered = list(dict.fromkeys(specs))
        batch = _Batch(total=len(ordered))
        results: dict[ExperimentSpec, RunStats] = {}
        cold: list[ExperimentSpec] = []

        previous_cache = runner.set_cache(self.cache)
        try:
            for spec in ordered:
                if runner.memo_contains(spec):
                    stats = runner.run_spec(spec)
                    results[spec] = stats
                    # A cell computed before the cache was active may be
                    # memo-only; make sure it reaches disk too.
                    if self.cache is not None and not self.cache.has_stats(
                        spec, runner.PROFILE_RATE
                    ):
                        self.cache.put_stats(spec, runner.PROFILE_RATE, stats)
                    batch.memo_hits += 1
                    self._report(batch, spec, "memo")
                    continue
                if self.cache is not None:
                    stats = self.cache.get_stats(spec, runner.PROFILE_RATE)
                    if stats is not None:
                        runner.seed_memo(spec, stats)
                        results[spec] = stats
                        batch.disk_hits += 1
                        self._report(batch, spec, "disk")
                        continue
                cold.append(spec)

            if cold:
                if self.jobs > 1:
                    self._run_parallel(cold, results, batch)
                else:
                    for spec in cold:
                        results[spec] = runner.run_spec(spec)
                        batch.computed += 1
                        self._report(batch, spec, "computed")
        finally:
            runner.set_cache(previous_cache)

        wall = time.perf_counter() - batch.started
        self.stats.merge_batch(
            batch.computed, batch.memo_hits, batch.disk_hits, wall
        )
        return results

    def run_grid(
        self,
        workloads: Sequence[str],
        machines: Sequence[str],
        configs: Sequence[str] = CONFIGS,
        input_sets: Sequence[str] = ("ref",),
        scales: Sequence[float] = (1.0,),
    ) -> dict[ExperimentSpec, RunStats]:
        """Convenience wrapper: build the cross product and run it."""
        return self.run(
            ExperimentSpec.grid(workloads, machines, configs, input_sets, scales)
        )

    def summary(self) -> str:
        """Cumulative cell/cache accounting across every batch so far."""
        return self.stats.format(jobs=self.jobs, cache=self.cache)

    # -- internals -----------------------------------------------------

    def _run_parallel(
        self,
        cold: list[ExperimentSpec],
        results: dict[ExperimentSpec, RunStats],
        batch: _Batch,
    ) -> None:
        """Fan profile-sharing groups of cold cells out over processes."""
        groups: dict[tuple, list[ExperimentSpec]] = {}
        for spec in cold:
            groups.setdefault(spec.profile_key, []).append(spec)
        group_list = [tuple(g) for g in groups.values()]

        if len(group_list) == 1:
            # One profile group gains nothing from a pool (the group is
            # the unit of dispatch); avoid the fork + pickle overhead.
            for spec in group_list[0]:
                results[spec] = runner.run_spec(spec)
                batch.computed += 1
                self._report(batch, spec, "computed")
            return

        workers = min(self.jobs, len(group_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_compute_group, g) for g in group_list}
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    for spec, stats in future.result():
                        runner.seed_memo(spec, stats, persist=True)
                        results[spec] = stats
                        batch.computed += 1
                        self._report(batch, spec, "computed")

    def _report(self, batch: _Batch, spec: ExperimentSpec, source: str) -> None:
        batch.done += 1
        if not self.progress:
            return
        if callable(self.progress):
            self.progress(batch.done, batch.total, spec, source)
            return
        print(
            f"[engine] {batch.done}/{batch.total} {spec.label()}: {source}",
            file=sys.stderr,
        )


# -- process-wide default engine ---------------------------------------

_DEFAULT_ENGINE: ExperimentEngine | None = None


def configure(
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = False,
    progress: bool | Callable[[int, int, ExperimentSpec, str], None] | None = None,
) -> ExperimentEngine:
    """Install and return the process-wide default engine.

    Called by the CLI (from ``--jobs`` / ``--cache-dir`` / ``--no-cache``)
    and by the benchmark harness; experiment drivers reach it through
    :func:`current_engine`.
    """
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = ExperimentEngine(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )
    return _DEFAULT_ENGINE


def current_engine() -> ExperimentEngine:
    """The default engine, creating a serial, cache-less one on demand."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Forget the default engine (tests and benchmark harness hygiene)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None
