"""Parallel, fault-tolerant experiment engine.

The paper's evaluation is a grid of (workload × machine × config ×
input-set × scale) cells, and — as PPT-Multicore observes for
reuse-profile-driven models — the cells are embarrassingly parallel:
each one is a pure function of its :class:`~repro.api.ExperimentSpec`.
The engine exploits that twice over:

* **fan-out** — cold cells are grouped by profile (cells sharing a
  workload build/execution land in one task so profiling runs once per
  group) and dispatched over a :class:`~concurrent.futures.ProcessPoolExecutor`;
* **reuse** — before anything is dispatched, every cell is resolved
  against the in-process memo and, when enabled, the persistent
  :class:`~repro.cache.ResultCache`, so repeated figure regeneration is
  near-instant and different experiments share each other's cells.

Results are **identical** to a serial run: the compute kernel is
deterministic and workers return plain :class:`RunStats` that the parent
installs into the same memo the serial path uses.

Long grids must also *survive partial failure*; the engine degrades
gracefully instead of discarding a batch:

* failed groups are retried under a :class:`~repro.retry.RetryPolicy`
  with **bisection** — a failing 8-cell group re-dispatches as two
  4-cell groups, down to the single poison cell, so one bad spec costs
  ``O(log n)`` extra dispatches instead of the whole batch;
* each dispatched group gets a **deadline** (``RetryPolicy.timeout``);
  a hung worker is abandoned (the pool is replaced) and its group is
  bisected like any other failure;
* a ``BrokenProcessPool`` (OOM-killed child, crashed fork) triggers
  automatic **fallback to in-process serial execution** for everything
  still outstanding — the engine never re-raises it;
* in ``strict`` mode (default) permanent failures raise
  :class:`~repro.errors.EngineError` carrying a :class:`FailureReport`;
  in best-effort mode (``strict=False``) :meth:`ExperimentEngine.run`
  returns the surviving cells and leaves the report on
  :attr:`ExperimentEngine.last_failures`;
* cache IO errors degrade to misses (recompute), never aborts.

Killed *processes* are survivable too, when a run journal is attached
(see :mod:`repro.experiments.journal`): every dispatched batch and every
completed or failed cell is appended to a checksummed, fsync'd JSONL
journal, so ``repro run --resume <run-id>`` / :func:`repro.api.resume_run`
replays the journal, skips the completed cells, and re-dispatches only
what the crash interrupted — with bit-identical final results.  A
journaled run also installs SIGINT/SIGTERM handlers that *drain*
in-flight work under a deadline, terminate the pool, flush the journal,
and raise :class:`~repro.errors.RunInterrupted` (CLI exit code 75) so
wrappers can auto-resume; a bare :class:`KeyboardInterrupt` mid-dispatch
still terminates the pool and leaves every already-journaled cell
recoverable.

The CLI configures one process-wide default engine via :func:`configure`
(``--jobs``, ``--cache-dir``, ``--no-cache``, ``--retries``,
``--cell-timeout``, ``--best-effort``); experiment drivers pick it up
through :func:`current_engine` so library callers that never think about
engines transparently inherit the CLI's parallelism, cache, and fault
tolerance.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro import faults, obs
from repro.api import CONFIGS, ExperimentSpec
from repro.cache import ResultCache, default_cache_dir
from repro.cachesim.options import SimOptions, get_default_options
from repro.cachesim.stats import RunStats
from repro.errors import CellFailure, EngineError, RunInterrupted
from repro.experiments import runner
from repro.experiments.journal import RunJournal, default_runs_dir
from repro.retry import RetryPolicy

__all__ = [
    "EngineStats",
    "ExperimentEngine",
    "FailureReport",
    "configure",
    "current_engine",
    "reset_default_engine",
]

#: Environment variable providing the default worker count.
JOBS_ENV = "REPRO_JOBS"

_LOG = obs.get_logger("repro.engine")


def _default_jobs() -> int:
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


@dataclass
class EngineStats:
    """Cumulative accounting of every cell the engine resolved.

    ``memo_hits`` were free (already resident in-process), ``disk_hits``
    cost one JSON read, ``computed`` cost a full simulation, ``failed``
    exhausted their retry budget.  The four always sum to ``cells``.
    ``retries`` counts extra dispatches (re-attempts and bisection
    splits); ``fallbacks`` counts pool abandonments (broken pool →
    serial, hung group → fresh pool); ``interrupted`` counts batches
    truncated by a shutdown signal or :class:`KeyboardInterrupt` (their
    resolved cells are still accounted — the four sources sum to
    ``cells``, which is then less than the batch's request).
    """

    cells: int = 0
    computed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    failed: int = 0
    retries: int = 0
    fallbacks: int = 0
    interrupted: int = 0
    batches: int = 0
    wall_seconds: float = 0.0

    def merge_batch(
        self,
        computed: int,
        memo_hits: int,
        disk_hits: int,
        wall: float,
        failed: int = 0,
        retries: int = 0,
        fallbacks: int = 0,
    ) -> None:
        self.cells += computed + memo_hits + disk_hits + failed
        self.computed += computed
        self.memo_hits += memo_hits
        self.disk_hits += disk_hits
        self.failed += failed
        self.retries += retries
        self.fallbacks += fallbacks
        self.batches += 1
        self.wall_seconds += wall

    def format(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        tracer: obs.Tracer | None = None,
    ) -> str:
        """Human-readable summary line (the CLI prints this to stderr).

        With a tracer (defaulting to the process-wide one when tracing
        is enabled) a per-phase wall-time breakdown is appended, built
        from the inclusive span totals of each pipeline stage.
        """
        parts = [
            f"{self.cells} cells",
            f"{self.computed} computed",
            f"{self.memo_hits} memo hits",
            f"{self.disk_hits} disk hits",
            f"{jobs} job{'s' if jobs != 1 else ''}",
            f"{self.wall_seconds:.2f}s",
        ]
        if self.failed:
            parts.insert(4, f"{self.failed} failed")
        if self.retries:
            parts.insert(-2, f"{self.retries} retries")
        if self.interrupted:
            parts.insert(-2, f"{self.interrupted} interrupted")
        line = "engine: " + " | ".join(parts)
        if tracer is None:
            tracer = obs.get_tracer()
        if tracer is not None:
            totals = tracer.phase_totals()
            if totals:
                line += "\nphases: " + " | ".join(
                    f"{phase} {seconds:.2f}s" for phase, seconds in totals.items()
                )
        if cache is not None:
            line += f"\n{cache.describe()}"
        return line


@dataclass
class FailureReport:
    """Structured account of every cell a batch lost permanently.

    ``failures`` holds one :class:`~repro.errors.CellFailure` per poison
    cell (spec, attempts, elapsed, cause); ``fallbacks`` counts pool
    abandonments the batch survived.  Truthy iff any cell failed.
    """

    failures: list[CellFailure] = field(default_factory=list)
    fallbacks: int = 0

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    def add(self, failure: CellFailure) -> None:
        self.failures.append(failure)

    def specs(self) -> list[ExperimentSpec]:
        """The poisoned specs, in failure order."""
        return [f.spec for f in self.failures]

    def format_table(self) -> str:
        """Per-cell failure table (the CLI prints this to stderr)."""
        from repro.experiments.tables import render_table

        rows = [
            (
                f.spec.label() if f.spec is not None else "?",
                f.attempts,
                f"{f.elapsed:.2f}s",
                type(f.cause).__name__ if f.cause is not None else "Timeout",
                str(f.cause) if f.cause is not None else str(f),
            )
            for f in self.failures
        ]
        return render_table(
            ("cell", "attempts", "elapsed", "error", "detail"),
            rows,
            title=f"{len(self.failures)} cell(s) failed permanently",
        )


@dataclass
class _Batch:
    """Bookkeeping for one :meth:`ExperimentEngine.run` invocation."""

    total: int = 0
    done: int = 0
    computed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    retries: int = 0
    bisections: int = 0
    started: float = field(default_factory=time.perf_counter)


@dataclass
class _Task:
    """One dispatched unit of work: a group of cells plus retry state."""

    specs: tuple[ExperimentSpec, ...]
    attempt: int = 1
    started: float = 0.0


def _compute_group(
    specs: tuple[ExperimentSpec, ...],
    trace: bool = False,
    deterministic: bool = False,
    sim_options: SimOptions | None = None,
) -> tuple[list[tuple[ExperimentSpec, RunStats]], list[dict], dict]:
    """Worker entry point: simulate one batch of grid cells.

    Runs in a separate process; ``runner``'s in-process caches make the
    shared profiling pass, the plans *and* the rewritten-program decode
    compute once per batch — cells differing only in configuration or
    simulation options reuse them all.  When the parent traces, the
    worker traces too and ships its finished spans and metrics snapshot
    back alongside the results — the parent ingests them so one Chrome
    trace shows every process's track.  The parent's simulation options
    ship the same way (spawn-based pools don't inherit them).
    """
    faults.mark_worker()
    if sim_options is not None:
        from repro.cachesim.options import set_default_options

        set_default_options(sim_options)
    if trace:
        tracer = obs.enable(deterministic=deterministic)
        tracer.clear()  # drop spans inherited from the parent via fork
        obs.metrics().reset()
    payload = [(spec, runner.compute_run(spec)) for spec in specs]
    if not trace:
        return payload, [], {}
    return payload, obs.drain_spans(), obs.metrics().snapshot()


class ExperimentEngine:
    """Resolves grids of experiment cells with parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker processes for cold cells.  ``1`` (default) computes
        serially in-process; higher values fan profile groups out over a
        process pool.  ``None`` reads ``$REPRO_JOBS`` (default 1).
    cache_dir:
        Directory of the persistent result cache.  ``None`` with
        ``use_cache=True`` selects :func:`repro.cache.default_cache_dir`.
    use_cache:
        Whether to read/write the persistent cache at all.
    progress:
        Per-cell progress reporting: ``True`` prints one line per cell to
        stderr, a callable receives ``(done, total, spec, source)`` with
        ``source`` in {"memo", "disk", "computed", "failed"};
        ``None``/``False`` disables reporting.
    retry:
        :class:`~repro.retry.RetryPolicy` bounding per-cell attempts,
        backoff, and the per-group deadline.  ``None`` uses the policy's
        defaults (3 attempts, no deadline).
    strict:
        ``True`` (default): permanent cell failures raise
        :class:`~repro.errors.EngineError` carrying the
        :class:`FailureReport`.  ``False``: :meth:`run` returns the
        surviving cells and leaves the report on :attr:`last_failures`.
    journal:
        Optional :class:`~repro.experiments.journal.RunJournal`.  When
        attached, every dispatched group and every resolved cell is
        journaled durably, and the run installs SIGINT/SIGTERM handlers
        for graceful, resumable shutdown (see :mod:`journal`).  Also
        assignable after construction (``engine.journal = …``).
    cache_quota:
        Size budget in bytes for the persistent cache; enforced with
        LRU eviction at engine start (``None`` — no limit).
    drain_seconds:
        How long a graceful shutdown waits for in-flight groups before
        terminating the pool.
    cache:
        A prebuilt :class:`~repro.cache.ResultCache` to use as-is
        (e.g. a per-tenant namespace view from the serve daemon).
        Mutually exclusive with ``cache_dir``/``use_cache``; the
        caller owns sweeping and quota enforcement.  Also assignable
        between batches (``engine.cache = …``) — the serve dispatcher
        swaps tenant views onto one engine this way.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        use_cache: bool = False,
        progress: bool | Callable[[int, int, ExperimentSpec, str], None] | None = None,
        retry: RetryPolicy | None = None,
        strict: bool = True,
        journal: RunJournal | None = None,
        cache_quota: int | None = None,
        drain_seconds: float = 5.0,
        cache: ResultCache | None = None,
    ) -> None:
        self.jobs = _default_jobs() if jobs is None else max(1, int(jobs))
        self.cache: ResultCache | None = None
        if cache is not None:
            if use_cache or cache_dir is not None:
                raise EngineError(
                    "pass either a prebuilt cache= or cache_dir=/use_cache=, "
                    "not both"
                )
            self.cache = cache
        elif use_cache:
            self.cache = ResultCache(
                cache_dir or default_cache_dir(), quota_bytes=cache_quota
            )
            # Reclaim temp files orphaned by killed writers of past runs
            # (cache entries, interrupted quarantine moves, journal
            # temps) and enforce the size budget, if one is set.
            self.cache.sweep_stale_tmp(runs_dir=default_runs_dir())
            self.cache.enforce_quota()
        self.progress = progress
        self.retry = retry if retry is not None else RetryPolicy()
        self.strict = strict
        self.journal = journal
        self.drain_seconds = drain_seconds
        self.stats = EngineStats()
        #: FailureReport of the most recent :meth:`run` (empty when the
        #: batch was clean).
        self.last_failures = FailureReport()
        #: Name of the signal a graceful shutdown is honouring, if any.
        self._shutdown_signal: str | None = None
        self._handlers_installed = False

    # -- public API ----------------------------------------------------

    def run(
        self, specs: Iterable[ExperimentSpec]
    ) -> dict[ExperimentSpec, RunStats]:
        """Resolve every cell, in parallel where profitable.

        Returns a mapping from each distinct requested spec to its
        :class:`RunStats`; results are bit-identical to calling
        :func:`repro.experiments.runner.run_spec` serially.  In strict
        mode permanent cell failures raise
        :class:`~repro.errors.EngineError`; in best-effort mode failed
        cells are simply absent from the mapping and described by
        :attr:`last_failures`.
        """
        results, report = self.run_with_report(specs)
        if report and self.strict:
            raise EngineError(
                f"{len(report)} of {len(results) + len(report)} cells failed "
                "permanently",
                report=report,
            )
        return results

    def run_with_report(
        self, specs: Iterable[ExperimentSpec]
    ) -> tuple[dict[ExperimentSpec, RunStats], FailureReport]:
        """Resolve every cell; never raises for per-cell failures.

        Returns ``(results, report)``: the surviving cells and the
        structured account of permanent failures (empty when clean).
        """
        ordered = list(dict.fromkeys(specs))
        batch = _Batch(total=len(ordered))
        results: dict[ExperimentSpec, RunStats] = {}
        report = FailureReport()
        self.last_failures = report
        cold: list[ExperimentSpec] = []

        previous_cache = runner.set_cache(self.cache)
        previous_handlers = self._install_signal_handlers()
        if self.journal is not None:
            self.journal.start(ordered)
        batch_span = obs.span("engine.batch", cells=len(ordered), jobs=self.jobs)
        batch_span.__enter__()
        try:
            for spec in ordered:
                if runner.memo_contains(spec):
                    stats = runner.run_spec(spec)
                    results[spec] = stats
                    # A cell computed before the cache was active may be
                    # memo-only; make sure it reaches disk too.
                    if self.cache is not None and not self._cache_has(spec):
                        self._cache_put(spec, stats)
                    batch.memo_hits += 1
                    self._report(batch, spec, "memo", stats)
                    continue
                if self.cache is not None:
                    stats = self._cache_get(spec)
                    if stats is not None:
                        runner.seed_memo(spec, stats)
                        results[spec] = stats
                        batch.disk_hits += 1
                        self._report(batch, spec, "disk", stats)
                        continue
                cold.append(spec)

            if cold:
                self._run_cold(cold, results, batch, report)
        except (RunInterrupted, KeyboardInterrupt):
            # The batch was truncated; everything resolved so far is
            # journaled and accounted, the rest resumes from the journal.
            self.stats.interrupted += 1
            raise
        finally:
            # Account the batch even when resolution raises mid-way, so
            # partial batches still appear in summary().
            runner.set_cache(previous_cache)
            self._restore_signal_handlers(previous_handlers)
            wall = time.perf_counter() - batch.started
            self.stats.merge_batch(
                batch.computed,
                batch.memo_hits,
                batch.disk_hits,
                wall,
                failed=len(report),
                retries=batch.retries,
                fallbacks=report.fallbacks,
            )
            batch_span.set(
                computed=batch.computed,
                memo_hits=batch.memo_hits,
                disk_hits=batch.disk_hits,
                failed=len(report),
                retries=batch.retries,
            )
            batch_span.__exit__(None, None, None)
            if obs.enabled():
                reg = obs.metrics()
                reg.counter("engine.cells").inc(batch.done)
                reg.counter("engine.cells.computed").inc(batch.computed)
                reg.counter("engine.cache.memo_hits").inc(batch.memo_hits)
                reg.counter("engine.cache.disk_hits").inc(batch.disk_hits)
                reg.counter("engine.cells.failed").inc(len(report))
                reg.counter("engine.retries").inc(batch.retries)
                reg.counter("engine.bisections").inc(batch.bisections)
                reg.counter("engine.fallbacks").inc(report.fallbacks)
                reg.gauge("engine.workers").set(self.jobs)
                if wall > 0:
                    reg.gauge("engine.cells_per_sec").set(batch.done / wall)
        return results, report

    def run_grid(
        self,
        workloads: Sequence[str],
        machines: Sequence[str],
        configs: Sequence[str] = CONFIGS,
        input_sets: Sequence[str] = ("ref",),
        scales: Sequence[float] = (1.0,),
    ) -> dict[ExperimentSpec, RunStats]:
        """Convenience wrapper: build the cross product and run it."""
        return self.run(
            ExperimentSpec.grid(workloads, machines, configs, input_sets, scales)
        )

    def summary(self) -> str:
        """Cumulative cell/cache accounting across every batch so far."""
        return self.stats.format(jobs=self.jobs, cache=self.cache)

    # -- graceful shutdown ----------------------------------------------

    # A journaled run owns SIGINT/SIGTERM for its duration: the first
    # signal requests a drain (finish in-flight groups under
    # ``drain_seconds``, journal them, terminate the pool, raise
    # RunInterrupted); a second signal restores the default disposition
    # so a third kills the process the ordinary way.

    def _install_signal_handlers(self):
        if self.journal is None:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None  # signal.signal is main-thread-only

        def _handler(signum, frame):
            if self._shutdown_signal is not None:
                for sig, previous in (previous_handlers or {}).items():
                    signal.signal(sig, previous)
                return
            self._shutdown_signal = signal.Signals(signum).name
            _LOG.warning(
                "[engine] %s received; draining in-flight work "
                "(signal again to force)",
                self._shutdown_signal,
            )

        previous_handlers = {}
        self._shutdown_signal = None
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous_handlers[sig] = signal.signal(sig, _handler)
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
        self._handlers_installed = bool(previous_handlers)
        return previous_handlers

    def _restore_signal_handlers(self, previous_handlers) -> None:
        if not previous_handlers:
            return
        for sig, previous in previous_handlers.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._handlers_installed = False

    def _interrupted(self, batch: _Batch) -> RunInterrupted:
        self._flush_journal()
        run_id = self.journal.run_id if self.journal is not None else None
        if obs.enabled():
            obs.metrics().counter("engine.shutdown.interrupted").inc()
        return RunInterrupted(
            f"run interrupted by {self._shutdown_signal} after "
            f"{batch.done}/{batch.total} cells"
            + (f"; resume with --resume {run_id}" if run_id else ""),
            run_id=run_id,
            done=batch.done,
            total=batch.total,
        )

    def _flush_journal(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # -- journal hooks --------------------------------------------------

    def _journal_cell(self, spec: ExperimentSpec, stats: RunStats | None, source: str) -> None:
        if self.journal is None or stats is None or source == "failed":
            return
        with obs.span("journal.append", cell=spec.label()):
            self.journal.record_cell(spec, stats, source)

    def _journal_failure(self, failure: CellFailure) -> None:
        if self.journal is None or failure.spec is None:
            return
        self.journal.record_failure(
            failure.spec, str(failure.cause or failure), failure.attempts
        )

    def _journal_dispatch(self, specs: Sequence[ExperimentSpec], attempt: int) -> None:
        if self.journal is not None:
            self.journal.record_dispatch(specs, attempt)

    # -- cache guards ---------------------------------------------------

    # The persistent cache is an optimisation; IO trouble (corrupt entry,
    # full disk, injected fault) must degrade to a miss or a skipped
    # store, never abort a batch.

    def _cache_get(self, spec: ExperimentSpec) -> RunStats | None:
        with obs.span("engine.cache.get", cell=spec.label()):
            try:
                return self.cache.get_stats(spec, runner.PROFILE_RATE)
            except Exception:
                return None

    def _cache_has(self, spec: ExperimentSpec) -> bool:
        try:
            return self.cache.has_stats(spec, runner.PROFILE_RATE)
        except Exception:
            return True  # don't try to re-persist through a failing cache

    def _cache_put(self, spec: ExperimentSpec, stats: RunStats) -> None:
        with obs.span("engine.cache.put", cell=spec.label()):
            try:
                self.cache.put_stats(spec, runner.PROFILE_RATE, stats)
            except Exception:
                pass

    # -- internals -----------------------------------------------------

    def _run_cold(
        self,
        cold: list[ExperimentSpec],
        results: dict[ExperimentSpec, RunStats],
        batch: _Batch,
        report: FailureReport,
    ) -> None:
        """Compute the cells no cache could serve, tolerating failures."""
        groups: dict[tuple, list[ExperimentSpec]] = {}
        for spec in cold:
            groups.setdefault(spec.profile_key, []).append(spec)
        group_list = [tuple(g) for g in groups.values()]

        if self.jobs > 1 and len(group_list) > 1:
            self._run_parallel(group_list, results, batch, report)
        else:
            # One profile group gains nothing from a pool (the group is
            # the unit of dispatch); avoid the fork + pickle overhead.
            for group in group_list:
                self._run_serial_group(group, results, batch, report)

    def _run_serial_group(
        self,
        specs: Sequence[ExperimentSpec],
        results: dict[ExperimentSpec, RunStats],
        batch: _Batch,
        report: FailureReport,
    ) -> None:
        """In-process execution with per-cell retries (no group ambiguity,
        so failures need no bisection; deadlines cannot be enforced)."""
        self._journal_dispatch(specs, attempt=1)
        for spec in specs:
            if self._shutdown_signal is not None:
                raise self._interrupted(batch)
            attempt = 0
            while True:
                attempt += 1
                started = time.perf_counter()
                try:
                    with obs.span("engine.cell", cell=spec.label(), attempt=attempt):
                        stats = runner.run_spec(spec)
                except Exception as exc:
                    elapsed = time.perf_counter() - started
                    if self.retry.retriable(attempt):
                        batch.retries += 1
                        _sleep(self.retry.delay(attempt, spec.label()))
                        continue
                    failure = CellFailure(
                        f"cell {spec.label()} failed after {attempt} "
                        f"attempt(s): {exc}",
                        spec=spec,
                        attempts=attempt,
                        elapsed=elapsed,
                        cause=exc,
                    )
                    report.add(failure)
                    self._journal_failure(failure)
                    self._report(batch, spec, "failed")
                    break
                results[spec] = stats
                batch.computed += 1
                self._report(batch, spec, "computed", stats)
                break

    def _run_parallel(
        self,
        group_list: list[tuple[ExperimentSpec, ...]],
        results: dict[ExperimentSpec, RunStats],
        batch: _Batch,
        report: FailureReport,
    ) -> None:
        """Fan profile-sharing groups out over processes, with deadlines,
        retry-by-bisection, and serial fallback on a broken pool."""
        workers = min(self.jobs, len(group_list))
        queue: deque[_Task] = deque(_Task(g) for g in group_list)
        pending: dict[Future, _Task] = {}
        pool: ProcessPoolExecutor | None = ProcessPoolExecutor(max_workers=workers)
        deadline = self.retry.timeout
        tracing = obs.enabled()
        deterministic = tracing and obs.get_tracer().deterministic
        sim_options = get_default_options()
        dispatch_span = obs.span(
            "engine.dispatch", groups=len(group_list), workers=workers
        )
        dispatch_span.__enter__()
        try:
            while queue or pending:
                if self._shutdown_signal is not None:
                    # Graceful shutdown: give in-flight groups a drain
                    # deadline, journal whatever they finish, terminate
                    # the rest, and surface the resumable interruption.
                    self._drain_pending(pending, results, batch, tracing)
                    _abandon_pool(pool)
                    pool = None
                    raise self._interrupted(batch)
                while queue and pool is not None:
                    task = queue.popleft()
                    task.started = time.perf_counter()
                    self._journal_dispatch(task.specs, task.attempt)
                    pending[
                        pool.submit(
                            _compute_group,
                            task.specs,
                            tracing,
                            deterministic,
                            sim_options,
                        )
                    ] = task

                wait_timeout = None
                if deadline is not None and pending:
                    now = time.perf_counter()
                    earliest = min(t.started + deadline for t in pending.values())
                    wait_timeout = max(0.0, earliest - now)
                if self._handlers_installed:
                    # Signals only set a flag; bound the wait so a
                    # drain request is noticed promptly even when no
                    # future completes for a while.
                    wait_timeout = min(wait_timeout or 0.5, 0.5)
                with obs.span("engine.wait", pending=len(pending)):
                    done, _ = wait(
                        set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED
                    )

                if not done:
                    if deadline is not None:
                        pool = self._expire_hung_groups(
                            pool, pending, queue, batch, report, workers
                        )
                    continue

                broken = False
                for future in done:
                    task = pending.pop(future)
                    try:
                        payload, spans, worker_metrics = future.result()
                    except BrokenProcessPool:
                        broken = True
                        queue.append(task)
                    except Exception as exc:
                        self._bisect_or_fail(task, exc, queue, batch, report)
                    else:
                        self._install_payload(
                            payload, spans, worker_metrics, tracing, results, batch
                        )

                if broken:
                    # The pool is unusable and every in-flight future is
                    # lost with it; finish everything outstanding
                    # in-process instead of aborting the batch.
                    report.fallbacks += 1
                    queue.extend(pending.values())
                    pending.clear()
                    _abandon_pool(pool)
                    pool = None
                    while queue:
                        self._run_serial_group(
                            queue.popleft().specs, results, batch, report
                        )
        except KeyboardInterrupt:
            # Ctrl-C without installed handlers (non-journaled run, or a
            # second impatient signal): terminate the pool so no orphan
            # workers linger, flush what the journal has, and propagate.
            if pool is not None:
                _abandon_pool(pool)
                pool = None
            pending.clear()
            self._flush_journal()
            raise
        finally:
            dispatch_span.__exit__(None, None, None)
            if pool is not None:
                if pending:
                    # An exception escaped with work in flight (possibly
                    # hung); don't block on it.
                    _abandon_pool(pool)
                else:
                    pool.shutdown(wait=True, cancel_futures=True)

    def _install_payload(
        self,
        payload: list[tuple[ExperimentSpec, RunStats]],
        spans: list[dict],
        worker_metrics: dict,
        tracing: bool,
        results: dict[ExperimentSpec, RunStats],
        batch: _Batch,
    ) -> None:
        """Absorb one worker future's results into memo/cache/journal."""
        if tracing:
            if spans:
                obs.get_tracer().ingest(spans)
            if worker_metrics:
                obs.metrics().merge(worker_metrics)
        for spec, stats in payload:
            runner.seed_memo(spec, stats, persist=True)
            results[spec] = stats
            batch.computed += 1
            self._report(batch, spec, "computed", stats)

    def _drain_pending(
        self,
        pending: dict[Future, _Task],
        results: dict[ExperimentSpec, RunStats],
        batch: _Batch,
        tracing: bool,
    ) -> None:
        """Give in-flight futures ``drain_seconds`` to finish, absorb the
        finishers (journaled like any completion), drop the rest — they
        re-dispatch deterministically on resume."""
        if not pending:
            return
        done, _ = wait(set(pending), timeout=max(0.0, self.drain_seconds))
        drained = 0
        for future in done:
            pending.pop(future)
            try:
                payload, spans, worker_metrics = future.result()
            except Exception:
                continue  # failed mid-shutdown: resume recomputes it
            self._install_payload(payload, spans, worker_metrics, tracing, results, batch)
            drained += 1
        if obs.enabled():
            reg = obs.metrics()
            reg.counter("engine.shutdown.drained_groups").inc(drained)
            reg.counter("engine.shutdown.dropped_groups").inc(len(pending))
        pending.clear()

    def _expire_hung_groups(
        self,
        pool: ProcessPoolExecutor,
        pending: dict[Future, _Task],
        queue: deque[_Task],
        batch: _Batch,
        report: FailureReport,
        workers: int,
    ) -> ProcessPoolExecutor:
        """Handle a deadline expiry: abandon the pool (hung workers can't
        be interrupted), bisect the expired groups, requeue the rest."""
        deadline = self.retry.timeout
        now = time.perf_counter()
        expired = [t for t in pending.values() if now - t.started >= deadline]
        if not expired:
            return pool  # spurious wake-up; deadlines recomputed next loop
        survivors = [t for t in pending.values() if now - t.started < deadline]
        pending.clear()
        report.fallbacks += 1
        _abandon_pool(pool)
        # Innocent in-flight groups lost with the pool rerun at the same
        # attempt; the expired ones count a failed attempt.
        queue.extend(survivors)
        for task in expired:
            timeout_exc = TimeoutError(
                f"group of {len(task.specs)} cell(s) exceeded the "
                f"{deadline:g}s deadline"
            )
            self._bisect_or_fail(task, timeout_exc, queue, batch, report)
        return ProcessPoolExecutor(max_workers=workers)

    def _bisect_or_fail(
        self,
        task: _Task,
        exc: BaseException,
        queue: deque[_Task],
        batch: _Batch,
        report: FailureReport,
    ) -> None:
        """Retry a failed group: split multi-cell groups to isolate the
        poison cell, re-attempt singles up to the retry budget."""
        specs = task.specs
        if len(specs) > 1:
            mid = len(specs) // 2
            batch.retries += 1
            batch.bisections += 1
            with obs.span(
                "engine.bisect", cells=len(specs), error=type(exc).__name__
            ):
                queue.append(_Task(specs[:mid], attempt=task.attempt))
                queue.append(_Task(specs[mid:], attempt=task.attempt))
            return
        spec = specs[0]
        elapsed = time.perf_counter() - task.started if task.started else 0.0
        if self.retry.retriable(task.attempt):
            batch.retries += 1
            _sleep(self.retry.delay(task.attempt, spec.label()))
            queue.append(_Task(specs, attempt=task.attempt + 1))
            return
        failure = CellFailure(
            f"cell {spec.label()} failed after {task.attempt} "
            f"attempt(s): {exc}",
            spec=spec,
            attempts=task.attempt,
            elapsed=elapsed,
            cause=None if isinstance(exc, TimeoutError) else exc,
        )
        report.add(failure)
        self._journal_failure(failure)
        self._report(batch, spec, "failed")

    def _report(
        self,
        batch: _Batch,
        spec: ExperimentSpec,
        source: str,
        stats: RunStats | None = None,
    ) -> None:
        self._journal_cell(spec, stats, source)
        batch.done += 1
        if not self.progress:
            return
        if callable(self.progress):
            self.progress(batch.done, batch.total, spec, source)
            return
        # Diagnostics go through the logging tree (stderr), never stdout:
        # rendered tables and JSON exports must stay machine-parseable.
        _LOG.info(
            "[engine] %d/%d %s: %s", batch.done, batch.total, spec.label(), source
        )


def _sleep(seconds: float) -> None:
    if seconds > 0:
        time.sleep(seconds)


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a (possibly hung or broken) pool down without waiting.

    Hung workers cannot be interrupted cooperatively, so after the
    non-blocking shutdown their processes are terminated best-effort —
    otherwise an abandoned sleeper would delay interpreter exit.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass


# -- process-wide default engine ---------------------------------------

_DEFAULT_ENGINE: ExperimentEngine | None = None


def configure(
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = False,
    progress: bool | Callable[[int, int, ExperimentSpec, str], None] | None = None,
    retry: RetryPolicy | None = None,
    strict: bool = True,
    journal: RunJournal | None = None,
    cache_quota: int | None = None,
) -> ExperimentEngine:
    """Install and return the process-wide default engine.

    Called by the CLI (from ``--jobs`` / ``--cache-dir`` / ``--no-cache``
    / ``--retries`` / ``--cell-timeout`` / ``--best-effort`` /
    ``--cache-quota``) and by the benchmark harness; experiment drivers
    reach it through :func:`current_engine`.
    """
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = ExperimentEngine(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
        retry=retry,
        strict=strict,
        journal=journal,
        cache_quota=cache_quota,
    )
    return _DEFAULT_ENGINE


def current_engine() -> ExperimentEngine:
    """The default engine, creating a serial, cache-less one on demand."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Forget the default engine (tests and benchmark harness hygiene)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None
