"""Figure 6 — average off-chip bandwidth (GB/s) per benchmark.

The paper plots Baseline, Hardware Pref., Soft.Pref.+NT and
Stride-centric (plain software prefetching tracks the NT variant and is
omitted, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import get_machine
from repro.api import ExperimentEngine, ExperimentSpec, current_engine
from repro.experiments.tables import render_table
from repro.workloads.spec2006 import ALL_SINGLE_CORE

__all__ = ["BandwidthRow", "run_fig6", "render_fig6", "FIG6_CONFIGS"]

FIG6_CONFIGS = ("baseline", "hw", "swnt", "stride")
FIG6_LABELS = {
    "baseline": "Baseline",
    "hw": "Hardware Pref.",
    "swnt": "Soft.Pref.+NT",
    "stride": "Stride-centric",
}


@dataclass(frozen=True)
class BandwidthRow:
    """One benchmark's average bandwidth per configuration (GB/s)."""

    benchmark: str
    machine: str
    bandwidth: dict[str, float]


def run_fig6(
    machine_name: str,
    benchmarks: tuple[str, ...] = ALL_SINGLE_CORE,
    scale: float = 1.0,
    engine: ExperimentEngine | None = None,
) -> list[BandwidthRow]:
    """Average bandwidth of each configuration on one machine."""
    machine = get_machine(machine_name)
    engine = engine or current_engine()
    results = engine.run_grid(
        benchmarks, (machine_name,), FIG6_CONFIGS, scales=(scale,)
    )
    rows = []
    for name in benchmarks:
        cell = ExperimentSpec(name, machine_name, "baseline", "ref", scale)
        bw = {
            c: results[cell.with_config(c)].bandwidth_gbs(machine.freq_ghz)
            for c in FIG6_CONFIGS
        }
        rows.append(BandwidthRow(name, machine_name, bw))
    return rows


def swnt_vs_hw_bandwidth_reduction(rows: list[BandwidthRow]) -> float:
    """Average bandwidth saving of Soft.Pref.+NT vs hardware prefetching.

    Paper: 19 % on AMD, 38 % on Intel.
    """
    savings = [1.0 - r.bandwidth["swnt"] / r.bandwidth["hw"] for r in rows]
    return sum(savings) / len(savings)


def render_fig6(rows: list[BandwidthRow]) -> str:
    machine = rows[0].machine if rows else "?"
    table_rows = [
        (r.benchmark, *(f"{r.bandwidth[c]:.2f}" for c in FIG6_CONFIGS))
        for r in rows
    ]
    avg = {
        c: sum(r.bandwidth[c] for r in rows) / len(rows) for c in FIG6_CONFIGS
    }
    table_rows.append(("average", *(f"{avg[c]:.2f}" for c in FIG6_CONFIGS)))
    return render_table(
        ("Benchmark", *(FIG6_LABELS[c] for c in FIG6_CONFIGS)),
        table_rows,
        title=f"Fig 6: Average off-chip bandwidth (GB/s) — {machine}",
    )
