"""Figure 12 — multi-threaded workloads at 1, 2 and 4 threads.

Four parallel benchmarks on the Intel machine: swim* and cg* (the
highest-bandwidth programs of the SPEC OMP / NAS suites) plus fma3d and
dc.  Speedups are relative to the single-threaded no-prefetch baseline.
The paper's conclusion: software prefetching only gains over the
hardware prefetcher when threads saturate bandwidth (cg at 14 GB/s of a
15.6 GB/s machine); elsewhere they are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import get_machine
from repro.core.pipeline import PrefetchOptimizer
from repro.experiments.runner import hw_prefetcher_for
from repro.experiments.tables import render_table
from repro.isa.interpreter import execute_program
from repro.isa.rewriter import insert_prefetches
from repro.multicore.simulator import CoreSpec, MulticoreSimulator
from repro.sampling.sampler import RuntimeSampler
from repro.workloads.base import workload_seed
from repro.workloads.parallel import PARALLEL_BENCHMARKS, get_parallel_workload

__all__ = ["Fig12Cell", "run_fig12", "render_fig12", "FIG12_BENCHMARKS"]

FIG12_BENCHMARKS = tuple(spec.name for spec in PARALLEL_BENCHMARKS)


@dataclass(frozen=True)
class Fig12Cell:
    """One benchmark at one thread count."""

    benchmark: str
    threads: int
    speedup: dict[str, float]  # config -> speedup over 1-thread baseline
    bandwidth: dict[str, float]  # config -> achieved GB/s


def _run_parallel(
    name: str,
    threads: int,
    machine_name: str,
    config: str,
    scale: float,
    rate: float = 2e-3,
):
    machine = get_machine(machine_name)
    spec = get_parallel_workload(name)
    programs = spec.build(threads, "ref", scale)

    if config in ("sw", "swnt"):
        # Profile thread 0; all threads share the code, so one plan
        # rewrites every thread's program (the paper's single profile).
        profile_exec = execute_program(programs[0], seed=workload_seed(name, "ref"))
        sampling = RuntimeSampler(rate=rate, seed=workload_seed(name, "ref") & 0xFFFF).sample(
            profile_exec.trace
        )
        plan = PrefetchOptimizer(machine).analyze(
            sampling, refs_per_pc=programs[0].refs_per_pc()
        )
        programs = [insert_prefetches(p, plan) for p in programs]

    specs = []
    for t, program in enumerate(programs):
        execution = execute_program(program, seed=workload_seed(name, "ref", salt=t))
        prefetcher = hw_prefetcher_for(machine) if config == "hw" else None
        specs.append(
            CoreSpec(
                trace=execution.trace,
                work_per_memop=execution.work_per_memop,
                mlp=execution.mlp,
                prefetcher=prefetcher,
                name=f"{name}.t{t}",
            )
        )
    sim = MulticoreSimulator(machine, specs)
    # No end-of-run drain: Fig 12 reports sustained bandwidth, and the
    # drain's bytes arrive in zero simulated time.
    return sim.run(drain=False)


def run_fig12(
    machine_name: str = "intel-i7-2600k",
    benchmarks: tuple[str, ...] = FIG12_BENCHMARKS,
    thread_counts: tuple[int, ...] = (1, 2, 4),
    configs: tuple[str, ...] = ("swnt", "hw"),
    scale: float = 0.5,
) -> list[Fig12Cell]:
    """Evaluate the parallel suite.

    Speedup for T threads = (1-thread baseline makespan) × T /
    (T-thread config makespan): total work grows with threads, so
    perfect scaling with no prefetch benefit gives exactly T.
    """
    machine = get_machine(machine_name)
    cells = []
    for name in benchmarks:
        base_1t = _run_parallel(name, 1, machine_name, "baseline", scale)
        base_time = base_1t.makespan_cycles
        for threads in thread_counts:
            speedup = {}
            bandwidth = {}
            for config in configs:
                res = _run_parallel(name, threads, machine_name, config, scale)
                speedup[config] = base_time * threads / res.makespan_cycles
                bandwidth[config] = res.achieved_bandwidth_gbs(machine.freq_ghz)
            cells.append(Fig12Cell(name, threads, speedup, bandwidth))
    return cells


def render_fig12(cells: list[Fig12Cell]) -> str:
    labels = {"swnt": "Soft Pref+NT", "hw": "Hardware Pref."}
    configs = list(cells[0].speedup) if cells else []
    rows = []
    for c in cells:
        star = "*" if get_parallel_workload(c.benchmark).high_bandwidth else ""
        rows.append(
            (
                f"{c.benchmark}{star} x{c.threads}",
                *(f"{c.speedup[cfg]:.2f}" for cfg in configs),
                *(f"{c.bandwidth[cfg]:.1f}" for cfg in configs),
            )
        )
    return render_table(
        (
            "bench x threads",
            *(f"{labels[c]} speedup" for c in configs),
            *(f"{labels[c]} GB/s" for c in configs),
        ),
        rows,
        title="Fig 12: Parallel workloads, speedup over 1-thread baseline (Intel)",
    )
