"""Figure 8 — the mix with the largest software-over-hardware benefit.

The paper dissects the mix {cigar, gcc, lbm, libquantum} on the Intel
machine: with hardware prefetching each application wants far more
bandwidth than the chip can deliver (25.3 GB/s demanded, 13.6 GB/s
achieved), while the software scheme requests 12.8 GB/s, achieves 10,
and ends up ~20 % faster overall.  This experiment runs the mix on the
**direct** four-core simulator (shared LLC + shared controller), not the
analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import get_machine
from repro.api import ExperimentSpec
from repro.experiments.runner import hw_prefetcher_for, plan_for_spec, profile_for
from repro.experiments.tables import render_table
from repro.isa.interpreter import execute_program
from repro.isa.rewriter import insert_prefetches
from repro.multicore.simulator import CoreSpec, MulticoreSimulator
from repro.workloads.base import workload_seed
from repro.workloads.mixes import Mix, fig8_mix

__all__ = ["Fig8Result", "run_fig8", "render_fig8"]


@dataclass(frozen=True)
class Fig8Result:
    """Per-application speedups and achieved bandwidth for one mix."""

    machine: str
    members: tuple[str, ...]
    speedups: dict[str, list[float]]  # config -> per-app speedup-1
    bandwidth: dict[str, float]  # config -> achieved GB/s


def _core_specs(mix: Mix, machine_name: str, config: str, scale: float) -> list[CoreSpec]:
    machine = get_machine(machine_name)
    specs = []
    for name, input_set in zip(mix.members, mix.inputs):
        profile = profile_for(name, input_set, scale)
        if config in ("sw", "swnt", "stride"):
            plan = plan_for_spec(
                ExperimentSpec(name, machine_name, config, input_set, scale)
            )
            program = insert_prefetches(profile.program, plan)
            execution = execute_program(program, seed=workload_seed(name, input_set))
        else:
            execution = profile.execution
        prefetcher = None
        if config == "hw":
            prefetcher = hw_prefetcher_for(machine)
        specs.append(
            CoreSpec(
                trace=execution.trace,
                work_per_memop=execution.work_per_memop,
                mlp=execution.mlp,
                prefetcher=prefetcher,
                name=name,
            )
        )
    return specs


def run_fig8(
    machine_name: str = "intel-i7-2600k",
    mix: Mix | None = None,
    scale: float = 0.5,
    configs: tuple[str, ...] = ("swnt", "hw"),
) -> Fig8Result:
    """Directly simulate the Fig. 8 mix under each configuration."""
    machine = get_machine(machine_name)
    the_mix = mix if mix is not None else fig8_mix()

    results = {}
    for config in ("baseline", *configs):
        sim = MulticoreSimulator(machine, _core_specs(the_mix, machine_name, config, scale))
        results[config] = sim.run(drain=False)

    base = results["baseline"]
    speedups = {}
    bandwidth = {}
    for config in configs:
        res = results[config]
        speedups[config] = [
            b.cycles / c.cycles - 1.0 for b, c in zip(base.per_core, res.per_core)
        ]
        bandwidth[config] = res.achieved_bandwidth_gbs(machine.freq_ghz)
    return Fig8Result(
        machine=machine_name,
        members=the_mix.members,
        speedups=speedups,
        bandwidth=bandwidth,
    )


def render_fig8(result: Fig8Result) -> str:
    labels = {"swnt": "Soft Pref.+NT", "hw": "Hardware Pref."}
    configs = list(result.speedups)
    rows = []
    for i, name in enumerate(result.members):
        rows.append(
            (name, *(f"{result.speedups[c][i] * 100:+.1f}%" for c in configs))
        )
    rows.append(
        (
            "average",
            *(
                f"{sum(result.speedups[c]) / len(result.speedups[c]) * 100:+.1f}%"
                for c in configs
            ),
        )
    )
    rows.append(
        ("achieved BW", *(f"{result.bandwidth[c]:.1f} GB/s" for c in configs))
    )
    return render_table(
        ("App", *(labels.get(c, c) for c in configs)),
        rows,
        title=f"Fig 8: Mix detail {result.members} — {result.machine} (direct 4-core sim)",
    )
