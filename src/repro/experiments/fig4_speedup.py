"""Figure 4 — single-thread speedup per benchmark and prefetch policy.

For both machines and every benchmark, the speedup over the baseline
(original program, hardware prefetching off) of: Hardware Pref.,
Software Pref., Soft.Pref.+NT, and Stride-centric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ExperimentEngine, ExperimentSpec, current_engine
from repro.experiments.tables import render_table
from repro.workloads.spec2006 import ALL_SINGLE_CORE

__all__ = ["SpeedupRow", "run_fig4", "render_fig4", "POLICIES"]

POLICIES = ("hw", "sw", "swnt", "stride")
POLICY_LABELS = {
    "hw": "Hardware Pref.",
    "sw": "Software Pref.",
    "swnt": "Soft.Pref.+NT",
    "stride": "Stride-centric",
}


@dataclass(frozen=True)
class SpeedupRow:
    """One benchmark's speedups on one machine."""

    benchmark: str
    machine: str
    speedups: dict[str, float]  # policy -> speedup - 1 (fractional gain)


def run_fig4(
    machine_name: str,
    benchmarks: tuple[str, ...] = ALL_SINGLE_CORE,
    scale: float = 1.0,
    engine: ExperimentEngine | None = None,
) -> list[SpeedupRow]:
    """Speedups of all policies on one machine."""
    engine = engine or current_engine()
    results = engine.run_grid(
        benchmarks, (machine_name,), ("baseline", *POLICIES), scales=(scale,)
    )
    rows = []
    for name in benchmarks:
        cell = ExperimentSpec(name, machine_name, "baseline", "ref", scale)
        base = results[cell].cycles
        speedups = {
            p: base / results[cell.with_config(p)].cycles - 1.0 for p in POLICIES
        }
        rows.append(SpeedupRow(name, machine_name, speedups))
    return rows


def average_row(rows: list[SpeedupRow]) -> dict[str, float]:
    """Per-policy arithmetic mean across benchmarks."""
    return {
        p: sum(r.speedups[p] for r in rows) / len(rows) for p in POLICIES
    }


def render_fig4(rows: list[SpeedupRow]) -> str:
    machine = rows[0].machine if rows else "?"
    table_rows = [
        (r.benchmark, *(f"{r.speedups[p] * 100:+.1f}%" for p in POLICIES))
        for r in rows
    ]
    avg = average_row(rows)
    table_rows.append(("average", *(f"{avg[p] * 100:+.1f}%" for p in POLICIES)))
    return render_table(
        ("Benchmark", *(POLICY_LABELS[p] for p in POLICIES)),
        table_rows,
        title=f"Fig 4: Speedup over no-prefetch baseline — {machine}",
    )
