"""Figure 9 — mixed workloads with inputs different from the profiled ones.

Sensitivity study (paper §VII-D): the prefetch plans were derived from
the *reference* inputs, but the mixes now run alternate inputs.  The
paper finds the software method remains stable (+6 % over HW on AMD,
+4 % on Intel) while hardware prefetching's benefit varies widely and
degrades ~10 % of the mixes.
"""

from __future__ import annotations

from repro.experiments.fig7_mixes import Fig7Result, fig7_summary, run_fig7
from repro.experiments.tables import render_series, render_table

__all__ = ["run_fig9", "render_fig9"]


def run_fig9(
    machine_name: str,
    n_mixes: int = 180,
    scale: float = 1.0,
) -> Fig7Result:
    """Fig. 7's sweep with randomly selected alternate inputs per member."""
    return run_fig7(machine_name, n_mixes=n_mixes, scale=scale, vary_inputs=True)


def render_fig9(result: Fig7Result) -> str:
    labels = {"swnt": "Soft Pref.+NT", "hw": "Hardware Pref."}
    parts = [
        render_series(
            {labels[c]: result.speedup[c].tolist() for c in result.speedup},
            title=f"Fig 9: Speedup distribution with different inputs — "
            f"{result.machine} ({result.n_mixes} mixes)",
        )
    ]
    summary = fig7_summary(result)
    rows = [(k, f"{v * 100:+.1f}%") for k, v in summary.items()]
    parts += ["", render_table(("statistic", "value"), rows, title="Summary")]
    return "\n".join(parts)
