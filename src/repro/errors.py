"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-types mirror the
major subsystems (configuration, traces, simulation, modelling, analysis)
to keep error handling precise without forcing callers to import deep
internal modules.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TraceError",
    "ProgramError",
    "SimulationError",
    "ModelError",
    "SamplingError",
    "AnalysisError",
    "WorkloadError",
    "ExperimentError",
    "EngineError",
    "CellFailure",
    "RunInterrupted",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError, ValueError):
    """An invalid machine, cache, or analysis configuration was supplied."""


class TraceError(ReproError, ValueError):
    """A memory trace is malformed or incompatible with an operation."""


class ProgramError(ReproError, ValueError):
    """A mini-IR program is structurally invalid (bad kernel, bad operand)."""


class SimulationError(ReproError, RuntimeError):
    """A cache or multicore simulation entered an inconsistent state."""


class ModelError(ReproError, ValueError):
    """Statistical cache modelling (StatStack) received unusable input."""


class SamplingError(ReproError, ValueError):
    """The runtime sampler was configured or driven incorrectly."""


class AnalysisError(ReproError, ValueError):
    """A prefetching analysis pass (MDDLI, stride, bypass) failed."""


class WorkloadError(ReproError, KeyError):
    """An unknown workload, input set, or mix was requested."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment driver could not produce its table or figure."""


class EngineError(ExperimentError):
    """The experiment engine could not resolve part of a batch.

    Raised by a strict-mode :class:`~repro.experiments.engine.ExperimentEngine`
    when cells fail permanently; ``report`` carries the engine's
    :class:`~repro.experiments.engine.FailureReport` (or ``None`` when the
    failure predates per-cell accounting).
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class RunInterrupted(ExperimentError):
    """A journaled run was stopped by SIGINT/SIGTERM after a graceful drain.

    The journal holds every cell completed before the shutdown, so the
    run is resumable: ``repro run --resume <run_id>`` (or
    :func:`repro.api.resume_run`) re-dispatches exactly the missing
    cells.  The CLI maps this to exit code 75 (``EX_TEMPFAIL``) so
    wrappers can auto-resume.  ``done``/``total`` describe how far the
    batch got before draining.
    """

    def __init__(
        self,
        message: str,
        run_id: str | None = None,
        done: int = 0,
        total: int = 0,
    ) -> None:
        super().__init__(message)
        self.run_id = run_id
        self.done = done
        self.total = total


class CellFailure(EngineError):
    """One grid cell failed permanently (retries exhausted or timed out).

    Attributes identify the cell and how it died: ``spec`` (the
    :class:`~repro.api.ExperimentSpec`), ``attempts`` taken, ``elapsed``
    seconds of the final attempt, and ``cause`` (the underlying
    exception, or ``None`` for a timeout).
    """

    def __init__(
        self,
        message: str,
        spec=None,
        attempts: int = 0,
        elapsed: float = 0.0,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.spec = spec
        self.attempts = attempts
        self.elapsed = elapsed
        self.cause = cause
