"""Deterministic fault-injection registry (test-only).

The fault-tolerance layer of the experiment engine — retries, poison-cell
bisection, process-pool fallback, cache hardening — is only trustworthy
if its failure paths are *exercised*, and real failures (OOM-killed
workers, torn cache writes, hung simulations) are neither deterministic
nor cheap to provoke.  This registry lets tests arm artificial failures
at named **sites** in the pipeline and have them fire deterministically:

* ``"worker.compute"`` — start of :func:`repro.experiments.runner.compute_run`
  (fires in pool workers and on the serial path alike);
* ``"worker.sigkill"`` — same place, but conventionally armed with the
  ``"kill"`` kind to model a worker SIGKILLed mid-cell (chaos harness);
* ``"cache.read"`` / ``"cache.write"`` — :class:`repro.cache.ResultCache`
  file IO; a ``corrupt`` fault at ``cache.write`` empties the published
  entry, one at ``"cache.torn_write"`` tears it mid-file (the integrity
  footer must catch both);
* ``"journal.partial_append"`` — a ``corrupt`` fault tears one run
  journal record mid-line (a crash between ``write`` and the newline);
* ``"disk.enospc"`` — cache stores and journal appends raise a real
  ``OSError(ENOSPC)`` (arm with the ``"enospc"`` kind), exercising the
  read-only downgrade paths;
* ``"serialization.decode"`` — stats/sampling codec entry points.

Five fault **kinds** model the real-world failure modes:

* ``"raise"`` — raise :class:`InjectedFault` (a crashed simulation);
* ``"hang"`` — sleep ``hang_seconds`` (a stuck worker, for timeout tests);
* ``"corrupt"`` — ask the site to corrupt its bytes (a torn write; only
  sites that own bytes honour it, via :func:`should_corrupt`);
* ``"enospc"`` — raise ``OSError(errno.ENOSPC)`` (a full disk; sites
  downgrade instead of crashing);
* ``"kill"`` — ``os._exit`` the process (an OOM-killed or SIGKILLed
  worker; fires **only** inside pool workers, see :func:`mark_worker`,
  so a serial fallback in the parent survives).

Zero overhead when disarmed: instrumented sites guard every call with
``if faults.ACTIVE:`` — a single module-attribute truth test — and
:data:`ACTIVE` is only true while at least one fault is armed.  Armed
faults propagate to pool workers through ``fork`` (the default start
method on Linux); ``times`` counters therefore track per-process.

Determinism: ``match`` predicates select victims by subject (e.g. an
:class:`~repro.api.ExperimentSpec`), and :func:`match_fraction` derives a
stable pseudo-random subset from a SHA-256 of the subject — the same
seed always poisons the same cells.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError

__all__ = [
    "ACTIVE",
    "FAULT_KINDS",
    "InjectedFault",
    "arm",
    "armed_sites",
    "check",
    "disarm",
    "in_worker",
    "mark_worker",
    "match_fraction",
    "should_corrupt",
]

#: Fast-path guard read by instrumented sites (``if faults.ACTIVE: ...``).
#: True exactly while at least one fault is armed.
ACTIVE = False

FAULT_KINDS = ("raise", "hang", "corrupt", "enospc", "kill")


class InjectedFault(ReproError, RuntimeError):
    """An artificial failure raised by the fault-injection registry."""


@dataclass
class _Fault:
    site: str
    kind: str
    match: Callable[[object], bool] | None = None
    times: int | None = None
    hang_seconds: float = 2.0
    fired: int = 0

    def applies(self, subject: object) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.match is not None and not self.match(subject):
            return False
        return True


_FAULTS: dict[str, list[_Fault]] = {}

#: Set in pool workers (see ``engine._compute_group``) so ``"kill"``
#: faults never take down the parent process.
_IN_WORKER = False


def mark_worker() -> None:
    """Declare this process a pool worker (enables ``"kill"`` faults)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """Whether this process has been marked as a pool worker."""
    return _IN_WORKER


def arm(
    site: str,
    kind: str = "raise",
    match: Callable[[object], bool] | None = None,
    times: int | None = None,
    hang_seconds: float = 2.0,
) -> None:
    """Arm one fault at ``site``.

    ``times`` limits how often it fires (per process); ``match`` limits
    which subjects trigger it; ``hang_seconds`` sizes ``"hang"`` faults.
    """
    global ACTIVE
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}; valid: {FAULT_KINDS}")
    _FAULTS.setdefault(site, []).append(
        _Fault(site, kind, match=match, times=times, hang_seconds=hang_seconds)
    )
    ACTIVE = True


def disarm(site: str | None = None) -> None:
    """Disarm every fault at ``site``, or everywhere with ``None``."""
    global ACTIVE
    if site is None:
        _FAULTS.clear()
    else:
        _FAULTS.pop(site, None)
    ACTIVE = bool(_FAULTS)


def armed_sites() -> tuple[str, ...]:
    """The sites that currently have at least one fault armed."""
    return tuple(sorted(_FAULTS))


def check(site: str, subject: object = None) -> None:
    """Fire any armed ``raise``/``hang``/``kill`` fault at ``site``.

    Instrumented sites call this behind an ``if faults.ACTIVE:`` guard.
    ``corrupt`` faults are skipped here — sites that own bytes poll
    :func:`should_corrupt` instead.
    """
    for fault in _FAULTS.get(site, ()):
        if fault.kind == "corrupt" or not fault.applies(subject):
            continue
        if fault.kind == "kill" and not _IN_WORKER:
            continue
        fault.fired += 1
        if fault.kind == "raise":
            raise InjectedFault(f"injected fault at {site} for {subject!r}")
        if fault.kind == "enospc":
            raise OSError(
                errno.ENOSPC, f"No space left on device (injected at {site})"
            )
        if fault.kind == "hang":
            time.sleep(fault.hang_seconds)
        elif fault.kind == "kill":
            os._exit(86)


def should_corrupt(site: str, subject: object = None) -> bool:
    """Whether an armed ``corrupt`` fault elects this subject at ``site``."""
    for fault in _FAULTS.get(site, ()):
        if fault.kind == "corrupt" and fault.applies(subject):
            fault.fired += 1
            return True
    return False


def match_fraction(
    fraction: float, seed: int = 0
) -> Callable[[object], bool]:
    """Deterministic predicate electing ≈``fraction`` of all subjects.

    The choice hashes ``(seed, repr(subject))``, so a given seed always
    poisons the same cells — across processes and across runs.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")

    def _match(subject: object) -> bool:
        digest = hashlib.sha256(f"{seed}:{subject!r}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < fraction

    return _match
