"""Command-line interface.

``repro`` exposes the library's main flows without writing Python:

* ``repro workloads`` — list the benchmark models;
* ``repro optimize <workload>`` — run the analysis pipeline, print the
  prefetch plan and (optionally) the rewritten assembly;
* ``repro simulate <workload>`` — simulate one or more prefetching
  configurations and report speedup/traffic;
* ``repro mrc <workload>`` — print StatStack miss-ratio curves;
* ``repro experiment <name>`` — regenerate one of the paper's tables or
  figures (``table1``, ``fig3`` … ``fig12``, ``statstack``,
  ``combined``);
* ``repro run`` — run an arbitrary workload×config grid under a durable
  run journal (crash-safe; see ``docs/engine.md``).  ``--resume RUN_ID``
  replays the journal of an interrupted run and re-dispatches only the
  missing cells; ``--list`` enumerates known runs.  SIGINT/SIGTERM drain
  in-flight work, flush the journal, and exit with code 75
  (``EX_TEMPFAIL``) so wrappers can auto-resume;
* ``repro cache verify|gc|stats`` — audit the result cache's integrity
  footers (corrupt entries are quarantined, never trusted), reclaim
  quarantine/temp debris and enforce ``--cache-quota``, or print size
  accounting;
* ``repro validate`` — run the model-vs-simulation conformance harness
  (oracle differential suite, metamorphic invariants, codec/rewriter
  fuzzing, mutation self-test); ``--quick`` (default) or ``--full``,
  ``--json-out FILE`` for the machine-readable report.  Exit 0 iff every
  engine passed.  See ``docs/testing.md``;
* ``repro serve`` — run the multi-tenant prefetch-advisor daemon:
  advisor requests arrive as newline-delimited JSON over a TCP or unix
  socket (``repro-advisor-v1``) and are answered with plans/statistics
  byte-identical to the one-shot path.  See ``docs/serving.md``.

The engine/cache/obs flag family is defined once in
:mod:`repro.cli_options` (:class:`~repro.cli_options.EngineCLIOptions`)
and shared by every engine-bearing subcommand, including ``serve``.

``simulate`` and ``experiment`` accept ``--jobs N`` (parallel worker
processes), ``--cache-dir PATH`` and ``--no-cache``: cells of the
evaluation grid are fanned out over a process pool and persisted to a
content-addressed on-disk cache (default ``./.repro-cache`` or
``$REPRO_CACHE_DIR``), so regenerating a figure a second time performs
zero re-simulations.  A per-run cell/cache summary is printed to stderr.

Simulation backend: ``--sim-backend fast`` switches ``simulate`` and
``experiment`` to the array-native cache simulators (bit-identical to
the default ``reference`` backend, several times faster; see
``docs/performance.md``).

Fault tolerance: ``--retries N`` retries failing cells, ``--cell-timeout
SECONDS`` bounds each dispatched cell group, and ``--best-effort`` keeps
a run alive past permanent cell failures — surviving cells are rendered,
a per-cell failure table goes to stderr, and the exit code is non-zero
(3).  The default ``--strict`` aborts with the same table and exit 2.

Observability: every subcommand accepts ``--trace-out FILE`` (Chrome
``trace_event`` JSON — load it in ``chrome://tracing`` or
https://ui.perfetto.dev) and ``--metrics-out FILE`` (flat JSON counter /
gauge / histogram dump); either flag enables :mod:`repro.obs` for the
whole run, including engine worker processes.  ``--deterministic-trace``
switches the tracer to a virtual clock so trace files are byte-stable.
See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli_options import EngineCLIOptions, cli_parent, parse_size
from repro.config import MACHINES, get_machine
from repro.errors import ReproError, RunInterrupted

__all__ = ["main", "build_parser", "EXIT_INTERRUPTED"]

#: Exit code of a journaled run stopped by SIGINT/SIGTERM after a
#: graceful drain (EX_TEMPFAIL).  The run is resumable: wrappers that
#: see this code can re-invoke ``repro run --resume <run-id>``.
EXIT_INTERRUPTED = 75

#: Backwards-compatible alias; the definition moved to repro.cli_options.
_parse_size = parse_size


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource-efficient software prefetching (ICPP'14 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # The engine/cache/obs flag families are declared once in
    # repro.cli_options and materialised here as argparse parents.
    obs_parent = cli_parent(("obs",))
    engine_parent = cli_parent(("engine", "obs"))

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--machine",
            default="amd-phenom-ii",
            choices=sorted(MACHINES),
            help="target machine model",
        )
        p.add_argument("--scale", type=float, default=0.3, help="trip-count multiplier")
        p.add_argument("--input", dest="input_set", default="ref", help="input set")

    p_wl = sub.add_parser(
        "workloads", help="list available benchmark models", parents=[obs_parent]
    )

    p_opt = sub.add_parser(
        "optimize",
        help="analyse a workload and print its prefetch plan",
        parents=[obs_parent],
    )
    p_opt.add_argument("workload")
    add_common(p_opt)
    p_opt.add_argument("--emit-asm", action="store_true", help="print rewritten assembly")
    p_opt.add_argument("--no-bypass", action="store_true", help="disable PREFETCHNTA")

    p_sim = sub.add_parser(
        "simulate",
        help="simulate prefetching configurations",
        parents=[engine_parent],
    )
    p_sim.add_argument("workload")
    add_common(p_sim)
    p_sim.add_argument(
        "--configs",
        default="baseline,hw,swnt",
        help="comma-separated configs (baseline,hw,sw,swnt,stride,hwsw,swi,hwx)",
    )

    p_chr = sub.add_parser(
        "characterize",
        help="summarise a workload's memory behaviour",
        parents=[obs_parent],
    )
    p_chr.add_argument("workload")
    add_common(p_chr)

    p_mrc = sub.add_parser(
        "mrc", help="print StatStack miss-ratio curves", parents=[obs_parent]
    )
    p_mrc.add_argument("workload")
    add_common(p_mrc)
    p_mrc.add_argument("--loads", type=int, default=3, help="hottest loads to include")

    p_exp = sub.add_parser(
        "experiment",
        help="regenerate a paper table/figure",
        parents=[engine_parent],
    )
    p_exp.add_argument(
        "name",
        choices=[
            "table1", "statstack", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "combined",
        ],
    )
    add_common(p_exp)
    p_exp.add_argument(
        "--mixes", type=int, default=40, help="mix count for fig7/fig9/fig10/fig11"
    )
    p_exp.add_argument(
        "--coordinator-policy",
        default=None,
        metavar="FILE",
        help="RL coordinator policy artifact for the hwrl rows "
        "(default: the bundled repro-coordinator-policy-v1)",
    )

    p_train = sub.add_parser(
        "train-coordinator",
        help="train and freeze a multicore prefetch-coordinator RL policy",
        parents=[obs_parent],
    )
    p_train.add_argument("--seed", type=int, default=0, help="training RNG seed")
    p_train.add_argument(
        "--episodes", type=int, default=800, help="synthetic training mixes"
    )
    p_train.add_argument("--alpha", type=float, default=0.2, help="Q learning rate")
    p_train.add_argument("--gamma", type=float, default=0.5, help="discount factor")
    p_train.add_argument(
        "--machine",
        default="amd-phenom-ii",
        choices=sorted(MACHINES),
        help="machine model the training mixes run on",
    )
    p_train.add_argument(
        "--cores", type=int, default=4, help="apps per training mix"
    )
    p_train.add_argument(
        "--out",
        required=True,
        metavar="FILE",
        help="where to write the repro-coordinator-policy-v1 artifact",
    )

    p_run = sub.add_parser(
        "run",
        help="run a workload×config grid under a durable, resumable run journal",
        parents=[engine_parent],
    )
    p_run.add_argument(
        "--workloads",
        default="libquantum,mcf",
        help="comma-separated workloads (default libquantum,mcf)",
    )
    p_run.add_argument(
        "--configs",
        default="baseline,hw,swnt",
        help="comma-separated configs (baseline,hw,sw,swnt,stride,hwsw,swi,hwx)",
    )
    add_common(p_run)
    p_run.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="explicit run identifier (default: fresh timestamped id)",
    )
    p_run.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="resume an interrupted run from its journal instead of starting fresh",
    )
    p_run.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="run-journal root (default $REPRO_RUNS_DIR or ./.repro-runs)",
    )
    p_run.add_argument(
        "--list",
        dest="list_runs",
        action="store_true",
        help="list known journaled runs and exit",
    )
    p_run.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write {run_id, results} with full serialised stats as JSON",
    )

    p_cache = sub.add_parser(
        "cache",
        help="inspect and maintain the on-disk result cache",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cv = cache_sub.add_parser(
        "verify",
        help="check every entry's integrity footer; quarantine corrupt ones",
        parents=[obs_parent],
    )
    p_cv.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write the machine-readable verification report as JSON",
    )
    p_cg = cache_sub.add_parser(
        "gc",
        help="reclaim quarantine/temp debris and enforce the size quota",
        parents=[obs_parent],
    )
    p_cg.add_argument(
        "--older-than",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="age threshold for stale temp files (default 600)",
    )
    p_cg.add_argument(
        "--cache-quota",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="evict least-recently-used entries past this budget (e.g. 512M)",
    )
    p_cg.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="also reap orphaned journal temp files under this run root",
    )
    p_cs = cache_sub.add_parser(
        "stats", help="print cache size accounting", parents=[obs_parent]
    )
    p_cs.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write the size accounting as JSON",
    )
    for p_c in (p_cv, p_cg, p_cs):
        p_c.add_argument(
            "--cache-dir",
            default=None,
            help="result cache directory (default $REPRO_CACHE_DIR or ./.repro-cache)",
        )

    p_val = sub.add_parser(
        "validate",
        help="run the model-vs-simulation conformance harness",
        parents=[obs_parent],
    )
    mode = p_val.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick",
        dest="quick",
        action="store_true",
        default=True,
        help="small corpus traces, CI-sized run (default)",
    )
    mode.add_argument(
        "--full",
        dest="quick",
        action="store_false",
        help="4x longer corpus traces plus a sparse-sampling model pass",
    )
    p_val.add_argument(
        "--corpus-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the synthesized trace corpus (default 0)",
    )
    p_val.add_argument(
        "--fuzz-cases",
        type=int,
        default=25,
        metavar="N",
        help="fuzz cases per target (default 25)",
    )
    p_val.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write the full machine-readable report as JSON",
    )
    p_val.add_argument(
        "--persist-repros",
        default=None,
        metavar="DIR",
        help="persist shrunk failing fuzz cases as replayable fixtures in DIR",
    )
    p_val.add_argument(
        "--skip-self-test",
        action="store_true",
        help="skip the mutation self-test (it re-runs small engine passes)",
    )

    p_srv = sub.add_parser(
        "serve",
        help="run the multi-tenant prefetch-advisor daemon (repro-advisor-v1)",
        parents=[engine_parent],
    )
    addr = p_srv.add_mutually_exclusive_group(required=True)
    addr.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port to listen on (0 picks a free port)",
    )
    addr.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="unix-domain socket path to listen on",
    )
    p_srv.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1)",
    )
    p_srv.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        metavar="N",
        help="bounded intake queue size; requests past it are rejected "
        "with retry_after (default 64)",
    )
    p_srv.add_argument(
        "--batch-max",
        type=int,
        default=16,
        metavar="N",
        help="max requests resolved per dispatcher batch (default 16)",
    )
    p_srv.add_argument(
        "--batch-linger",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="how long the dispatcher lingers to coalesce a burst "
        "into one batch (default 0.005)",
    )
    p_srv.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="engine shards; tenants map to shards by name hash (default 2)",
    )
    p_srv.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="grace period for in-flight requests on SIGTERM (default 5)",
    )
    p_srv.add_argument(
        "--tenant-quota",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="per-tenant cache namespace budget (default: --cache-quota)",
    )
    return parser


def _configure_engine(args: argparse.Namespace):
    """Install the process-wide engine from the --jobs/--cache/--retries
    option family (one definition for every subcommand; see
    :mod:`repro.cli_options`)."""
    return EngineCLIOptions.from_args(args).install(progress=True)


def _engine_epilogue(engine) -> int:
    """Print the engine summary and, in best-effort mode, the per-cell
    failure table; non-zero when any cell was lost."""
    print(engine.summary(), file=sys.stderr)
    if engine.last_failures:
        print(engine.last_failures.format_table(), file=sys.stderr)
        return 3
    return 0


def _cmd_workloads() -> int:
    from repro.workloads import get_workload, list_workloads
    from repro.workloads.parallel import PARALLEL_BENCHMARKS

    print("single-core benchmark models:")
    for name in list_workloads():
        spec = get_workload(name)
        inputs = ",".join(spec.inputs)
        print(f"  {name:12s} [{inputs}]  {spec.description}")
    print("parallel benchmark models:")
    for spec in PARALLEL_BENCHMARKS:
        star = "*" if spec.high_bandwidth else " "
        print(f"  {spec.name:12s}{star} {spec.description}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.core.pipeline import OptimizerSettings, PrefetchOptimizer
    from repro.isa import emit, execute_program, insert_prefetches
    from repro.sampling import RuntimeSampler
    from repro.workloads import build_program, workload_seed

    machine = get_machine(args.machine)
    program = build_program(args.workload, args.input_set, args.scale)
    execution = execute_program(
        program, seed=workload_seed(args.workload, args.input_set)
    )
    sampling = RuntimeSampler(rate=2e-3, seed=1).sample(execution.trace)
    print(sampling.describe())
    settings = OptimizerSettings(enable_bypass=not args.no_bypass)
    plan = PrefetchOptimizer(machine, settings).analyze(
        sampling, refs_per_pc=program.refs_per_pc()
    )
    print(plan.summary())
    if args.emit_asm:
        print()
        print(emit(insert_prefetches(program, plan)))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.api import ExperimentSpec
    from repro.experiments.tables import render_table

    engine = _configure_engine(args)
    machine = get_machine(args.machine)
    configs = tuple(c.strip() for c in args.configs.split(",") if c.strip())
    if "baseline" not in configs:
        configs = ("baseline", *configs)
    results = engine.run_grid(
        (args.workload,),
        (args.machine,),
        configs,
        input_sets=(args.input_set,),
        scales=(args.scale,),
    )
    runs = {
        c: results.get(
            ExperimentSpec(args.workload, args.machine, c, args.input_set, args.scale)
        )
        for c in configs
    }
    base = runs["baseline"]
    if base is None:
        # Best-effort run lost the reference cell: nothing to normalise
        # against, so only the failure table is meaningful.
        print("error: baseline cell failed; no table to render", file=sys.stderr)
        return _engine_epilogue(engine) or 3
    rows = []
    for config, stats in runs.items():
        if stats is None:
            rows.append((config, "failed", "-", "-", "-"))
            continue
        rows.append(
            (
                config,
                f"{base.cycles / stats.cycles:.3f}x",
                f"{stats.l1.miss_ratio * 100:.1f}%",
                f"{stats.dram_bytes / max(1, base.dram_bytes):.2f}x",
                f"{stats.bandwidth_gbs(machine.freq_ghz):.2f}",
            )
        )
    print(
        render_table(
            ("config", "speedup", "L1 MR", "traffic", "GB/s"),
            rows,
            title=f"{args.workload} on {args.machine} (scale {args.scale})",
        )
    )
    return _engine_epilogue(engine)


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.isa import execute_program
    from repro.trace import characterize_trace
    from repro.workloads import build_program, workload_seed

    program = build_program(args.workload, args.input_set, args.scale)
    execution = execute_program(
        program, seed=workload_seed(args.workload, args.input_set)
    )
    character = characterize_trace(execution.trace)
    print(f"== {args.workload} ({args.input_set}, scale {args.scale}) ==")
    print(character.describe())
    return 0


def _cmd_mrc(args: argparse.Namespace) -> int:
    from repro.isa import execute_program
    from repro.experiments.tables import render_table
    from repro.sampling import RuntimeSampler
    from repro.statstack import StatStackModel, default_size_grid
    from repro.workloads import build_program, workload_seed

    machine = get_machine(args.machine)
    program = build_program(args.workload, args.input_set, args.scale)
    execution = execute_program(
        program, seed=workload_seed(args.workload, args.input_set)
    )
    sampling = RuntimeSampler(rate=2e-3, seed=3).sample(execution.trace)
    model = StatStackModel(sampling.reuse, machine.line_bytes)
    hot = sorted(model.modelled_pcs(), key=model.pc_sample_weight, reverse=True)
    hot = hot[: args.loads]
    rows = []
    for size in default_size_grid().tolist():
        label = f"{size // 1024}k" if size < 1 << 20 else f"{size >> 20}M"
        rows.append(
            (
                label,
                f"{model.miss_ratio(size) * 100:5.1f}%",
                *(f"{model.pc_miss_ratio(pc, size) * 100:5.1f}%" for pc in hot),
            )
        )
    print(
        render_table(
            ("size", "app", *(f"pc{pc}" for pc in hot)),
            rows,
            title=f"StatStack miss-ratio curves — {args.workload}",
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    engine = _configure_engine(args)
    try:
        _render_experiment(args)
    except KeyError as exc:
        if engine.last_failures:
            # A best-effort run lost cells this driver needs.
            print(
                f"error: incomplete grid after cell failures ({exc})",
                file=sys.stderr,
            )
            return _engine_epilogue(engine) or 3
        raise
    return _engine_epilogue(engine)


def _render_experiment(args: argparse.Namespace) -> None:
    name = args.name
    scale = args.scale
    if name == "table1":
        from repro.experiments.table1_coverage import render_table1, run_table1

        print(render_table1(run_table1(scale)))
    elif name == "statstack":
        from repro.experiments.statstack_validation import (
            render_validation,
            run_validation,
        )

        print(render_validation(run_validation(scale)))
    elif name == "fig3":
        from repro.experiments.fig3_mrc import render_fig3, run_fig3

        print(render_fig3(run_fig3(scale=scale)))
    elif name in ("fig4", "fig5", "fig6"):
        module = {
            "fig4": "fig4_speedup",
            "fig5": "fig5_traffic",
            "fig6": "fig6_bandwidth",
        }[name]
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        run = getattr(mod, f"run_{name}")
        render = getattr(mod, f"render_{name}")
        print(render(run(args.machine, scale=scale)))
    elif name == "fig7":
        from repro.experiments.fig7_mixes import render_fig7, run_fig7

        print(render_fig7(run_fig7(args.machine, n_mixes=args.mixes, scale=scale)))
    elif name == "fig8":
        from repro.experiments.fig8_mix_detail import render_fig8, run_fig8

        print(render_fig8(run_fig8(scale=min(scale, 0.5))))
    elif name == "fig9":
        from repro.experiments.fig9_varying_inputs import render_fig9, run_fig9

        print(render_fig9(run_fig9(args.machine, n_mixes=args.mixes, scale=scale)))
    elif name in ("fig10", "fig11"):
        from repro.experiments.fig7_mixes import run_fig7
        from repro.multicore.coordinator import set_default_policy_path

        if getattr(args, "coordinator_policy", None):
            set_default_policy_path(args.coordinator_policy)
        result = run_fig7(
            args.machine,
            n_mixes=args.mixes,
            scale=scale,
            configs=("swnt", "hw", "hwcoord", "hwrl"),
        )
        if name == "fig10":
            from repro.experiments.fig10_fair_speedup import (
                fair_speedup_from,
                render_fig10,
            )

            print(render_fig10([fair_speedup_from(result, "orig")]))
        else:
            from repro.experiments.fig11_qos import qos_from, render_fig11

            print(render_fig11([qos_from(result, "orig")]))
    elif name == "fig12":
        from repro.experiments.fig12_parallel import render_fig12, run_fig12

        print(render_fig12(run_fig12(scale=min(scale, 0.5))))
    elif name == "combined":
        from repro.experiments.combined_prefetching import (
            render_combined,
            run_combined,
        )

        print(render_combined(run_combined(args.machine, scale=scale)))


def _cmd_train_coordinator(args: argparse.Namespace) -> int:
    from repro.multicore.coordinator import save_policy, train_coordinator

    def progress(done: int, total: int, states: int) -> None:
        print(f"episode {done}/{total}: {states} states", file=sys.stderr)

    policy = train_coordinator(
        seed=args.seed,
        episodes=args.episodes,
        alpha=args.alpha,
        gamma=args.gamma,
        machine_name=args.machine,
        cores=args.cores,
        progress=progress,
    )
    save_policy(policy, args.out)
    print(f"froze {len(policy.q)}-state policy (seed {args.seed}) to {args.out}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro import api
    from repro.core import serialization
    from repro.experiments.journal import list_runs
    from repro.experiments.tables import render_table

    if args.list_runs:
        runs = list_runs(args.runs_dir)
        if not runs:
            print("no journaled runs", file=sys.stderr)
        for run_id in runs:
            print(run_id)
        return 0
    engine = _configure_engine(args)
    if args.resume is not None:
        run_id, results = api.resume_run(
            args.resume, runs_dir=args.runs_dir, engine=engine
        )
    else:
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
        configs = [c.strip() for c in args.configs.split(",") if c.strip()]
        specs = [
            api.ExperimentSpec(w, args.machine, c, args.input_set, args.scale)
            for w in workloads
            for c in configs
        ]
        run_id, results = api.run_journaled(
            specs, run_id=args.run_id, runs_dir=args.runs_dir, engine=engine
        )
    ordered = sorted(results.items(), key=lambda kv: kv[0].label())
    rows = [
        (
            spec.label(),
            f"{stats.cycles}",
            f"{stats.l1.miss_ratio * 100:.2f}%",
            f"{stats.dram_bytes}",
        )
        for spec, stats in ordered
    ]
    print(
        render_table(
            ("cell", "cycles", "L1 MR", "DRAM bytes"),
            rows,
            title=f"run {run_id} ({len(results)} cells)",
        )
    )
    if args.json_out is not None:
        payload = {
            "run_id": run_id,
            "results": {
                spec.label(): serialization.stats_to_dict(stats)
                for spec, stats in ordered
            },
        }
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[run] results written to {args.json_out}", file=sys.stderr)
    return _engine_epilogue(engine)


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.cache import ResultCache, default_cache_dir

    root = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    cache = ResultCache(root, quota_bytes=getattr(args, "cache_quota", None))
    if args.cache_command == "verify":
        report = cache.verify()
        print(report.render())
        if args.json_out is not None:
            with open(args.json_out, "w") as handle:
                json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"[cache] report written to {args.json_out}", file=sys.stderr)
        return 0 if report.corrupt == 0 else 1
    if args.cache_command == "gc":
        summary = cache.gc(older_than=args.older_than, runs_dir=args.runs_dir)
        swept = ", ".join(f"{k}={v}" for k, v in sorted(cache.swept.items()))
        print(
            f"cache gc: {summary['quarantine_removed']} quarantined entries "
            f"removed, {summary['evicted']} evicted for quota, swept {swept}"
        )
        return 0
    if args.cache_command == "stats":
        stats = cache.entry_stats()
        for kind, info in sorted(stats["kinds"].items()):
            print(f"  {kind:10s} {info['entries']:6d} entries  {info['bytes']:12d} bytes")
        quota = stats["quota_bytes"]
        print(
            f"  total      {stats['total_bytes']} bytes, "
            f"{stats['quarantined']} quarantined"
            + (f", quota {quota} bytes" if quota is not None else "")
        )
        if args.json_out is not None:
            with open(args.json_out, "w") as handle:
                json.dump(stats, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"[cache] stats written to {args.json_out}", file=sys.stderr)
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command}")


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate import DiffSettings, ValidationConfig, run_validation

    config = ValidationConfig(
        corpus_seed=args.corpus_seed,
        quick=args.quick,
        fuzz_cases=args.fuzz_cases,
        run_self_test=not args.skip_self_test,
        persist_repros=args.persist_repros,
    )
    # Full mode additionally builds the model from a sparse sample, the
    # way production profiling would, with the class's sampled_slack of
    # extra error headroom.
    diff_settings = (
        DiffSettings() if args.quick else DiffSettings(sampler_rates=(1.0, 0.1))
    )
    report = run_validation(config, diff_settings=diff_settings)
    print(report.render())
    if args.json_out is not None:
        report.save(args.json_out)
        print(f"[validate] report written to {args.json_out}", file=sys.stderr)
    return 0 if report.passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.cachesim.options import set_default_options
    from repro.serve import ServeOptions, serve_forever

    opts = EngineCLIOptions.from_args(args)
    # No process-wide engine here — the daemon owns its engine pool —
    # but the sim backend default must land before workers fork.
    sim = opts.sim_options()
    if sim is not None:
        set_default_options(sim)
    tenant_quota = (
        args.tenant_quota if args.tenant_quota is not None else opts.cache_quota
    )
    options = ServeOptions(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        queue_capacity=args.queue_capacity,
        batch_max=args.batch_max,
        batch_linger=args.batch_linger,
        shards=args.shards,
        jobs=opts.jobs,
        cache_dir=opts.cache_dir,
        use_cache=opts.use_cache,
        cache_quota=tenant_quota,
        retry=opts.retry_policy(),
        drain_seconds=args.drain_seconds,
    )
    return serve_forever(options)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "mrc":
        return _cmd_mrc(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "train-coordinator":
        return _cmd_train_coordinator(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    tracing = trace_out is not None or metrics_out is not None
    if tracing:
        from repro import obs

        obs.enable(deterministic=getattr(args, "deterministic_trace", False))
        obs.get_tracer().clear()
        obs.metrics().reset()
    try:
        return _dispatch(args)
    except RunInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        if exc.run_id:
            print(
                f"resume with: repro run --resume {exc.run_id}",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        report = getattr(exc, "report", None)
        if report:
            print(report.format_table(), file=sys.stderr)
        return 2
    finally:
        # Exports are written even when the run errored — a partial
        # trace of a failed run is exactly what one wants to look at.
        if tracing:
            from repro import obs

            if trace_out is not None:
                obs.write_chrome_trace(trace_out)
                print(f"[obs] trace written to {trace_out}", file=sys.stderr)
            if metrics_out is not None:
                obs.write_metrics(metrics_out)
                print(f"[obs] metrics written to {metrics_out}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
