#!/usr/bin/env python3
"""Lint the test suite for unseeded randomness.

Every source of randomness in ``tests/`` must be seeded — either through
the shared ``rng`` fixture from ``tests/conftest.py`` or an explicit
seed — so that a test failure is always reproducible from its name
alone.  This script greps for the constructions that silently pull
entropy from the OS:

* ``np.random.default_rng()`` / ``default_rng()`` with no arguments
* ``random.Random()`` with no arguments
* ``np.random.seed(...)`` (legacy global-state seeding: forbidden
  outright, it leaks across tests)
* bare ``random.random()`` / ``random.randint`` module-level calls

Run as a script (CI does) or import :func:`find_violations` from tests.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

__all__ = ["RULES", "Violation", "find_violations", "main"]

#: (rule-name, compiled pattern, explanation).  Patterns are line-based.
RULES: list[tuple[str, re.Pattern[str], str]] = [
    (
        "unseeded-default_rng",
        re.compile(r"\bdefault_rng\(\s*\)"),
        "np.random.default_rng() without a seed draws OS entropy; "
        "pass a seed or use the shared `rng` fixture",
    ),
    (
        "unseeded-Random",
        re.compile(r"\brandom\.Random\(\s*\)"),
        "random.Random() without a seed draws OS entropy; pass a seed",
    ),
    (
        "global-np-seed",
        re.compile(r"\bnp\.random\.seed\s*\("),
        "np.random.seed mutates global state shared across tests; "
        "use a Generator (the `rng` fixture) instead",
    ),
    (
        "module-level-random",
        re.compile(r"(?<![\w.])random\.(random|randint|choice|shuffle|uniform)\s*\("),
        "the `random` module's global functions are unseeded per-test; "
        "use a seeded random.Random or numpy Generator",
    ),
]


class Violation:
    """One flagged line."""

    def __init__(self, path: Path, lineno: int, rule: str, line: str, why: str):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.line = line
        self.why = why

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.line.strip()}\n    {self.why}"


def find_violations(paths: list[Path]) -> list[Violation]:
    """Scan python files (or directories of them) for unseeded randomness."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[Violation] = []
    for file in files:
        for lineno, line in enumerate(file.read_text().splitlines(), start=1):
            stripped = line.split("#", 1)[0]
            for rule, pattern, why in RULES:
                if pattern.search(stripped):
                    violations.append(Violation(file, lineno, rule, line, why))
    return violations


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(__file__).resolve().parent.parent
    paths = [Path(a) for a in args] or [root / "tests"]
    violations = find_violations(paths)
    for violation in violations:
        print(violation)
    if violations:
        print(f"\n{len(violations)} determinism violation(s) found")
        return 1
    print("test determinism lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
