#!/usr/bin/env python
"""Serve smoke driver for CI: boot the daemon, round-trip, drain.

Runs the real thing — ``python -m repro.cli serve`` as a subprocess on
a unix socket — and checks the serving contract end to end:

1. the daemon binds its socket and greets with ``repro-advisor-v1``;
2. a workload request and an inline-trace request both come back
   ``status="ok"`` with valid ``repro-advisor-response-v1`` documents,
   and the served bytes are identical to the in-process one-shot
   :func:`repro.api.advise` result for the same request;
3. SIGTERM drains: the process exits 0 and unlinks its socket.

Exits non-zero with a diagnostic on any failure.  Usage::

    python tools/serve_smoke.py [--timeout SECONDS]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import AdvisorRequest, advise  # noqa: E402
from repro.serve import protocol  # noqa: E402
from repro.serve.client import AdvisorClient  # noqa: E402

TRACE = tuple((0x400 + 4 * (i % 5), 0x200000 + 64 * i, 0) for i in range(256))


def fail(message: str, daemon_output: str = "") -> None:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    if daemon_output:
        print(f"--- daemon output ---\n{daemon_output}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    sock = str(tmp / "advisor.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(tmp / "cache")

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--unix-socket", sock, "--jobs", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + args.timeout
        while not Path(sock).exists():
            if process.poll() is not None:
                fail("daemon died before binding", process.stdout.read())
            if time.monotonic() > deadline:
                fail("daemon never bound its socket")
            time.sleep(0.05)

        requests = [
            AdvisorRequest(
                workload="libquantum", config="swnt", scale=0.05,
                tenant="smoke", request_id="smoke-workload",
            ),
            AdvisorRequest(
                trace=TRACE, config="swnt", want_stats=False,
                tenant="smoke", request_id="smoke-trace",
            ),
        ]
        with AdvisorClient(unix_socket=sock, timeout=args.timeout) as client:
            if client.hello.get("protocol") != "repro-advisor-v1":
                fail(f"bad hello: {client.hello}")
            for request in requests:
                response = client.advise(request)
                if response.status != "ok":
                    fail(f"{request.request_id}: {response.status} ({response.error})")
                if response.plan is None:
                    fail(f"{request.request_id}: response carries no plan")
                served = protocol.encode_response(response)
                one_shot = protocol.encode_response(advise(request))
                if served != one_shot:
                    fail(f"{request.request_id}: served bytes != one-shot advise")
                print(
                    f"[smoke] {request.request_id}: ok, "
                    f"{len(served)} bytes, byte-identical to one-shot"
                )

        process.send_signal(signal.SIGTERM)
        output = process.communicate(timeout=args.timeout)[0]
        if process.returncode != 0:
            fail(f"daemon exited {process.returncode} on SIGTERM", output)
        if Path(sock).exists():
            fail("daemon left its socket behind", output)
        if "draining" not in output:
            fail("daemon never reported draining", output)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    print("[smoke] clean SIGTERM drain, exit 0, socket unlinked")
    print("serve smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
