#!/usr/bin/env python
"""Chaos smoke driver for CI: kill a real run, resume it, audit the cache.

Two scenarios, both against real subprocesses of ``repro run``:

1. **Kill + resume bit-identity** — start a journaled run, SIGKILL it at
   a randomised (but seeded, hence reproducible) moment after the
   journal appears, resume with ``repro run --resume``, and require the
   resumed JSON results to be byte-identical to an uninterrupted
   baseline run of the same grid.
2. **Cache corruption + verify** — flip bits in / truncate / zero real
   cache entries and require ``repro cache verify`` to detect and
   quarantine 100 % of them (exit 1), then report clean (exit 0).

Writes a machine-readable recovery report (``--report FILE``) and exits
non-zero if any scenario fails.  Usage::

    python tools/chaos_smoke.py [--seed N] [--report chaos-report.json]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RUN_ARGS = [
    "--workloads", "libquantum,mcf",
    "--configs", "baseline,hw,swnt",
    "--scale", "0.05",
    "--jobs", "1",
]


def _env(tmp: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(tmp / "cache")
    env["REPRO_RUNS_DIR"] = str(tmp / "runs")
    return env


def _run_cli(args, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, capture_output=True, text=True, timeout=300, **kwargs,
    )


def scenario_kill_resume(tmp: Path, rng: random.Random) -> dict:
    """SIGKILL a journaled run mid-flight; resume must be bit-identical."""
    env = _env(tmp)
    baseline_out = tmp / "baseline.json"
    proc = _run_cli(
        ["run", *RUN_ARGS, "--no-cache", "--run-id", "baseline",
         "--json-out", str(baseline_out)],
        env,
    )
    if proc.returncode != 0:
        return {"ok": False, "stage": "baseline", "stderr": proc.stderr[-2000:]}

    journal = tmp / "runs" / "victim" / "journal.jsonl"
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "run", *RUN_ARGS,
         "--no-cache", "--run-id", "victim"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 120
    while time.time() < deadline and not journal.exists():
        time.sleep(0.02)
    # Randomised kill point: somewhere inside the run's lifetime, after
    # the journal exists.  Seeded, so a failure replays exactly.
    time.sleep(rng.uniform(0.05, 1.5))
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=60)

    journaled_before = journal.stat().st_size if journal.exists() else 0
    resumed_out = tmp / "resumed.json"
    proc = _run_cli(
        ["run", *RUN_ARGS, "--no-cache", "--resume", "victim",
         "--json-out", str(resumed_out)],
        env,
    )
    if proc.returncode != 0:
        return {"ok": False, "stage": "resume", "stderr": proc.stderr[-2000:]}
    baseline = json.loads(baseline_out.read_text())
    resumed = json.loads(resumed_out.read_text())
    identical = baseline["results"] == resumed["results"]
    return {
        "ok": identical,
        "stage": "compare",
        "cells": len(baseline["results"]),
        "journal_bytes_at_kill": journaled_before,
        "bit_identical": identical,
    }


def scenario_cache_corruption(tmp: Path, rng: random.Random) -> dict:
    """Corrupt real cache entries; verify must quarantine every one."""
    env = _env(tmp)
    cache_dir = tmp / "cache"
    proc = _run_cli(
        ["run", *RUN_ARGS, "--run-id", "warmup", "--cache-dir", str(cache_dir)],
        env,
    )
    if proc.returncode != 0:
        return {"ok": False, "stage": "warmup", "stderr": proc.stderr[-2000:]}

    entries = sorted(
        p for kind in ("stats", "sampling")
        for p in (cache_dir / kind).glob("*/*.json")
    )
    if len(entries) < 3:
        return {"ok": False, "stage": "seed", "entries": len(entries)}
    corruptions = {"bitflip": entries[0], "truncate": entries[1], "zero": entries[2]}
    raw = bytearray(corruptions["bitflip"].read_bytes())
    raw[rng.randrange(len(raw))] ^= 1 << rng.randrange(8)
    corruptions["bitflip"].write_bytes(bytes(raw))
    half = corruptions["truncate"].read_bytes()
    corruptions["truncate"].write_bytes(half[: len(half) // 2])
    corruptions["zero"].write_bytes(b"")

    report_path = tmp / "verify.json"
    proc = _run_cli(
        ["cache", "verify", "--cache-dir", str(cache_dir),
         "--json-out", str(report_path)],
        env,
    )
    report = json.loads(report_path.read_text())
    caught_all = (
        proc.returncode == 1
        and report["corrupt"] == len(corruptions)
        and len(report["quarantined"]) == len(corruptions)
    )
    clean = _run_cli(["cache", "verify", "--cache-dir", str(cache_dir)], env)
    return {
        "ok": caught_all and clean.returncode == 0,
        "stage": "verify",
        "injected": len(corruptions),
        "caught": report["corrupt"],
        "quarantined": len(report["quarantined"]),
        "reverify_clean": clean.returncode == 0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", default="chaos-report.json")
    args = parser.parse_args(argv)
    rng = random.Random(args.seed)

    results = {}
    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        results["kill_resume"] = scenario_kill_resume(tmp, rng)
        results["cache_corruption"] = scenario_cache_corruption(tmp, rng)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    passed = all(r.get("ok") for r in results.values())
    report = {"seed": args.seed, "passed": passed, "scenarios": results}
    Path(args.report).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for name, outcome in results.items():
        print(f"[chaos] {name}: {'PASS' if outcome.get('ok') else 'FAIL'} {outcome}")
    print(f"[chaos] report written to {args.report}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
