"""Tests for the multicore simulator and the analytic contention model."""

import numpy as np
import pytest

from repro.config import CacheConfig, MachineConfig
from repro.errors import SimulationError
from repro.multicore import (
    AppProfile,
    CoreSpec,
    MulticoreSimulator,
    solve_mix,
)
from repro.statstack.mrc import MissRatioCurve
from repro.trace import MemoryTrace
from repro.trace.synthesis import strided_pattern


def stream_trace(base, n=20_000, stride=64):
    return MemoryTrace.loads(np.zeros(n, np.int64), strided_pattern(base, n, stride))


def small_machine(bw_gbs=2.0):
    return MachineConfig(
        name="quad",
        l1=CacheConfig("L1", 4 * 1024, ways=2, hit_latency=2),
        l2=CacheConfig("L2", 16 * 1024, ways=4, hit_latency=8),
        llc=CacheConfig("LLC", 128 * 1024, ways=8, hit_latency=20),
        cores=4,
        freq_ghz=1.0,
        dram_latency=100,
        peak_bandwidth_gbs=bw_gbs,
    )


class TestMulticoreSimulator:
    def test_single_core_matches_hierarchy(self, tiny_machine):
        from repro.cachesim import CacheHierarchy

        t = stream_trace(0)
        solo = CacheHierarchy(tiny_machine).run(t, work_per_memop=2.0, mlp=2.0)
        multi = MulticoreSimulator(
            tiny_machine, [CoreSpec(t, work_per_memop=2.0, mlp=2.0)]
        ).run(drain=False)
        assert multi.per_core[0].cycles == pytest.approx(solo.cycles)
        assert multi.per_core[0].dram_fills == solo.dram_fills

    def test_contention_slows_everyone(self):
        machine = small_machine(bw_gbs=1.0)
        t1 = stream_trace(0)
        solo = MulticoreSimulator(machine, [CoreSpec(t1, name="a")]).run(drain=False)
        specs = [
            CoreSpec(stream_trace(core << 30), name=f"c{core}") for core in range(4)
        ]
        shared = MulticoreSimulator(machine, specs).run(drain=False)
        assert shared.per_core[0].cycles > solo.per_core[0].cycles

    def test_bandwidth_capped(self):
        machine = small_machine(bw_gbs=1.0)
        specs = [
            CoreSpec(stream_trace(core << 30, n=30_000), name=f"c{core}")
            for core in range(4)
        ]
        result = MulticoreSimulator(machine, specs).run(drain=False)
        assert result.achieved_bandwidth_gbs(machine.freq_ghz) <= 1.05

    def test_llc_is_shared(self):
        # two cores streaming through the LLC evict each other's lines
        machine = small_machine(bw_gbs=16.0)
        # one core re-sweeps a region that fits the LLC alone
        resweep = MemoryTrace.loads(
            np.zeros(40_000, np.int64),
            strided_pattern(0, 40_000, 64, wrap_bytes=96 * 1024),
        )
        alone = MulticoreSimulator(machine, [CoreSpec(resweep, name="r")]).run(
            drain=False
        )
        noisy = MulticoreSimulator(
            machine,
            [CoreSpec(resweep, name="r"), CoreSpec(stream_trace(1 << 30, n=40_000), name="s")],
        ).run(drain=False)
        assert noisy.per_core[0].llc.misses > alone.per_core[0].llc.misses

    def test_short_program_finishes_early(self, tiny_machine):
        long = stream_trace(0, n=10_000)
        short = stream_trace(1 << 30, n=1_000)
        result = MulticoreSimulator(
            tiny_machine, [CoreSpec(long, name="l"), CoreSpec(short, name="s")]
        ).run(drain=False)
        assert result.per_core[1].cycles < result.per_core[0].cycles
        assert result.makespan_cycles == result.per_core[0].cycles

    def test_too_many_cores_rejected(self, tiny_machine):
        specs = [CoreSpec(stream_trace(i << 30)) for i in range(5)]
        with pytest.raises(SimulationError):
            MulticoreSimulator(tiny_machine, specs)

    def test_empty_rejected(self, tiny_machine):
        with pytest.raises(SimulationError):
            MulticoreSimulator(tiny_machine, [])


def flat_mrc(level=0.5):
    sizes = np.array([64 * 1024, 1 << 20, 8 << 20], dtype=np.int64)
    return MissRatioCurve(sizes, np.full(3, level))


def dropping_mrc():
    sizes = np.array([64 * 1024, 1 << 20, 2 << 20, 4 << 20, 8 << 20], dtype=np.int64)
    return MissRatioCurve(sizes, np.array([0.9, 0.8, 0.5, 0.2, 0.1]))


def make_profile(name="a", cycles=1e6, lines=10_000, inserts=None, mrc=None, mr_full=0.5):
    return AppProfile(
        name=name,
        cycles_alone=cycles,
        dram_lines=lines,
        llc_insert_lines=lines if inserts is None else inserts,
        mlp=2.0,
        mrc=mrc if mrc is not None else flat_mrc(),
        mr_full_llc=mr_full,
    )


class TestContentionModel:
    def test_single_app_unchanged(self, amd):
        out = solve_mix(amd, [make_profile()])
        assert out[0].cycles == pytest.approx(1e6, rel=0.05)

    def test_bandwidth_pressure_slows_mix(self, amd):
        # apps that together exceed the controller rate slow down
        heavy = make_profile(cycles=1e5, lines=80_000)
        out = solve_mix(amd, [heavy] * 4)
        assert all(c.cycles > 1.3e5 for c in out)

    def test_light_mix_barely_slows(self, amd):
        light = make_profile(cycles=1e7, lines=1_000)
        out = solve_mix(amd, [light] * 4)
        assert all(c.cycles < 1.05e7 for c in out)

    def test_nta_app_claims_no_llc(self, amd):
        # one polluter + one sensitive app; when the polluter bypasses
        # the LLC (zero insertions) the sensitive app keeps its space
        # and finishes faster
        sensitive = make_profile("sens", cycles=1e6, lines=20_000, mrc=dropping_mrc(), mr_full=0.1)
        polluter = make_profile("poll", cycles=1e6, lines=50_000)
        bypasser = make_profile("poll", cycles=1e6, lines=50_000, inserts=0)
        with_polluter = solve_mix(amd, [sensitive, polluter])
        with_bypasser = solve_mix(amd, [sensitive, bypasser])
        assert with_bypasser[0].cycles < with_polluter[0].cycles

    def test_llc_shares_sum_to_capacity(self, amd):
        out = solve_mix(amd, [make_profile(str(i)) for i in range(4)])
        assert sum(c.llc_share_bytes for c in out) == pytest.approx(
            amd.llc.size_bytes, rel=1e-6
        )

    def test_empty_mix_rejected(self, amd):
        with pytest.raises(SimulationError):
            solve_mix(amd, [])

    def test_slowdown_field(self, amd):
        out = solve_mix(amd, [make_profile(cycles=2e5, lines=50_000)] * 4)
        for c in out:
            assert c.slowdown >= 1.0
