"""Tests for the functional simulator, bandwidth model, and interleaving."""

import numpy as np
import pytest

from repro.cachesim import BandwidthModel, FunctionalCacheSim, simulate_miss_ratios
from repro.config import CacheConfig
from repro.errors import ConfigError, TraceError
from repro.trace import (
    MemOp,
    MemoryTrace,
    interleave_round_robin,
    interleave_weighted,
)
from repro.trace.synthesis import strided_pattern


class TestFunctionalSim:
    def test_loop_hits_after_first_sweep(self):
        t = MemoryTrace.loads(
            np.zeros(4096, np.int64), strided_pattern(0, 4096, 64, wrap_bytes=16 * 64)
        )
        mr, per_pc, stats = simulate_miss_ratios(t, CacheConfig("T", 64 * 64, ways=4))
        assert mr < 0.01
        assert per_pc[0] == mr

    def test_cold_stream_always_misses(self):
        t = MemoryTrace.loads(np.zeros(1000, np.int64), strided_pattern(0, 1000, 64))
        mr, _, _ = simulate_miss_ratios(t, CacheConfig("T", 64 * 64, ways=4))
        assert mr == 1.0

    def test_prefetches_ignored_by_default(self):
        t = MemoryTrace(
            [0, 0], [0, 0], [MemOp.PREFETCH, MemOp.LOAD]
        )
        sim = FunctionalCacheSim(CacheConfig("T", 1024, ways=2))
        stats = sim.run(t)
        assert stats.total_misses() == 1  # prefetch did not warm the cache

    def test_prefetches_honoured_when_requested(self):
        t = MemoryTrace([0, 0], [0, 0], [MemOp.PREFETCH, MemOp.LOAD])
        sim = FunctionalCacheSim(CacheConfig("T", 1024, ways=2))
        stats = sim.run(t, honor_prefetches=True)
        assert stats.total_misses() == 0

    def test_per_pc_attribution(self):
        t = MemoryTrace.loads([7, 8, 7], [0, 64, 0])
        sim = FunctionalCacheSim(CacheConfig("T", 1024, ways=2))
        stats = sim.run(t)
        assert stats.accesses == {7: 2, 8: 1}
        assert stats.misses == {7: 1, 8: 1}

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_prefetch_hit_refreshes_recency(self, backend):
        """Regression: a prefetch to a resident line must promote it.

        Real hardware refreshes the LRU position of a line a prefetch
        hits; the old code probed with ``contains`` and left the line in
        LRU position, so coverage runs under-counted the misses a
        prefetch plan removes.  One full 2-way set, lines A B C:

            load A, load B, prefetch A, load C, load A

        The prefetch promotes A, so C must evict B and the final load
        of A must hit — 3 demand misses, not 4.
        """
        a, b, c = 0, 64, 128
        t = MemoryTrace(
            [0] * 5,
            [a, b, a, c, a],
            [MemOp.LOAD, MemOp.LOAD, MemOp.PREFETCH, MemOp.LOAD, MemOp.LOAD],
        )
        sim = FunctionalCacheSim(CacheConfig("T", 128, ways=2), backend=backend)
        stats = sim.run(t, honor_prefetches=True)
        assert stats.total_misses() == 3
        assert not sim.last_miss[-1]  # the re-load of A hit


class TestBandwidthModel:
    def test_uncontended_transfer_starts_immediately(self):
        bw = BandwidthModel(peak_bytes_per_cycle=2.0)
        start, duration = bw.transfer(100.0, 64)
        assert start == 100.0
        assert duration == pytest.approx(32.0)

    def test_queueing_behind_earlier_transfer(self):
        bw = BandwidthModel(peak_bytes_per_cycle=2.0)
        bw.transfer(0.0, 64)  # occupies [0, 32)
        start, _ = bw.transfer(10.0, 64)
        assert start == pytest.approx(32.0)

    def test_throughput_hard_capped(self):
        bw = BandwidthModel(peak_bytes_per_cycle=1.0)
        finish = 0.0
        for i in range(100):
            start, duration = bw.transfer(0.0, 64)
            finish = start + duration
        # 100 lines at 1 B/cycle cannot finish before 6400 cycles
        assert finish >= 100 * 64

    def test_utilisation_rises_and_decays(self):
        bw = BandwidthModel(peak_bytes_per_cycle=2.0, window_cycles=100.0)
        for i in range(20):
            bw.transfer(float(i), 64)
        busy = bw.utilisation()
        assert busy > 0.5
        bw.transfer(10_000.0, 0)
        assert bw.utilisation() < busy

    def test_total_accounting(self):
        bw = BandwidthModel(peak_bytes_per_cycle=2.0)
        bw.transfer(0.0, 64)
        bw.transfer(0.0, 64)
        assert bw.total_bytes == 128
        assert bw.total_transfers == 2

    def test_reset(self):
        bw = BandwidthModel(peak_bytes_per_cycle=2.0)
        bw.transfer(0.0, 64)
        bw.reset()
        assert bw.total_bytes == 0
        start, _ = bw.transfer(0.0, 64)
        assert start == 0.0

    def test_rejects_bad_peak(self):
        with pytest.raises(ConfigError):
            BandwidthModel(peak_bytes_per_cycle=0.0)

    def test_achieved_gbs(self):
        bw = BandwidthModel(peak_bytes_per_cycle=2.0)
        bw.transfer(0.0, 2_000_000)
        assert bw.achieved_gbs(1e6, freq_ghz=1.0) == pytest.approx(2.0)


class TestInterleave:
    def test_round_robin_alternates(self):
        a = MemoryTrace.loads([0, 0], [0, 1])
        b = MemoryTrace.loads([1, 1], [100, 101])
        merged, cores = interleave_round_robin([a, b])
        assert cores.tolist() == [0, 1, 0, 1]
        assert merged.addr.tolist() == [0, 100, 1, 101]

    def test_weighted_ratio(self):
        a = MemoryTrace.loads([0] * 4, list(range(4)))
        b = MemoryTrace.loads([1] * 2, [100, 101])
        merged, cores = interleave_weighted([a, b], [2.0, 1.0])
        # core 0 gets twice the slots
        assert cores.tolist().count(0) == 4
        first_half = cores.tolist()[:3]
        assert first_half.count(0) == 2

    def test_exhausted_core_drops_out(self):
        a = MemoryTrace.loads([0] * 5, list(range(5)))
        b = MemoryTrace.loads([1], [100])
        merged, cores = interleave_round_robin([a, b])
        assert cores.tolist()[-3:] == [0, 0, 0]

    def test_empty_input(self):
        merged, cores = interleave_round_robin([])
        assert len(merged) == 0 and len(cores) == 0

    def test_bad_weights(self):
        a = MemoryTrace.loads([0], [0])
        with pytest.raises(TraceError):
            interleave_weighted([a], [0.0])
        with pytest.raises(TraceError):
            interleave_weighted([a], [1.0, 2.0])
