"""The example scripts must run end-to-end (smoke level)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_small():
    out = run_example("quickstart.py", "libquantum", "0.05")
    assert "speedup" in out
    assert "prefetches inserted" in out


def test_rewrite_assembly():
    out = run_example("rewrite_assembly.py")
    assert "prefetchnta" in out
    assert "demand address stream identical after rewriting: OK" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "hashjoin" in out
    assert "amd-phenom-ii" in out and "intel-i7-2600k" in out


def test_cache_model_explorer():
    out = run_example("cache_model_explorer.py", "omnetpp", "0.05")
    assert "validation against exact simulation" in out


def test_mixed_workload_study_small():
    out = run_example("mixed_workload_study.py", "4", "0.05")
    assert "Weighted speedup distribution" in out
    assert "Paper shape checks" in out


def test_online_adaptation():
    out = run_example("online_adaptation.py")
    assert "online adaptation" in out
    assert "plan changes" in out
